//! Exfiltrate a 128-bit key out of a sandbox over the flock channel, with a
//! CRC-protected frame — the workload the paper's introduction motivates
//! (a Trojan holding a cryptographic key but no overt channel).
//!
//! Run with `cargo run --release -p mes-integration --example exfiltrate_key`.

use mes_coding::{BitSource, Crc8};
use mes_core::{ChannelConfig, CovertChannel, SimBackend};
use mes_scenario::ScenarioProfile;
use mes_types::{Mechanism, Scenario};

fn main() -> mes_types::Result<()> {
    // The secret: a random 128-bit AES key held by the sandboxed Trojan.
    let key = BitSource::new(0xAE5).random_bits(128);
    println!("AES key held by the Trojan : {key}");

    // Protect the payload with a CRC-8 so the Spy can tell a clean round
    // from a corrupted one.
    let protected = Crc8::append(&key);

    let scenario = Scenario::CrossSandbox;
    let profile = ScenarioProfile::for_scenario(scenario);
    let config = ChannelConfig::paper_defaults(scenario, Mechanism::Flock)?;
    println!(
        "Channel: {} across {} (timing {})",
        config.mechanism, scenario, config.timing
    );

    let channel = CovertChannel::new(config, profile.clone())?;
    let mut backend = SimBackend::new(profile, 0xAE5);
    let report = channel.transmit(&protected, &mut backend)?;

    println!(
        "round stats: frame valid = {}, wire BER = {:.3}%, rate = {:.3} kb/s",
        report.frame_valid(),
        report.wire_ber().ber_percent(),
        report.throughput().kilobits_per_second()
    );

    match Crc8::verify_and_strip(report.received_payload()) {
        Some(recovered) => {
            println!("Spy recovered the key      : {recovered}");
            println!(
                "integrity check            : CRC-8 OK, keys match = {}",
                recovered == key
            );
        }
        None => {
            println!("integrity check            : CRC-8 FAILED — the Spy discards this round");
            println!("(re-run with another seed; the paper's Spy simply waits for the next round)");
        }
    }
    Ok(())
}
