//! Quickstart: leak a short secret over the paper's fastest channel.
//!
//! The Trojan transmits the ASCII string `MES!` over the local Event channel
//! at the paper's recommended timing (tw0 = 15 µs, ti = 65 µs); the Spy
//! recovers it from its wait latencies.
//!
//! Run with `cargo run --release -p mes-integration --example quickstart`.

use mes_core::{ChannelConfig, CovertChannel, SimBackend};
use mes_scenario::ScenarioProfile;
use mes_types::{BitString, Mechanism, Scenario};

fn main() -> mes_types::Result<()> {
    let secret = b"MES!";
    println!("Trojan secret: {:?}", String::from_utf8_lossy(secret));

    // 1. Configure the channel: mechanism + the paper's Timeset.
    let profile = ScenarioProfile::local();
    let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event)?;
    println!(
        "Channel: {} ({}), timing {}",
        config.mechanism,
        config.mechanism.family(),
        config.timing
    );

    // 2. Build the channel and a backend (here: the deterministic simulator).
    let channel = CovertChannel::new(config, profile.clone())?;
    let mut backend = SimBackend::new(profile, 2024);

    // 3. Transmit.
    let payload = BitString::from_bytes(secret);
    let report = channel.transmit(&payload, &mut backend)?;

    // 4. Inspect what the Spy recovered.
    let recovered = report.received_payload().to_bytes();
    println!("Spy recovered: {:?}", String::from_utf8_lossy(&recovered));
    println!(
        "frame valid: {}, BER: {:.3}%, rate: {:.3} kb/s, elapsed: {}",
        report.frame_valid(),
        report.wire_ber().ber_percent(),
        report.throughput().kilobits_per_second(),
        report.elapsed()
    );
    println!(
        "first latencies (us): {:?}",
        report
            .latencies()
            .iter()
            .take(10)
            .map(|l| l.as_micros_f64().round())
            .collect::<Vec<_>>()
    );
    assert_eq!(recovered, secret);
    Ok(())
}
