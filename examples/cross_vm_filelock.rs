//! Cross-VM exfiltration over FileLockEX — and why nothing else works there.
//!
//! The paper finds (Section V.C.3) that ordinary kernel objects are
//! namespaced per VM session, so only the file-backed locks (flock on KVM,
//! FileLockEX on Hyper-V) still connect two virtual machines. This example
//! shows both halves: every non-file mechanism is rejected up front, and the
//! FileLockEX channel still moves a message at Table VI rates.
//!
//! Run with `cargo run --release -p mes-integration --example cross_vm_filelock`.

use mes_coding::BitSource;
use mes_core::{ChannelConfig, CovertChannel, SimBackend};
use mes_scenario::ScenarioProfile;
use mes_types::{Mechanism, Scenario};

fn main() -> mes_types::Result<()> {
    let scenario = Scenario::CrossVm;
    let profile = ScenarioProfile::for_scenario(scenario);

    println!("Mechanism availability across VMs:");
    for mechanism in Mechanism::ALL {
        match ChannelConfig::paper_defaults(scenario, mechanism) {
            Ok(_) => println!("  {mechanism:<11} available (lock state lives on a shared file)"),
            Err(error) => println!("  {mechanism:<11} rejected: {error}"),
        }
    }
    println!();

    let config = ChannelConfig::paper_defaults(scenario, Mechanism::FileLockEx)?;
    println!(
        "Transmitting 4096 random bits over {} ({}):",
        Mechanism::FileLockEx,
        config.timing
    );
    let channel = CovertChannel::new(config, profile.clone())?;
    let mut backend = SimBackend::new(profile, 0xC0DE);
    let payload = BitSource::new(0xC0DE).random_bits(4096);
    let report = channel.transmit(&payload, &mut backend)?;
    println!(
        "  BER = {:.3}% (paper: 0.713%), rate = {:.3} kb/s (paper: 6.552 kb/s), frame valid = {}",
        report.wire_ber().ber_percent(),
        report.throughput().kilobits_per_second(),
        report.frame_valid()
    );
    Ok(())
}
