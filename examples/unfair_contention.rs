//! Why MES-Attacks need *fair* lock hand-off (Section V.B ① of the paper).
//!
//! Under FIFO (fair) hand-off, the blocked Spy is next in line when the
//! Trojan unlocks, so its blocked time tracks the Trojan's hold time. Under
//! unfair hand-off the releasing process can immediately re-acquire the
//! resource, the Spy's measurements collapse, and the transmission breaks —
//! exactly the failure mode the paper warns about.
//!
//! This example drives the simulator directly (it needs the fairness switch,
//! which the channel API deliberately does not expose).
//!
//! Run with `cargo run --release -p mes-integration --example unfair_contention`.

use mes_coding::BitSource;
use mes_core::{protocol, ChannelConfig, CovertChannel, SimBackend};
use mes_scenario::ScenarioProfile;
use mes_sim::fs::Fairness;
use mes_sim::{Engine, NoiseModel};
use mes_stats::BerReport;
use mes_types::{Mechanism, Scenario};

fn run_with_fairness(fairness: Fairness) -> mes_types::Result<(f64, bool)> {
    let profile = ScenarioProfile::local();
    let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Flock)?;
    let channel = CovertChannel::new(config.clone(), profile.clone())?;
    let payload = BitSource::new(77).random_bits(512);

    // Build the plan and programs exactly like SimBackend, but flip the
    // fairness switch on the engine before running.
    let wire = {
        let codec = mes_coding::FrameCodec::new(config.preamble.clone())?;
        codec.encode(&payload)
    };
    let plan = protocol::encode(&wire, &config, &profile)?;
    let backend = SimBackend::new(profile.clone(), 77);
    let (trojan, spy) = backend.build_programs(&plan);

    let mut engine = Engine::new(profile.noise_for(Mechanism::Flock), 77);
    engine.set_fairness(fairness);
    let spy_pid = engine.spawn(spy);
    engine.spawn(trojan);
    let outcome = engine.run()?;
    let observation = mes_core::Observation {
        latencies: outcome.durations(spy_pid),
        elapsed: outcome.end_time(),
    };
    let report = channel.recover(&payload, &wire, &observation);
    Ok((report.wire_ber().ber_percent(), report.frame_valid()))
}

fn main() -> mes_types::Result<()> {
    // Sanity: the plain channel through the public API.
    let profile = ScenarioProfile::local();
    let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Flock)?;
    let channel = CovertChannel::new(config, profile.clone())?;
    let mut backend = SimBackend::new(profile, 1);
    let payload = BitSource::new(1).random_bits(512);
    let baseline = channel.transmit(&payload, &mut backend)?;
    let baseline_ber = BerReport::compare(baseline.sent_wire(), baseline.received_wire());
    println!(
        "public API baseline (fair):   BER = {:.3}%",
        baseline_ber.ber_percent()
    );

    let (fair_ber, fair_valid) = run_with_fairness(Fairness::Fair)?;
    let (unfair_ber, unfair_valid) = run_with_fairness(Fairness::Unfair)?;
    println!("fair FIFO hand-off:           BER = {fair_ber:.3}%, frame valid = {fair_valid}");
    println!("unfair hand-off:              BER = {unfair_ber:.3}%, frame valid = {unfair_valid}");
    println!();
    if unfair_ber > fair_ber * 10.0 {
        println!("=> the channel only works in the fair regime, as the paper states.");
    } else {
        println!("=> unexpected: unfair hand-off did not destroy the channel on this run.");
    }
    let _ = NoiseModel::noiseless(); // keep the import list honest in docs
    Ok(())
}
