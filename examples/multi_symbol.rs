//! Multi-bit symbol encoding (Section VI): squeeze more rate out of the
//! Event channel by agreeing on four wait times instead of two.
//!
//! Run with `cargo run --release -p mes-integration --example multi_symbol`.

use mes_coding::{BitSource, SymbolAlphabet};
use mes_core::{SimBackend, SymbolChannel};
use mes_scenario::ScenarioProfile;
use mes_types::{Mechanism, Micros};

fn main() -> mes_types::Result<()> {
    let profile = ScenarioProfile::local();
    let payload = BitSource::new(0x515).random_bits(4_000);

    println!("Transmitting 4000 bits over the local Event channel with 1-, 2- and 3-bit symbols:");
    println!(
        "{:>12} {:>14} {:>10} {:>12}",
        "bits/symbol", "levels (us)", "BER (%)", "TR (kb/s)"
    );
    for k in 1u8..=3 {
        let alphabet = SymbolAlphabet::evenly_spaced(k, Micros::new(15), Micros::new(50))?;
        let levels: Vec<u64> = alphabet.durations().iter().map(|d| d.as_u64()).collect();
        let channel =
            SymbolChannel::new(alphabet, Mechanism::Event, profile.clone(), 90 + k as u64)?;
        let mut backend = SimBackend::new(profile.clone(), 90 + k as u64);
        let report = channel.transmit(&payload, &mut backend)?;
        println!(
            "{:>12} {:>14} {:>10.3} {:>12.3}",
            k,
            format!("{levels:?}"),
            report.ber().ber_percent(),
            report.throughput().kilobits_per_second()
        );
    }
    println!();
    println!("The paper observes the same shape: 2-bit symbols beat 1-bit (~15.1 vs 13.1 kb/s),");
    println!("3-bit symbols stop helping because the long wait times dominate.");
    Ok(())
}
