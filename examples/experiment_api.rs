//! The unified experiment API end to end: build an `ExperimentSpec`, submit
//! it to a `SweepService`, stream per-point outcomes, resubmit to hit the
//! observation cache, and round-trip the spec through its JSON wire format
//! (what the `sweepd` binary reads).
//!
//! Run with `cargo run --release -p mes-integration --example experiment_api`.

use mes_core::experiment::{ExperimentSpec, PointOutcome, SweepService};
use mes_types::{Mechanism, Result, Scenario};

fn main() -> Result<()> {
    // A small Fig. 9-shaped grid: the local Event channel over tw0 × ti.
    let spec = ExperimentSpec::cooperation_grid(
        "experiment-api-demo",
        Scenario::Local,
        Mechanism::Event,
        &[15, 35, 55],
        &[50, 70],
        512,
        0xDE30,
    );

    let mut service = SweepService::with_default_pool();

    println!(
        "submitting {:?} ({} points), streaming:",
        spec.name,
        spec.point_count()
    );
    let result = service.submit_streaming(&spec, &mut |point: &PointOutcome| {
        println!(
            "  {:<12} tw0={:<4} BER {:>6.3}%  TR {:>7.3} kb/s  (seed {:#018x})",
            point.series, point.x, point.ber_percent, point.rate_kbps, point.round_seed
        );
    })?;
    println!(
        "first submission: {} rounds executed, {} cache hits",
        result.rounds_executed, result.cache_hits
    );

    // The identical spec resubmitted: answered entirely from the cache.
    let cached = service.submit(&spec)?;
    println!(
        "second submission: {} rounds executed, {} cache hits",
        cached.rounds_executed, cached.cache_hits
    );
    assert_eq!(cached.rounds_executed, 0);
    assert_eq!(result.series, cached.series);

    // The spec round-trips through its JSON wire format — the document the
    // `sweepd` binary accepts on stdin or as a file argument.
    let wire = spec.to_json_string();
    let parsed = ExperimentSpec::from_json_str(&wire)?;
    assert_eq!(parsed, spec);
    println!("\nspec JSON (what `sweepd` reads):\n{wire}");

    if let Some((label, best)) = result.series.best_under_ber(1.0) {
        println!(
            "best point under 1% BER: {label}, tw0 = {} us, {:.3} kb/s",
            best.x, best.rate_kbps
        );
    }
    Ok(())
}
