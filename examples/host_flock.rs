//! Run the flock channel on the *real* Linux kernel of this machine.
//!
//! Two threads of this process open the same temporary file; the Trojan
//! thread modulates real `flock(2)` exclusive locks and the Spy thread times
//! its own lock attempts. Timing is scaled to milliseconds so the demo works
//! on a loaded machine; the protocol is exactly Protocol 1 of the paper.
//!
//! Run with `cargo run --release -p mes-integration --example host_flock`.

use mes_core::{ChannelConfig, CovertChannel};
use mes_host::{host_timing, HostCondvarBackend, HostFlockBackend};
use mes_scenario::ScenarioProfile;
use mes_types::{BitString, Mechanism};

fn main() -> mes_types::Result<()> {
    let secret = b"hi";
    let payload = BitString::from_bytes(secret);

    // Real flock(2) between two descriptors of the same file.
    let config = ChannelConfig::new(Mechanism::Flock, host_timing(Mechanism::Flock))?;
    let channel = CovertChannel::new(config, ScenarioProfile::local())?;
    let mut backend = HostFlockBackend::new()?;
    println!("flock channel over {} ...", backend.path().display());
    let report = channel.transmit(&payload, &mut backend)?;
    println!(
        "  recovered {:?} | BER {:.3}% | {:.3} kb/s | elapsed {}",
        String::from_utf8_lossy(&report.received_payload().to_bytes()),
        report.wire_ber().ber_percent(),
        report.throughput().kilobits_per_second(),
        report.elapsed()
    );

    // Condvar stand-in for the Windows Event channel.
    let config = ChannelConfig::new(Mechanism::Event, host_timing(Mechanism::Event))?;
    let channel = CovertChannel::new(config, ScenarioProfile::local())?;
    let mut backend = HostCondvarBackend::new();
    println!("condvar (Event stand-in) channel ...");
    let report = channel.transmit(&payload, &mut backend)?;
    println!(
        "  recovered {:?} | BER {:.3}% | {:.3} kb/s | elapsed {}",
        String::from_utf8_lossy(&report.received_payload().to_bytes()),
        report.wire_ber().ber_percent(),
        report.throughput().kilobits_per_second(),
        report.elapsed()
    );
    Ok(())
}
