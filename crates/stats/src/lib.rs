//! `mes-stats` — metrics and report rendering for covert-channel
//! experiments.
//!
//! The paper reports every channel with two numbers — bit error rate (BER)
//! and transmission rate (TR) — and presents them either as tables
//! (Tables IV–VI) or as parameter sweeps (Fig. 9 and Fig. 10). This crate
//! owns those computations plus the summary statistics, sweep containers and
//! ASCII/CSV rendering used by the experiment harness in `mes-bench`.
//!
//! # Examples
//!
//! ```
//! use mes_stats::{BerReport, ThroughputReport};
//! use mes_types::{BitString, Nanos};
//!
//! let sent = BitString::from_str01("10110010")?;
//! let received = BitString::from_str01("10110110")?;
//! let ber = BerReport::compare(&sent, &received);
//! assert_eq!(ber.errors(), 1);
//! assert!((ber.ber_percent() - 12.5).abs() < 1e-9);
//!
//! let tr = ThroughputReport::new(8, Nanos::from_micros_f64(8.0 * 76.3));
//! assert!(tr.kilobits_per_second() > 13.0);
//! # Ok::<(), mes_types::MesError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
pub mod control;
pub mod json;
pub mod series;
pub mod summary;
pub mod table;
pub mod throughput;

pub use ber::BerReport;
pub use control::{
    ack_verb, control_ack, control_frame, control_verb, CONTROL_SHUTDOWN, CONTROL_STATS,
};
pub use json::Json;
pub use series::{LabeledSeries, SweepPoint, SweepSeries};
pub use summary::Summary;
pub use table::Table;
pub use throughput::ThroughputReport;
