//! Summary statistics over latency samples.

use mes_types::Nanos;
use serde::{Deserialize, Serialize};

/// Mean, spread and order statistics of a sample of values.
///
/// # Examples
///
/// ```
/// use mes_stats::Summary;
///
/// let summary = Summary::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
/// assert_eq!(summary.mean(), 3.0);
/// assert_eq!(summary.min(), 1.0);
/// assert_eq!(summary.percentile(50.0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
    sorted: Vec<f64>,
}

impl Summary {
    /// Builds a summary from raw values. An empty slice produces an
    /// all-zero summary.
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                sorted: Vec::new(),
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency values are finite"));
        Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            sorted,
        }
    }

    /// Builds a summary from nanosecond durations, expressed in microseconds.
    pub fn from_nanos_as_micros(values: &[Nanos]) -> Self {
        let micros: Vec<f64> = values.iter().map(|v| v.as_micros_f64()).collect();
        Summary::from_values(&micros)
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Linear-interpolated percentile (`p` in `[0, 100]`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.sorted.is_empty() {
            return 0.0;
        }
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let low = rank.floor() as usize;
        let high = rank.ceil() as usize;
        let fraction = rank - low as f64;
        self.sorted[low] + (self.sorted[high] - self.sorted[low]) * fraction
    }

    /// The median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Half-width of the normal-approximation 95 % confidence interval of
    /// the mean.
    pub fn confidence_interval_95(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_types::Micros;
    use proptest::prelude::*;

    #[test]
    fn basic_statistics() {
        let summary = Summary::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(summary.count(), 8);
        assert_eq!(summary.mean(), 5.0);
        assert!((summary.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(summary.min(), 2.0);
        assert_eq!(summary.max(), 9.0);
        assert!((summary.median() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let summary = Summary::from_values(&[]);
        assert_eq!(summary.count(), 0);
        assert_eq!(summary.mean(), 0.0);
        assert_eq!(summary.percentile(90.0), 0.0);
        assert_eq!(summary.confidence_interval_95(), 0.0);
    }

    #[test]
    fn single_value_summary() {
        let summary = Summary::from_values(&[42.0]);
        assert_eq!(summary.percentile(0.0), 42.0);
        assert_eq!(summary.percentile(100.0), 42.0);
        assert_eq!(summary.confidence_interval_95(), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn percentile_out_of_range_panics() {
        Summary::from_values(&[1.0]).percentile(101.0);
    }

    #[test]
    fn from_nanos_converts_to_micros() {
        let summary = Summary::from_nanos_as_micros(&[
            Micros::new(10).to_nanos(),
            Micros::new(20).to_nanos(),
        ]);
        assert_eq!(summary.mean(), 15.0);
    }

    #[test]
    fn confidence_interval_shrinks_with_samples() {
        let few = Summary::from_values(&[1.0, 2.0, 3.0, 4.0]);
        let values: Vec<f64> = (0..400).map(|i| (i % 4) as f64 + 1.0).collect();
        let many = Summary::from_values(&values);
        assert!(many.confidence_interval_95() < few.confidence_interval_95());
    }

    proptest! {
        #[test]
        fn prop_percentiles_are_monotone(values in proptest::collection::vec(0.0f64..1e6, 1..100)) {
            let summary = Summary::from_values(&values);
            let p25 = summary.percentile(25.0);
            let p50 = summary.percentile(50.0);
            let p75 = summary.percentile(75.0);
            prop_assert!(p25 <= p50 && p50 <= p75);
            prop_assert!(summary.min() <= p25 && p75 <= summary.max());
            prop_assert!(summary.mean() >= summary.min() && summary.mean() <= summary.max());
        }
    }
}
