//! Plain-text table rendering for the experiment harness.
//!
//! The binaries in `mes-bench` print the same rows the paper's tables
//! report; this small renderer keeps their output aligned and also exports
//! CSV for further processing.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use mes_stats::Table;
///
/// let mut table = Table::new(vec!["Attack methods".into(), "BER(%)".into(), "TR(kb/s)".into()]);
/// table.add_row(vec!["Event".into(), "0.554".into(), "13.105".into()]);
/// let text = table.render();
/// assert!(text.contains("Event"));
/// assert!(text.contains("13.105"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table (builder style).
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn add_row(&mut self, mut row: Vec<String>) {
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The header cells.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "{title}");
        }
        let render_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, width) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<width$} |");
            }
            line
        };
        let header_line = render_row(&self.headers, &widths);
        let separator: String = header_line
            .chars()
            .map(|c| if c == '|' { '+' } else { '-' })
            .collect();
        let _ = writeln!(out, "{separator}");
        let _ = writeln!(out, "{header_line}");
        let _ = writeln!(out, "{separator}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        let _ = writeln!(out, "{separator}");
        out
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut table = Table::new(vec!["Mechanism".into(), "BER(%)".into(), "TR(kb/s)".into()])
            .with_title("Table IV: local scenario");
        table.add_row(vec!["flock".into(), "0.615".into(), "7.182".into()]);
        table.add_row(vec!["Event".into(), "0.554".into(), "13.105".into()]);
        table
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample_table().render();
        assert!(text.contains("Table IV"));
        assert!(text.contains("| flock"));
        assert!(text.contains("| Event"));
        // All body lines share the same width.
        let widths: Vec<usize> = text
            .lines()
            .filter(|l| l.starts_with('|') || l.starts_with('+'))
            .map(str::len)
            .collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut table = Table::new(vec!["a".into(), "b".into()]);
        table.add_row(vec!["1".into()]);
        table.add_row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(table.row_count(), 2);
        let csv = table.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "1,");
        assert_eq!(csv.lines().nth(2).unwrap(), "1,2");
        assert_eq!(table.headers().len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut table = Table::new(vec!["name".into(), "value".into()]);
        table.add_row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = table.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let table = Table::new(vec!["x".into()]);
        let text = table.render();
        assert!(text.contains("| x |"));
        assert_eq!(table.row_count(), 0);
    }
}
