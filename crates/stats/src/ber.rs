//! Bit error rate accounting.

use mes_types::{Bit, BitString};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A bit error rate measurement, including the confusion counts needed to
//  tell "1 received as 0" apart from "0 received as 1".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BerReport {
    bits_compared: u64,
    errors: u64,
    ones_as_zeros: u64,
    zeros_as_ones: u64,
    length_mismatch: u64,
}

impl BerReport {
    /// Compares a sent and received bitstring position by position. If the
    /// lengths differ, the missing/extra positions count as errors.
    pub fn compare(sent: &BitString, received: &BitString) -> Self {
        let mut report = BerReport {
            bits_compared: sent.len().max(received.len()) as u64,
            ..BerReport::default()
        };
        for (s, r) in sent.iter().zip(received.iter()) {
            if s != r {
                report.errors += 1;
                match s {
                    Bit::One => report.ones_as_zeros += 1,
                    Bit::Zero => report.zeros_as_ones += 1,
                }
            }
        }
        let mismatch = (sent.len() as i64 - received.len() as i64).unsigned_abs();
        report.length_mismatch = mismatch;
        report.errors += mismatch;
        report
    }

    /// Merges two reports (e.g. across repeated runs).
    pub fn merged(self, other: BerReport) -> BerReport {
        BerReport {
            bits_compared: self.bits_compared + other.bits_compared,
            errors: self.errors + other.errors,
            ones_as_zeros: self.ones_as_zeros + other.ones_as_zeros,
            zeros_as_ones: self.zeros_as_ones + other.zeros_as_ones,
            length_mismatch: self.length_mismatch + other.length_mismatch,
        }
    }

    /// Number of compared bit positions.
    pub fn bits_compared(&self) -> u64 {
        self.bits_compared
    }

    /// Number of erroneous positions.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Errors where a transmitted `1` was received as `0`.
    pub fn ones_as_zeros(&self) -> u64 {
        self.ones_as_zeros
    }

    /// Errors where a transmitted `0` was received as `1`.
    pub fn zeros_as_ones(&self) -> u64 {
        self.zeros_as_ones
    }

    /// Positions lost to a length mismatch between sent and received.
    pub fn length_mismatch(&self) -> u64 {
        self.length_mismatch
    }

    /// BER as a fraction in `[0, 1]` (0 when nothing was compared).
    pub fn ber(&self) -> f64 {
        if self.bits_compared == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits_compared as f64
        }
    }

    /// BER as a percentage, the unit the paper reports.
    pub fn ber_percent(&self) -> f64 {
        self.ber() * 100.0
    }

    /// Whether the channel meets the paper's "< 1 % BER" quality bar.
    pub fn meets_paper_quality_bar(&self) -> bool {
        self.ber_percent() < 1.0
    }
}

impl fmt::Display for BerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} errors / {} bits ({:.3}%)",
            self.errors,
            self.bits_compared,
            self.ber_percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_strings_have_zero_ber() {
        let bits = BitString::from_str01("1100101011").unwrap();
        let report = BerReport::compare(&bits, &bits);
        assert_eq!(report.errors(), 0);
        assert_eq!(report.ber(), 0.0);
        assert!(report.meets_paper_quality_bar());
        assert_eq!(report.bits_compared(), 10);
    }

    #[test]
    fn confusion_counts_are_split_by_direction() {
        let sent = BitString::from_str01("1100").unwrap();
        let received = BitString::from_str01("0101").unwrap();
        let report = BerReport::compare(&sent, &received);
        assert_eq!(report.errors(), 2);
        assert_eq!(report.ones_as_zeros(), 1);
        assert_eq!(report.zeros_as_ones(), 1);
        assert_eq!(report.length_mismatch(), 0);
        assert!((report.ber_percent() - 50.0).abs() < 1e-12);
        assert!(!report.meets_paper_quality_bar());
    }

    #[test]
    fn length_mismatch_counts_as_errors() {
        let sent = BitString::from_str01("101010").unwrap();
        let received = BitString::from_str01("1010").unwrap();
        let report = BerReport::compare(&sent, &received);
        assert_eq!(report.errors(), 2);
        assert_eq!(report.length_mismatch(), 2);
        assert_eq!(report.bits_compared(), 6);
    }

    #[test]
    fn empty_comparison_is_zero() {
        let report = BerReport::compare(&BitString::new(), &BitString::new());
        assert_eq!(report.ber(), 0.0);
        assert_eq!(report.bits_compared(), 0);
    }

    #[test]
    fn merged_accumulates() {
        let a = BerReport::compare(
            &BitString::from_str01("1111").unwrap(),
            &BitString::from_str01("1110").unwrap(),
        );
        let b = BerReport::compare(
            &BitString::from_str01("0000").unwrap(),
            &BitString::from_str01("0001").unwrap(),
        );
        let merged = a.merged(b);
        assert_eq!(merged.errors(), 2);
        assert_eq!(merged.bits_compared(), 8);
        assert_eq!(merged.ones_as_zeros(), 1);
        assert_eq!(merged.zeros_as_ones(), 1);
        assert!((merged.ber_percent() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_counts() {
        let report = BerReport::compare(
            &BitString::from_str01("10").unwrap(),
            &BitString::from_str01("11").unwrap(),
        );
        let text = report.to_string();
        assert!(text.contains("1 errors / 2 bits"));
    }

    proptest! {
        #[test]
        fn prop_ber_matches_hamming_distance(a in "[01]{0,64}", b in "[01]{0,64}") {
            let a: BitString = a.parse().unwrap();
            let b: BitString = b.parse().unwrap();
            let report = BerReport::compare(&a, &b);
            prop_assert_eq!(report.errors(), a.hamming_distance(&b) as u64);
            prop_assert!(report.ber() >= 0.0 && report.ber() <= 1.0);
        }
    }
}
