//! Containers for parameter sweeps (the data behind Fig. 9, Fig. 10 and
//! Fig. 11 of the paper).

use crate::json::Json;
use mes_types::Result;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One point of a sweep: the swept parameter value and the metrics measured
/// at it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter (e.g. `tw0` or `tt1` in microseconds).
    pub x: f64,
    /// Bit error rate in percent at this point.
    pub ber_percent: f64,
    /// Transmission rate in kb/s at this point.
    pub rate_kbps: f64,
}

/// A named series of sweep points (one curve of a figure, e.g. "Interval=70").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledSeries {
    label: String,
    points: Vec<SweepPoint>,
}

impl LabeledSeries {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        LabeledSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point.
    pub fn push(&mut self, point: SweepPoint) {
        self.points.push(point);
    }

    /// The collected points.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// The point with the highest transmission rate among those meeting the
    /// BER bound, if any — how the paper picks its recommended parameters.
    pub fn best_under_ber(&self, max_ber_percent: f64) -> Option<SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.ber_percent <= max_ber_percent)
            .max_by(|a, b| {
                a.rate_kbps
                    .partial_cmp(&b.rate_kbps)
                    .expect("rates are finite")
            })
            .copied()
    }
}

/// A full sweep: several labelled series over the same x-axis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepSeries {
    x_label: String,
    series: Vec<LabeledSeries>,
}

impl SweepSeries {
    /// Creates an empty sweep with an x-axis label.
    pub fn new(x_label: impl Into<String>) -> Self {
        SweepSeries {
            x_label: x_label.into(),
            series: Vec::new(),
        }
    }

    /// The x-axis label.
    pub fn x_label(&self) -> &str {
        &self.x_label
    }

    /// Adds a series.
    pub fn push(&mut self, series: LabeledSeries) {
        self.series.push(series);
    }

    /// The collected series.
    pub fn series(&self) -> &[LabeledSeries] {
        &self.series
    }

    /// Renders the sweep as CSV with columns
    /// `series,x,ber_percent,rate_kbps`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,ber_percent,rate_kbps\n");
        for series in &self.series {
            for point in series.points() {
                let _ = writeln!(
                    out,
                    "{},{},{:.6},{:.6}",
                    series.label(),
                    point.x,
                    point.ber_percent,
                    point.rate_kbps
                );
            }
        }
        out
    }

    /// Serializes the sweep as a [`Json`] document (`x_label` plus one
    /// `{label, points}` object per series). Metric values use the exact
    /// round-trip number encoding, so [`SweepSeries::from_json`] reproduces
    /// the sweep bit-identically.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("x_label", Json::string(&self.x_label)),
            (
                "series",
                Json::array(
                    self.series
                        .iter()
                        .map(|series| {
                            Json::object([
                                ("label", Json::string(series.label())),
                                (
                                    "points",
                                    Json::array(
                                        series
                                            .points()
                                            .iter()
                                            .map(|point| {
                                                Json::object([
                                                    ("x", Json::f64(point.x)),
                                                    ("ber_percent", Json::f64(point.ber_percent)),
                                                    ("rate_kbps", Json::f64(point.rate_kbps)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a sweep from [`SweepSeries::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`mes_types::MesError::Serialization`] when a field is missing
    /// or has the wrong type.
    pub fn from_json(json: &Json) -> Result<Self> {
        let mut sweep = SweepSeries::new(json.require("x_label")?.as_str()?);
        for series in json.require("series")?.as_array()? {
            let mut labeled = LabeledSeries::new(series.require("label")?.as_str()?);
            for point in series.require("points")?.as_array()? {
                labeled.push(SweepPoint {
                    x: point.require("x")?.as_f64()?,
                    ber_percent: point.require("ber_percent")?.as_f64()?,
                    rate_kbps: point.require("rate_kbps")?.as_f64()?,
                });
            }
            sweep.push(labeled);
        }
        Ok(sweep)
    }

    /// The overall best point under a BER bound across every series, with the
    /// label of the series it came from.
    pub fn best_under_ber(&self, max_ber_percent: f64) -> Option<(String, SweepPoint)> {
        self.series
            .iter()
            .filter_map(|s| {
                s.best_under_ber(max_ber_percent)
                    .map(|p| (s.label().to_string(), p))
            })
            .max_by(|a, b| {
                a.1.rate_kbps
                    .partial_cmp(&b.1.rate_kbps)
                    .expect("rates are finite")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(x: f64, ber: f64, rate: f64) -> SweepPoint {
        SweepPoint {
            x,
            ber_percent: ber,
            rate_kbps: rate,
        }
    }

    #[test]
    fn best_under_ber_picks_fastest_compliant_point() {
        let mut series = LabeledSeries::new("Interval=70");
        series.push(point(15.0, 0.6, 13.1));
        series.push(point(25.0, 0.5, 11.0));
        series.push(point(10.0, 2.1, 15.0));
        let best = series.best_under_ber(1.0).unwrap();
        assert_eq!(best.x, 15.0);
        assert!(series.best_under_ber(0.1).is_none());
        assert_eq!(series.label(), "Interval=70");
        assert_eq!(series.points().len(), 3);
    }

    #[test]
    fn sweep_best_spans_series() {
        let mut sweep = SweepSeries::new("tw0 (us)");
        let mut slow = LabeledSeries::new("Interval=130");
        slow.push(point(15.0, 0.4, 9.0));
        let mut fast = LabeledSeries::new("Interval=70");
        fast.push(point(15.0, 0.6, 13.1));
        sweep.push(slow);
        sweep.push(fast);
        let (label, best) = sweep.best_under_ber(1.0).unwrap();
        assert_eq!(label, "Interval=70");
        assert!((best.rate_kbps - 13.1).abs() < 1e-12);
        assert_eq!(sweep.x_label(), "tw0 (us)");
        assert_eq!(sweep.series().len(), 2);
    }

    #[test]
    fn empty_sweep_has_no_best() {
        let sweep = SweepSeries::new("x");
        assert!(sweep.best_under_ber(1.0).is_none());
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let mut sweep = SweepSeries::new("tw0 (us)");
        let mut series = LabeledSeries::new("Interval=70");
        series.push(point(15.0, 0.554, 13.105));
        series.push(point(25.0, 1.0 / 3.0, 11.02));
        sweep.push(series);
        sweep.push(LabeledSeries::new("Interval=90"));
        let json = sweep.to_json();
        let reparsed = Json::parse(&json.render()).unwrap();
        assert_eq!(SweepSeries::from_json(&reparsed).unwrap(), sweep);
        assert!(SweepSeries::from_json(&Json::Null).is_err());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut sweep = SweepSeries::new("tt1 (us)");
        let mut series = LabeledSeries::new("flock");
        series.push(point(160.0, 0.615, 7.182));
        sweep.push(series);
        let csv = sweep.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,x,ber_percent,rate_kbps");
        assert!(lines[1].starts_with("flock,160,0.615"));
        assert_eq!(lines.len(), 2);
    }
}
