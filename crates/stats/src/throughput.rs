//! Transmission-rate accounting.

use mes_types::Nanos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transmission-rate measurement: payload bits moved over elapsed virtual
/// (or wall-clock) time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    payload_bits: u64,
    elapsed: Nanos,
}

impl ThroughputReport {
    /// Creates a report for `payload_bits` transmitted in `elapsed`.
    pub fn new(payload_bits: u64, elapsed: Nanos) -> Self {
        ThroughputReport {
            payload_bits,
            elapsed,
        }
    }

    /// Number of payload bits transmitted.
    pub fn payload_bits(&self) -> u64 {
        self.payload_bits
    }

    /// Elapsed time for the whole transmission.
    pub fn elapsed(&self) -> Nanos {
        self.elapsed
    }

    /// Bits per second (0 if no time elapsed).
    pub fn bits_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.payload_bits as f64 / secs
        }
    }

    /// Kilobits per second, the unit used throughout the paper
    /// (1 kb/s = 1000 bit/s).
    pub fn kilobits_per_second(&self) -> f64 {
        self.bits_per_second() / 1_000.0
    }

    /// Average time spent per transmitted bit.
    pub fn mean_bit_time(&self) -> Nanos {
        if self.payload_bits == 0 {
            Nanos::ZERO
        } else {
            self.elapsed / self.payload_bits
        }
    }

    /// Projects the aggregate rate of `channels` independent Trojan/Spy pairs
    /// running in parallel — the paper's Section V.C.1 estimate (6833
    /// concurrent processes, or 1024 file descriptors for `flock`).
    pub fn parallel_projection(&self, channels: u64) -> f64 {
        self.kilobits_per_second() * channels as f64
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bits in {} ({:.3} kb/s)",
            self.payload_bits,
            self.elapsed,
            self.kilobits_per_second()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_types::Micros;

    #[test]
    fn paper_event_rate_is_reproduced() {
        // 13.105 kb/s means ~76.3us per bit.
        let report = ThroughputReport::new(10_000, Nanos::from_micros_f64(10_000.0 * 76.3));
        assert!((report.kilobits_per_second() - 13.106).abs() < 0.01);
        assert_eq!(report.payload_bits(), 10_000);
    }

    #[test]
    fn zero_elapsed_gives_zero_rate() {
        let report = ThroughputReport::new(100, Nanos::ZERO);
        assert_eq!(report.bits_per_second(), 0.0);
        assert_eq!(report.mean_bit_time(), Nanos::ZERO);
    }

    #[test]
    fn zero_bits_gives_zero_mean_bit_time() {
        let report = ThroughputReport::new(0, Micros::new(100).to_nanos());
        assert_eq!(report.mean_bit_time(), Nanos::ZERO);
        assert_eq!(report.bits_per_second(), 0.0);
    }

    #[test]
    fn mean_bit_time_divides_evenly() {
        let report = ThroughputReport::new(4, Micros::new(400).to_nanos());
        assert_eq!(report.mean_bit_time(), Micros::new(100).to_nanos());
        assert_eq!(report.elapsed(), Micros::new(400).to_nanos());
    }

    #[test]
    fn parallel_projection_scales_linearly() {
        let report = ThroughputReport::new(1_000, Nanos::from_micros_f64(1_000.0 * 76.3));
        let single = report.kilobits_per_second();
        let projected = report.parallel_projection(6833);
        assert!((projected - single * 6833.0).abs() < 1e-6);
        // "tens of Mbps" per the paper.
        assert!(projected > 10_000.0);
    }

    #[test]
    fn display_mentions_rate() {
        let report = ThroughputReport::new(8, Micros::new(800).to_nanos());
        assert!(report.to_string().contains("kb/s"));
    }
}
