//! A minimal JSON document model with an exact-round-trip number
//! representation.
//!
//! The experiment API (`mes_core::experiment`) serializes
//! `ExperimentSpec`/`ExperimentResult` to JSON so sweeps can cross a process
//! boundary (the `sweepd` harness binary, and the future async/sharded sweep
//! service). The build environment has no registry access, so instead of
//! `serde_json` this module provides a deliberately small document model:
//!
//! * [`Json`] — null / bool / number / string / array / object, with object
//!   key order preserved;
//! * [`Json::parse`] — a recursive-descent parser over the full JSON grammar;
//! * [`Json::render`] — a pretty printer whose output `parse` reproduces.
//!
//! Numbers are stored as their **textual token** rather than as `f64`, so a
//! `u64` seed or plan hash survives the round trip bit-exactly (an `f64`
//! mantissa only holds 53 bits) and an `f64` formatted with Rust's
//! shortest-round-trip `{:?}` parses back to the identical bits.
//!
//! # Examples
//!
//! ```
//! use mes_stats::json::Json;
//!
//! let doc = Json::object([
//!     ("seed", Json::u64(0x9E37_79B9_7F4A_7C15)),
//!     ("ber", Json::f64(0.554)),
//!     ("labels", Json::array(vec![Json::string("Interval=70")])),
//! ]);
//! let text = doc.render();
//! let back = Json::parse(&text)?;
//! assert_eq!(doc, back);
//! assert_eq!(back.get("seed").unwrap().as_u64()?, 0x9E37_79B9_7F4A_7C15);
//! # Ok::<(), mes_types::MesError>(())
//! ```

use mes_types::{MesError, Result};
use std::fmt::Write as _;

/// One JSON value; see the module docs for the design notes.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its textual token for exact round trips.
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved by [`Json::render`].
    Object(Vec<(String, Json)>),
}

fn invalid(reason: impl Into<String>) -> MesError {
    MesError::Serialization {
        reason: reason.into(),
    }
}

impl Json {
    /// A number from an unsigned integer.
    pub fn u64(value: u64) -> Json {
        Json::Number(value.to_string())
    }

    /// A number from a `usize`.
    pub fn usize(value: usize) -> Json {
        Json::Number(value.to_string())
    }

    /// A number from an `f64`, using Rust's shortest representation that
    /// parses back to the identical bits. Non-finite values have no JSON
    /// representation and render as `null`.
    pub fn f64(value: f64) -> Json {
        if value.is_finite() {
            Json::Number(format!("{value:?}"))
        } else {
            Json::Null
        }
    }

    /// A string value.
    pub fn string(value: impl Into<String>) -> Json {
        Json::String(value.into())
    }

    /// An array value.
    pub fn array(values: Vec<Json>) -> Json {
        Json::Array(values)
    }

    /// An object from `(key, value)` pairs, preserving their order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(
            pairs
                .into_iter()
                .map(|(key, value)| (key.into(), value))
                .collect(),
        )
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs
                .iter()
                .find_map(|(k, value)| (k == key).then_some(value)),
            _ => None,
        }
    }

    /// Looks up a key that must be present.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Serialization`] naming the missing key.
    pub fn require(&self, key: &str) -> Result<&Json> {
        self.get(key)
            .ok_or_else(|| invalid(format!("missing field {key:?}")))
    }

    /// The value as a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Serialization`] if the value is not an unsigned
    /// integer token.
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            Json::Number(token) => token
                .parse()
                .map_err(|_| invalid(format!("expected an unsigned integer, got {token}"))),
            other => Err(invalid(format!("expected a number, got {other:?}"))),
        }
    }

    /// The value as a `usize`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Json::as_u64`].
    pub fn as_usize(&self) -> Result<usize> {
        Ok(self.as_u64()? as usize)
    }

    /// The value as an `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Serialization`] if the value is not a number.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Number(token) => token
                .parse()
                .map_err(|_| invalid(format!("malformed number token {token}"))),
            other => Err(invalid(format!("expected a number, got {other:?}"))),
        }
    }

    /// The value as a `bool`.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Serialization`] if the value is not a boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Json::Bool(value) => Ok(*value),
            other => Err(invalid(format!("expected a boolean, got {other:?}"))),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Serialization`] if the value is not a string.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::String(value) => Ok(value),
            other => Err(invalid(format!("expected a string, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Serialization`] if the value is not an array.
    pub fn as_array(&self) -> Result<&[Json]> {
        match self {
            Json::Array(values) => Ok(values),
            other => Err(invalid(format!("expected an array, got {other:?}"))),
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders the document as pretty-printed JSON (two-space indentation,
    /// trailing newline) that [`Json::parse`] reproduces exactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(token) => out.push_str(token),
            Json::String(value) => write_escaped(out, value),
            Json::Array(values) => {
                if values.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (index, value) in values.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (index, (key, value)) in pairs.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Serialization`] describing the first syntax error,
    /// including trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Json> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(invalid(format!(
                "trailing characters after the document at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(invalid(format!(
                "expected {:?} at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(invalid(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            // Objects are ordered pair lists, so a duplicate key would
            // silently shadow on lookup while both spellings round-trip
            // through render — reject it instead of deferring the ambiguity
            // to whoever reads the document.
            if pairs.iter().any(|(existing, _)| *existing == key) {
                return Err(invalid(format!("duplicate object key {key:?}")));
            }
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => {
                    return Err(invalid(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut values = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(values));
        }
        loop {
            values.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(values));
                }
                _ => return Err(invalid(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(invalid("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape(self.pos + 1)?;
                            self.pos += 4;
                            if (0xDC00..=0xDFFF).contains(&code) {
                                return Err(invalid("unpaired low surrogate in \\u escape"));
                            }
                            if (0xD800..=0xDBFF).contains(&code) {
                                // A high surrogate must be followed by a
                                // \uXXXX low surrogate; combine the pair.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(invalid("unpaired high surrogate in \\u escape"));
                                }
                                let low = self.hex_escape(self.pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(invalid(format!(
                                        "high surrogate followed by \\u{low:04x}, expected a \
                                         low surrogate"
                                    )));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(combined)
                                        .expect("surrogate pairs decode to valid scalars"),
                                );
                                self.pos += 6;
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .expect("non-surrogate BMP codes are valid scalars"),
                                );
                            }
                        }
                        other => {
                            return Err(invalid(format!("unknown escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| invalid("invalid UTF-8 inside string"))?;
                    let c = text.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the four hex digits of a `\u` escape starting at `start`.
    fn hex_escape(&self, start: usize) -> Result<u32> {
        let hex = self
            .bytes
            .get(start..start + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| invalid("truncated \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| invalid(format!("malformed \\u escape {hex:?}")))
    }

    fn parse_number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        if token.is_empty() || token == "-" || token.parse::<f64>().is_err() {
            return Err(invalid(format!("malformed number at byte {start}")));
        }
        Ok(Json::Number(token))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_nested_documents() {
        let doc = Json::object([
            ("name", Json::string("fig9")),
            ("seed", Json::u64(u64::MAX)),
            ("rate", Json::f64(13.105)),
            ("valid", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "series",
                Json::array(vec![
                    Json::object([("x", Json::f64(15.0))]),
                    Json::array(vec![]),
                    Json::object::<&str>([]),
                ]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert_eq!(doc.get("seed").unwrap().as_u64().unwrap(), u64::MAX);
        assert_eq!(doc.require("rate").unwrap().as_f64().unwrap(), 13.105);
        assert!(doc.get("missing").is_none());
        assert!(doc.require("missing").is_err());
    }

    #[test]
    fn truncated_documents_are_rejected_at_every_prefix() {
        // Every strict prefix of a well-formed document must fail to parse —
        // the error paths a torn shard frame would exercise.
        let document = r#"{"name": "fig9", "xs": [1, -2.5e3, null], "ok": true}"#;
        for cut in 1..document.len() {
            let prefix = &document[..cut];
            if !document.is_char_boundary(cut) {
                continue;
            }
            assert!(
                Json::parse(prefix).is_err(),
                "prefix {prefix:?} unexpectedly parsed"
            );
        }
        assert!(Json::parse("").is_err());
        // Trailing garbage after a complete value is also an error.
        assert!(Json::parse("{} extra").is_err());
    }

    #[test]
    fn duplicate_object_keys_are_rejected() {
        let error = Json::parse(r#"{"a": 1, "b": 2, "a": 3}"#).unwrap_err();
        assert!(
            error.to_string().contains("duplicate object key \"a\""),
            "unexpected error: {error}"
        );
        // Nested objects are checked too; sibling objects may repeat keys.
        assert!(Json::parse(r#"{"outer": {"k": 1, "k": 2}}"#).is_err());
        assert!(Json::parse(r#"[{"k": 1}, {"k": 2}]"#).is_ok());
        // Escapes count by decoded value: "a" is another "a".
        assert!(Json::parse(r#"{"a": 1, "a": 2}"#).is_err());
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for value in [0.1, 1.0 / 3.0, 13.105, f64::MIN_POSITIVE, -1e-300, 0.0] {
            let doc = Json::f64(value);
            let back = Json::parse(&doc.render()).unwrap().as_f64().unwrap();
            assert_eq!(value.to_bits(), back.to_bits(), "{value}");
        }
        assert!(Json::f64(f64::NAN).is_null());
        assert!(Json::f64(f64::INFINITY).is_null());
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "quote \" backslash \\ newline \n tab \t control \u{1} unicode \u{1F980}";
        let doc = Json::string(tricky);
        assert_eq!(
            Json::parse(&doc.render()).unwrap().as_str().unwrap(),
            tricky
        );
    }

    #[test]
    fn surrogate_pair_escapes_decode_to_one_scalar() {
        // What Python's json.dump(ensure_ascii=True) emits for a crab emoji.
        let parsed = Json::parse("\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(parsed.as_str().unwrap(), "\u{1F980}");
        // Raw (unescaped) non-BMP characters still parse too.
        assert_eq!(Json::parse(r#""🦀""#).unwrap().as_str().unwrap(), "🦀");
        for bad in [
            r#""\ud83e""#,       // unpaired high surrogate
            r#""\ud83eA""#,      // high surrogate followed by a non-surrogate
            r#""\udd80""#,       // lone low surrogate
            r#""\ud83e\ud83e""#, // two high surrogates
        ] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn parses_standard_json_forms() {
        let doc = Json::parse(r#"{"a": [1, 2.5, -3, 1e3], "b": {"c": null}}"#).unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64().unwrap(), 1);
        assert_eq!(a[1].as_f64().unwrap(), 2.5);
        assert_eq!(a[2].as_f64().unwrap(), -3.0);
        assert_eq!(a[3].as_f64().unwrap(), 1000.0);
        assert!(doc.get("b").unwrap().get("c").unwrap().is_null());
        assert!(a[1].as_u64().is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "nul",
            "{} trailing",
            "-",
            "\"bad \\q escape\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessor_type_errors_are_reported() {
        let doc = Json::parse(r#"{"s": "x", "n": 1}"#).unwrap();
        assert!(doc.get("s").unwrap().as_f64().is_err());
        assert!(doc.get("s").unwrap().as_bool().is_err());
        assert!(doc.get("n").unwrap().as_str().is_err());
        assert!(doc.get("n").unwrap().as_array().is_err());
        assert_eq!(doc.get("n").unwrap().as_usize().unwrap(), 1);
    }
}
