//! Control frames of the framed spec/result wire protocol.
//!
//! Requests on the `sweepd` wire (both the `--worker` stdin/stdout loop and
//! the `serve` Unix-socket daemon) are either `ExperimentSpec` documents or
//! small control objects of the form `{"control": "<verb>"}` — a layout no
//! spec, result or outcome document uses, so the two kinds are
//! distinguishable without a version field. This module owns the verbs and
//! the encode/decode helpers so workers, the daemon and its clients agree on
//! the exact frames.

use crate::json::Json;

/// Verb asking a worker or daemon to finish in-flight work and exit
/// cleanly (acknowledged with [`control_ack`] before the peer stops).
pub const CONTROL_SHUTDOWN: &str = "shutdown";

/// Verb asking the serve daemon for its scheduler and cache statistics
/// (answered with a `{"stats": {...}}` frame).
pub const CONTROL_STATS: &str = "stats";

/// Builds a control request payload: `{"control": "<verb>"}`.
pub fn control_frame(verb: &str) -> Json {
    Json::object([("control", Json::string(verb))])
}

/// Builds the acknowledgment payload for a control verb: `{"ok": "<verb>"}`.
pub fn control_ack(verb: &str) -> Json {
    Json::object([("ok", Json::string(verb))])
}

/// The control verb of a parsed frame, or `None` when the document is not a
/// control object (e.g. a spec).
pub fn control_verb(json: &Json) -> Option<&str> {
    json.get("control")?.as_str().ok()
}

/// The acknowledged verb of a parsed reply, or `None` when the document is
/// not an acknowledgment.
pub fn ack_verb(json: &Json) -> Option<&str> {
    json.get("ok")?.as_str().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_frames_round_trip_and_specs_are_not_controls() {
        let frame = control_frame(CONTROL_SHUTDOWN).render();
        let parsed = Json::parse(&frame).unwrap();
        assert_eq!(control_verb(&parsed), Some(CONTROL_SHUTDOWN));
        assert_eq!(ack_verb(&parsed), None);

        let ack = control_ack(CONTROL_STATS).render();
        let parsed = Json::parse(&ack).unwrap();
        assert_eq!(ack_verb(&parsed), Some(CONTROL_STATS));
        assert_eq!(control_verb(&parsed), None);

        let spec_like = Json::parse(r#"{"name": "fig9", "points": []}"#).unwrap();
        assert_eq!(control_verb(&spec_like), None);

        // A "control" key holding a non-string is not a control frame.
        let odd = Json::parse(r#"{"control": 7}"#).unwrap();
        assert_eq!(control_verb(&odd), None);
    }
}
