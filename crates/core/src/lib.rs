//! `mes-core` — the MES-Attacks covert channels.
//!
//! This crate implements the primary contribution of *MES-Attacks:
//! Software-Controlled Covert Channels based on Mutual Exclusion and
//! Synchronization* (DAC 2023): a Trojan process encodes secret bits in the
//! time it keeps a Spy process in a *constraint state* — blocked on a lock it
//! holds, or waiting for a synchronization condition it controls — and the
//! Spy decodes them by timestamping how long it stayed constrained.
//!
//! The crate is organised in layers:
//!
//! * [`protocol`] — one module per MESM (flock, FileLockEX, Mutex, Semaphore,
//!   Event, WaitableTimer), each compiling bits into a [`plan::SlotAction`]
//!   sequence (Protocol 1 / Protocol 2 of the paper);
//! * [`backend`] — the [`backend::ChannelBackend`] abstraction plus
//!   [`backend::SimBackend`], which runs a plan on the `mes-sim` simulated
//!   kernel (a real-Linux backend lives in `mes-host`);
//! * [`channel`] — the [`CovertChannel`] orchestrator: framing, transmission,
//!   adaptive threshold recovery, BER/TR accounting;
//! * [`exec`] — the [`RoundExecutor`]: batched, deterministic, multi-threaded
//!   execution of independent transmission rounds;
//! * [`experiment`] — the unified experiment API: a serializable
//!   [`ExperimentSpec`] submitted to a caching [`SweepService`] yields a
//!   typed [`ExperimentResult`] — the surface every figure/table harness and
//!   the `sweepd` process boundary speak;
//! * [`serve`] — the multi-tenant scheduler behind the `sweepd serve`
//!   daemon: concurrent submissions decomposed into rounds, coalesced into
//!   cross-tenant shape batches, and executed fair-share on one shared pool;
//! * [`multibit`] — multi-bit symbol transmission (Section VI);
//! * [`sweep`] — deprecated shims over [`experiment`] for the historical
//!   sweep entry points;
//! * [`parallel`] — the multi-channel rate projections of Section V.C.1.
//!
//! # Examples
//!
//! Leak one byte over the Event channel in the local scenario:
//!
//! ```
//! use mes_core::{ChannelConfig, CovertChannel, SimBackend};
//! use mes_scenario::ScenarioProfile;
//! use mes_types::{BitString, Mechanism, Scenario};
//!
//! let profile = ScenarioProfile::local();
//! let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event)?;
//! let channel = CovertChannel::new(config, profile.clone())?;
//! let mut backend = SimBackend::new(profile, 7);
//!
//! let secret = BitString::from_bytes(b"K");
//! let report = channel.transmit(&secret, &mut backend)?;
//! assert_eq!(report.received_payload(), &secret);
//! assert!(report.throughput().kilobits_per_second() > 1.0);
//! # Ok::<(), mes_types::MesError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod channel;
pub mod config;
pub mod exec;
pub mod experiment;
pub mod multibit;
pub mod parallel;
pub mod plan;
pub mod protocol;
pub mod serve;
pub mod sweep;

pub use backend::{round_seed, ChannelBackend, Observation, SimBackend};
pub use channel::{CovertChannel, TransmissionReport};
pub use config::ChannelConfig;
pub use exec::{PreparedRound, RoundExecutor, RoundRequest, SchedulePolicy};
pub use experiment::{ExperimentResult, ExperimentSpec, SweepService};
pub use multibit::{SymbolChannel, SymbolTransmissionReport};
pub use plan::{SlotAction, TransmissionPlan};
pub use serve::{ServeConfig, ServeStats, ServeTelemetry, SweepServer};
