//! Batched, deterministic, multi-threaded round execution.
//!
//! Every headline result of the paper (Figs. 8–11, Tables II–VI) is an
//! aggregate over hundreds of independent Trojan/Spy rounds, and the Section
//! V.C.1 projection assumes thousands of concurrent channels. The
//! [`RoundExecutor`] turns a batch of [`TransmissionPlan`]s into one
//! [`Observation`] per plan by fanning the rounds out over scoped worker
//! threads, while keeping the result *bit-identical* to sequential
//! execution: round `i` is seeded by
//! [`round_seed`]`(base, i)` (see [`ChannelBackend::transmit_round`]), so
//! its outcome depends only on the plan and the index — never on scheduling.
//!
//! # Examples
//!
//! Run 8 rounds of the local Event channel across worker threads and check
//! they match the sequential batch. The same plan carries every round, so the
//! batch is expressed as eight [`RoundRequest`]s borrowing one allocation
//! instead of eight clones:
//!
//! ```
//! use mes_core::exec::{RoundExecutor, RoundRequest};
//! use mes_core::{ChannelBackend, ChannelConfig, CovertChannel, SimBackend};
//! use mes_scenario::ScenarioProfile;
//! use mes_types::{BitString, Mechanism, Scenario};
//!
//! let profile = ScenarioProfile::local();
//! let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event)?;
//! let channel = CovertChannel::new(config, profile.clone())?;
//! let payload = BitString::from_bytes(b"K");
//! let (_, plan) = channel.plan_for(&payload)?;
//! let rounds: Vec<RoundRequest> = (0..8).map(|i| RoundRequest::new(&plan, i)).collect();
//!
//! let parallel = RoundExecutor::new(4)
//!     .execute_rounds(&rounds, || SimBackend::new(profile.clone(), 7))?;
//! let sequential = SimBackend::new(profile.clone(), 7).transmit_batch(&vec![plan; 8])?;
//! assert_eq!(parallel, sequential);
//! # Ok::<(), mes_types::MesError>(())
//! ```

use crate::backend::{ChannelBackend, Observation, SimBackend};
use crate::channel::{CovertChannel, TransmissionReport};
use crate::plan::TransmissionPlan;
use mes_types::{BitString, MesError, Result};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

pub use crate::backend::round_seed;

/// One round of a batch, addressed by its round index and borrowing its plan.
///
/// Batches are views over plans owned elsewhere: rounds that share a plan
/// reference the same allocation instead of cloning it, and rounds keep their
/// original indices even when a batch is filtered (e.g. when the experiment
/// cache removes already-measured rounds), so the round-indexed seeding — and
/// therefore the result — is unaffected by what else runs in the batch.
#[derive(Debug, Clone, Copy)]
pub struct RoundRequest<'a> {
    /// The plan the round executes.
    pub plan: &'a TransmissionPlan,
    /// The round's index, fed to [`ChannelBackend::transmit_round`].
    pub round_index: u64,
}

impl<'a> RoundRequest<'a> {
    /// Creates a request for `plan` at `round_index`.
    pub fn new(plan: &'a TransmissionPlan, round_index: u64) -> Self {
        RoundRequest { plan, round_index }
    }
}

/// Fans batches of transmission rounds out over worker threads.
///
/// Workers pull round indices from a shared cursor, so load balances even
/// when plans have very different durations; each worker owns one backend
/// created by the caller's factory and reuses it (and its simulation engine)
/// for every round it executes. Results are returned in plan order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundExecutor {
    workers: usize,
}

impl RoundExecutor {
    /// Creates an executor with a fixed worker count (at least 1).
    pub fn new(workers: usize) -> Self {
        RoundExecutor {
            workers: workers.max(1),
        }
    }

    /// An executor that runs rounds one after another on the calling thread.
    pub fn sequential() -> Self {
        RoundExecutor::new(1)
    }

    /// An executor sized to the machine's available parallelism.
    pub fn available_parallelism() -> Self {
        RoundExecutor::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The number of worker threads the executor uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes one round per plan and returns the observations in plan
    /// order. Round `i` is executed with round index `i`; this is the common
    /// whole-batch entry point over [`RoundExecutor::execute_rounds`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoundExecutor::execute_rounds`].
    pub fn execute<B, F>(
        &self,
        plans: &[TransmissionPlan],
        make_backend: F,
    ) -> Result<Vec<Observation>>
    where
        B: ChannelBackend,
        F: Fn() -> B + Sync,
    {
        let rounds: Vec<RoundRequest<'_>> = plans
            .iter()
            .enumerate()
            .map(|(index, plan)| RoundRequest::new(plan, index as u64))
            .collect();
        self.execute_rounds(&rounds, make_backend)
    }

    /// Executes an explicitly indexed batch of rounds and returns the
    /// observations in request order.
    ///
    /// `make_backend` is called once per worker (once total for a sequential
    /// executor); every worker must observe the same factory output, i.e.
    /// backends that differ only in unobservable state. Each worker's
    /// backend runs the whole batch inside one
    /// [`ChannelBackend::begin_batch`]/[`ChannelBackend::end_batch`]
    /// session, so session-capable backends (persistent host worker pairs,
    /// warm engines) amortize their setup over every round the worker
    /// claims. Rounds are executed via [`ChannelBackend::transmit_round`]
    /// with their request's index, which is what makes the result
    /// independent of the worker count — and of which other rounds share the
    /// batch, so callers may filter a batch (cache hits, resumed grids) or
    /// repeat one plan under many indices without cloning it.
    ///
    /// # Errors
    ///
    /// Returns the first error in request order (or a session-setup error if
    /// [`ChannelBackend::begin_batch`] fails). Workers stop claiming new
    /// rounds as soon as any round fails, so a failing batch aborts promptly
    /// instead of simulating the rest of the grid; rounds already claimed
    /// may still complete.
    pub fn execute_rounds<B, F>(
        &self,
        rounds: &[RoundRequest<'_>],
        make_backend: F,
    ) -> Result<Vec<Observation>>
    where
        B: ChannelBackend,
        F: Fn() -> B + Sync,
    {
        let workers = self.workers.min(rounds.len().max(1));
        if workers <= 1 {
            let mut backend = make_backend();
            backend.begin_batch()?;
            let observations = rounds
                .iter()
                .map(|round| backend.transmit_round(round.plan, round.round_index))
                .collect();
            backend.end_batch();
            return observations;
        }

        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let session_error: Mutex<Option<MesError>> = Mutex::new(None);
        let slots: Mutex<Vec<Option<Result<Observation>>>> =
            Mutex::new((0..rounds.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut backend = make_backend();
                    if let Err(error) = backend.begin_batch() {
                        failed.store(true, Ordering::Relaxed);
                        session_error
                            .lock()
                            .expect("session error mutex poisoned")
                            .get_or_insert(error);
                        return;
                    }
                    while !failed.load(Ordering::Relaxed) {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(round) = rounds.get(index) else {
                            break;
                        };
                        let outcome = backend.transmit_round(round.plan, round.round_index);
                        if outcome.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        slots.lock().expect("result mutex poisoned")[index] = Some(outcome);
                    }
                    backend.end_batch();
                });
            }
        });

        if let Some(error) = session_error
            .into_inner()
            .expect("session error mutex poisoned")
        {
            return Err(error);
        }
        // Indices are claimed in order and every claimed round completes, so
        // unfilled slots only appear after an earlier round's failure; the
        // first error in plan order is therefore always a real one.
        slots
            .into_inner()
            .expect("result mutex poisoned")
            .into_iter()
            .enumerate()
            .map(|(index, slot)| {
                slot.unwrap_or_else(|| {
                    Err(MesError::Simulation {
                        reason: format!("round {index} skipped after an earlier round failed"),
                    })
                })
            })
            .collect()
    }

    /// Transmits one payload per round through `channel` on simulated
    /// backends seeded from `base_seed`, recovering each round's report.
    ///
    /// This is the parallel counterpart of
    /// [`CovertChannel::transmit_many`]: plans are compiled up front, the
    /// rounds fan out across the executor's workers (each with its own
    /// [`SimBackend`] reusing one engine), and the reports come back in
    /// payload order — bit-identical for any worker count, and to
    /// `transmit_many` on a `SimBackend::new(profile, base_seed)`.
    ///
    /// # Errors
    ///
    /// Returns an error if any plan cannot be built or any round fails.
    pub fn transmit_payloads(
        &self,
        channel: &CovertChannel,
        payloads: &[BitString],
        base_seed: u64,
    ) -> Result<Vec<TransmissionReport>> {
        let (wires, plans) = channel.compile_batch(payloads)?;
        let profile = std::sync::Arc::clone(channel.shared_profile());
        let observations = self.execute(&plans, || {
            SimBackend::new(std::sync::Arc::clone(&profile), base_seed)
        })?;
        Ok(channel.recover_batch(payloads, &wires, &observations))
    }
}

impl Default for RoundExecutor {
    fn default() -> Self {
        RoundExecutor::available_parallelism()
    }
}

/// One compiled round awaiting execution: the channel that will decode it
/// plus the payload and wire bits it carries.
///
/// Harnesses that batch rounds across *different* channels (one per table
/// row, sweep point or ablation variant) keep a `Vec<PreparedRound>` next to
/// the `Vec<TransmissionPlan>` returned by [`PreparedRound::new`], hand the
/// plans to [`ChannelBackend::transmit_batch`] or
/// [`RoundExecutor::execute`], and decode each observation with
/// [`PreparedRound::recover`]. For many rounds on a *single* channel use
/// [`CovertChannel::transmit_many`] or
/// [`RoundExecutor::transmit_payloads`] instead.
#[derive(Debug, Clone)]
pub struct PreparedRound {
    channel: CovertChannel,
    payload: BitString,
    wire: BitString,
}

impl PreparedRound {
    /// Compiles `payload` for `channel`, returning the round and its plan.
    /// The plan is returned separately so callers can collect plans into a
    /// contiguous batch without cloning them again at execution time.
    ///
    /// # Errors
    ///
    /// Returns an error if the plan cannot be built for the channel's
    /// configuration.
    pub fn new(channel: CovertChannel, payload: BitString) -> Result<(Self, TransmissionPlan)> {
        let (wire, plan) = channel.plan_for(&payload)?;
        Ok((
            PreparedRound {
                channel,
                payload,
                wire,
            },
            plan,
        ))
    }

    /// The channel this round belongs to.
    pub fn channel(&self) -> &CovertChannel {
        &self.channel
    }

    /// The payload the round carries.
    pub fn payload(&self) -> &BitString {
        &self.payload
    }

    /// Decodes the round's observation into a full report.
    pub fn recover(&self, observation: &Observation) -> TransmissionReport {
        self.channel.recover(&self.payload, &self.wire, observation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChannelConfig;
    use mes_coding::BitSource;
    use mes_scenario::ScenarioProfile;
    use mes_types::{Mechanism, Scenario};

    fn plans_for(
        mechanism: Mechanism,
        rounds: usize,
        bits: usize,
    ) -> (CovertChannel, Vec<TransmissionPlan>) {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, mechanism).unwrap();
        let channel = CovertChannel::new(config, profile).unwrap();
        let plans = (0..rounds)
            .map(|i| {
                let payload = BitSource::new(i as u64).random_bits(bits);
                channel.plan_for(&payload).unwrap().1
            })
            .collect();
        (channel, plans)
    }

    #[test]
    fn parallel_execution_matches_sequential_bit_for_bit() {
        let (_, plans) = plans_for(Mechanism::Event, 12, 32);
        let profile = ScenarioProfile::local();
        let sequential = RoundExecutor::sequential()
            .execute(&plans, || SimBackend::new(profile.clone(), 99))
            .unwrap();
        let parallel = RoundExecutor::new(4)
            .execute(&plans, || SimBackend::new(profile.clone(), 99))
            .unwrap();
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.len(), 12);
    }

    #[test]
    fn executor_matches_backend_batch() {
        let (_, plans) = plans_for(Mechanism::Flock, 6, 16);
        let profile = ScenarioProfile::local();
        let batched = SimBackend::new(profile.clone(), 5)
            .transmit_batch(&plans)
            .unwrap();
        let executed = RoundExecutor::new(3)
            .execute(&plans, || SimBackend::new(profile.clone(), 5))
            .unwrap();
        assert_eq!(batched, executed);
    }

    #[test]
    fn transmit_payloads_recovers_reports_in_order() {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        let channel = CovertChannel::new(config, profile).unwrap();
        let payloads: Vec<_> = (0..5)
            .map(|i| BitSource::new(100 + i).random_bits(64))
            .collect();
        let reports = RoundExecutor::new(2)
            .transmit_payloads(&channel, &payloads, 11)
            .unwrap();
        assert_eq!(reports.len(), 5);
        for (payload, report) in payloads.iter().zip(&reports) {
            assert_eq!(report.sent_payload(), payload);
            assert!(report.frame_valid());
            assert!(report.wire_ber().ber_percent() < 5.0);
        }
        let again = RoundExecutor::sequential()
            .transmit_payloads(&channel, &payloads, 11)
            .unwrap();
        assert_eq!(reports, again);
    }

    #[test]
    fn filtered_round_requests_keep_their_indices() {
        let (_, plans) = plans_for(Mechanism::Event, 6, 16);
        let profile = ScenarioProfile::local();
        let full = RoundExecutor::new(3)
            .execute(&plans, || SimBackend::new(profile.clone(), 42))
            .unwrap();
        // Executing a filtered view of the batch (as the experiment cache
        // does for misses) reproduces exactly the full batch's observations
        // at the surviving indices.
        let keep = [1usize, 3, 4];
        let subset: Vec<RoundRequest<'_>> = keep
            .iter()
            .map(|&i| RoundRequest::new(&plans[i], i as u64))
            .collect();
        let partial = RoundExecutor::new(2)
            .execute_rounds(&subset, || SimBackend::new(profile.clone(), 42))
            .unwrap();
        for (slot, &index) in keep.iter().enumerate() {
            assert_eq!(partial[slot], full[index], "round {index}");
        }
    }

    #[test]
    fn shared_plan_requests_match_cloned_plans() {
        let (_, plans) = plans_for(Mechanism::Flock, 1, 16);
        let plan = &plans[0];
        let profile = ScenarioProfile::local();
        let shared: Vec<RoundRequest<'_>> = (0..5).map(|i| RoundRequest::new(plan, i)).collect();
        let borrowed = RoundExecutor::new(2)
            .execute_rounds(&shared, || SimBackend::new(profile.clone(), 17))
            .unwrap();
        let cloned = RoundExecutor::new(2)
            .execute(&vec![plan.clone(); 5], || {
                SimBackend::new(profile.clone(), 17)
            })
            .unwrap();
        assert_eq!(borrowed, cloned);
        // Rounds of one plan still sample independent noise.
        assert_ne!(borrowed[0], borrowed[1]);
    }

    #[test]
    fn executor_surfaces_round_errors() {
        // An Event plan compiled for the local profile deadlocks when run
        // against the cross-VM profile, whose sessions cannot see each
        // other's kernel-object namespace.
        let (_, plans) = plans_for(Mechanism::Event, 3, 8);
        let vm = ScenarioProfile::cross_vm();
        let result = RoundExecutor::new(2).execute(&plans, || SimBackend::new(vm.clone(), 1));
        assert!(result.is_err());
    }

    #[test]
    fn constructors_clamp_workers() {
        assert_eq!(RoundExecutor::new(0).workers(), 1);
        assert_eq!(RoundExecutor::sequential().workers(), 1);
        assert!(RoundExecutor::available_parallelism().workers() >= 1);
        assert!(RoundExecutor::default().workers() >= 1);
    }
}
