//! Batched, deterministic, multi-threaded round execution.
//!
//! Every headline result of the paper (Figs. 8–11, Tables II–VI) is an
//! aggregate over hundreds of independent Trojan/Spy rounds, and the Section
//! V.C.1 projection assumes thousands of concurrent channels. The
//! [`RoundExecutor`] turns a batch of [`TransmissionPlan`]s into one
//! [`Observation`] per plan by fanning the rounds out over scoped worker
//! threads, while keeping the result *bit-identical* to sequential
//! execution: round `i` is seeded by
//! [`round_seed`]`(base, i)` (see [`ChannelBackend::transmit_round`]), so
//! its outcome depends only on the plan and the index — never on scheduling.
//!
//! # Examples
//!
//! Run 8 rounds of the local Event channel across worker threads and check
//! they match the sequential batch. The same plan carries every round, so the
//! batch is expressed as eight [`RoundRequest`]s borrowing one allocation
//! instead of eight clones:
//!
//! ```
//! use mes_core::exec::{RoundExecutor, RoundRequest};
//! use mes_core::{ChannelBackend, ChannelConfig, CovertChannel, SimBackend};
//! use mes_scenario::ScenarioProfile;
//! use mes_types::{BitString, Mechanism, Scenario};
//!
//! let profile = ScenarioProfile::local();
//! let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event)?;
//! let channel = CovertChannel::new(config, profile.clone())?;
//! let payload = BitString::from_bytes(b"K");
//! let (_, plan) = channel.plan_for(&payload)?;
//! let rounds: Vec<RoundRequest> = (0..8).map(|i| RoundRequest::new(&plan, i)).collect();
//!
//! let parallel = RoundExecutor::new(4)
//!     .execute_rounds(&rounds, || SimBackend::new(profile.clone(), 7))?;
//! let sequential = SimBackend::new(profile.clone(), 7).transmit_batch(&vec![plan; 8])?;
//! assert_eq!(parallel, sequential);
//! # Ok::<(), mes_types::MesError>(())
//! ```

use crate::backend::{ChannelBackend, Observation, SimBackend};
use crate::channel::{CovertChannel, TransmissionReport};
use crate::plan::TransmissionPlan;
use mes_types::{BitString, MesError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

pub use crate::backend::round_seed;

pub mod model;

/// One round of a batch, addressed by its round index and borrowing its plan.
///
/// Batches are views over plans owned elsewhere: rounds that share a plan
/// reference the same allocation instead of cloning it, and rounds keep their
/// original indices even when a batch is filtered (e.g. when the experiment
/// cache removes already-measured rounds), so the round-indexed seeding — and
/// therefore the result — is unaffected by what else runs in the batch.
#[derive(Debug, Clone, Copy)]
pub struct RoundRequest<'a> {
    /// The plan the round executes.
    pub plan: &'a TransmissionPlan,
    /// The round's index, fed to [`ChannelBackend::transmit_round`].
    pub round_index: u64,
    /// Precomputed shape fingerprint, when the caller already holds one
    /// (grids precompute them at compilation). Scheduling hint only: it
    /// decides which run the round joins, never what the round computes.
    shape: Option<u64>,
}

impl<'a> RoundRequest<'a> {
    /// Creates a request for `plan` at `round_index`.
    pub fn new(plan: &'a TransmissionPlan, round_index: u64) -> Self {
        RoundRequest {
            plan,
            round_index,
            shape: None,
        }
    }

    /// Attaches the plan's precomputed [`TransmissionPlan::shape_fingerprint`]
    /// so the shape-grouped schedule never re-walks the plan (builder style).
    pub fn with_shape_fingerprint(mut self, shape: u64) -> Self {
        self.shape = Some(shape);
        self
    }

    /// The round's shape fingerprint: the attached one, or computed from the
    /// plan on demand.
    fn shape_fingerprint(&self) -> u64 {
        self.shape.unwrap_or_else(|| self.plan.shape_fingerprint())
    }
}

/// The order in which an executor's workers claim a batch's rounds.
///
/// Either policy produces bit-identical observations: a round's result
/// depends only on its plan and its request index (see [`round_seed`]),
/// never on when or where it runs. What the policy changes is how warm each
/// worker backend stays: `SimBackend` caches compiled Trojan/Spy program
/// pairs **per plan shape** (see [`TransmissionPlan::shape_fingerprint`]) in
/// a small LRU map, so a worker that bounces between more shapes than the
/// map holds recompiles pairs it just evicted, and even within the map's
/// capacity grouping keeps each claim on a single resident pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Claim rounds one at a time in request order — the legacy shared
    /// cursor. A batch interleaving more plan shapes than the backend's
    /// program cache holds thrashes every worker's cache; kept as the
    /// comparison baseline for tests and benches.
    Interleaved,
    /// Stable-partition the batch into *shape runs* (rounds sharing a
    /// [`TransmissionPlan::shape_fingerprint`], in first-appearance order,
    /// request order preserved within a run) and claim contiguous chunks
    /// within a run, so each worker's backend stays on one shape until the
    /// run is exhausted and the claim atomic is touched once per chunk
    /// instead of once per round.
    #[default]
    ShapeGrouped,
}

/// The execution order of one batch: `order` holds positions into the
/// request slice, and `run_end[i]` is the exclusive end (in `order`) of the
/// shape run containing schedule position `i` — the boundary a chunked claim
/// never crosses.
struct Schedule {
    order: Vec<usize>,
    run_end: Vec<usize>,
}

impl Schedule {
    fn new(policy: SchedulePolicy, rounds: &[RoundRequest<'_>]) -> Self {
        match policy {
            // Legacy order: every round is its own run, so claims are the
            // one-index-at-a-time shared cursor of the original executor.
            SchedulePolicy::Interleaved => Schedule {
                order: (0..rounds.len()).collect(),
                run_end: (1..=rounds.len()).collect(),
            },
            SchedulePolicy::ShapeGrouped => {
                let shapes: Vec<u64> = rounds.iter().map(RoundRequest::shape_fingerprint).collect();
                let (order, run_end) = shape_run_order(&shapes);
                Schedule { order, run_end }
            }
        }
    }
}

/// Stable-partitions a slice of shape fingerprints into *shape runs*:
/// groups positions by shape in first-appearance order, preserving input
/// order within each group. Returns `(order, run_end)` where `order` holds
/// positions into the input slice and `run_end[i]` is the exclusive end (in
/// `order`) of the shape run containing schedule position `i` — the boundary
/// a chunked claim never crosses.
///
/// Shared by [`Schedule::new`]'s grouped policy and the multi-tenant
/// [`serve`](crate::serve) scheduler's cross-tenant batch assembly, so both
/// claim paths coalesce shapes with identical arithmetic.
pub(crate) fn shape_run_order(shapes: &[u64]) -> (Vec<usize>, Vec<usize>) {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of_shape: HashMap<u64, usize> = HashMap::new();
    for (position, &shape) in shapes.iter().enumerate() {
        let group = *group_of_shape.entry(shape).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[group].push(position);
    }
    let mut order = Vec::with_capacity(shapes.len());
    let mut run_end = Vec::with_capacity(shapes.len());
    for group in groups {
        order.extend_from_slice(&group);
        let end = order.len();
        run_end.resize(end, end);
    }
    (order, run_end)
}

/// Largest contiguous span a worker claims in one atomic operation.
pub(crate) const MAX_CLAIM_CHUNK: usize = 32;

/// The exclusive end of the chunk a worker claims when the shared cursor
/// reads `start` inside a shape run ending (exclusively) at `run_end`: an
/// even share of the run's remainder, clamped to `[1, max_chunk]` — large
/// enough to amortize the claim atomic, small enough near a run's tail that
/// the run still splits across idle workers, and never crossing the run
/// boundary (for `start < run_end`, `share <= run_end - start`).
///
/// This is the *only* piece of claim arithmetic: the executor's claim loop
/// and the exhaustive checker in [`model`] both call it, so the
/// interleavings the checker enumerates are the interleavings the executor
/// can produce.
pub(crate) fn claim_end(start: usize, run_end: usize, workers: usize, max_chunk: usize) -> usize {
    let share = (run_end - start).div_ceil(workers);
    start + share.clamp(1, max_chunk)
}

/// Fans batches of transmission rounds out over worker threads.
///
/// Workers claim spans of the batch's schedule (see [`SchedulePolicy`]) from
/// a shared cursor, so load balances even when plans have very different
/// durations; each worker owns one backend created by the caller's factory
/// and reuses it (and its simulation engine) for every round it executes.
/// Results are returned in plan order regardless of the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundExecutor {
    workers: usize,
    policy: SchedulePolicy,
}

impl RoundExecutor {
    /// Creates an executor with a fixed worker count (at least 1) and the
    /// default [`SchedulePolicy::ShapeGrouped`] claim order.
    pub fn new(workers: usize) -> Self {
        RoundExecutor {
            workers: workers.max(1),
            policy: SchedulePolicy::default(),
        }
    }

    /// An executor that runs rounds one after another on the calling thread.
    pub fn sequential() -> Self {
        RoundExecutor::new(1)
    }

    /// An executor sized to the machine's available parallelism.
    pub fn available_parallelism() -> Self {
        RoundExecutor::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Sets the claim-order policy (builder style). Observations are
    /// bit-identical under either policy; only wall-clock changes.
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The claim-order policy of the executor.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// The number of worker threads the executor uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes one round per plan and returns the observations in plan
    /// order. Round `i` is executed with round index `i`; this is the common
    /// whole-batch entry point over [`RoundExecutor::execute_rounds`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoundExecutor::execute_rounds`].
    pub fn execute<B, F>(
        &self,
        plans: &[TransmissionPlan],
        make_backend: F,
    ) -> Result<Vec<Observation>>
    where
        B: ChannelBackend,
        F: Fn() -> B + Sync,
    {
        let rounds: Vec<RoundRequest<'_>> = plans
            .iter()
            .enumerate()
            .map(|(index, plan)| RoundRequest::new(plan, index as u64))
            .collect();
        self.execute_rounds(&rounds, make_backend)
    }

    /// Executes an explicitly indexed batch of rounds and returns the
    /// observations in request order.
    ///
    /// `make_backend` is called once per worker (once total for a sequential
    /// executor); every worker must observe the same factory output, i.e.
    /// backends that differ only in unobservable state. Each worker's
    /// backend runs the whole batch inside one
    /// [`ChannelBackend::begin_batch`]/[`ChannelBackend::end_batch`]
    /// session, so session-capable backends (persistent host worker pairs,
    /// warm engines) amortize their setup over every round the worker
    /// claims. Rounds are executed via [`ChannelBackend::transmit_round`]
    /// with their request's index, which is what makes the result
    /// independent of the worker count, the [`SchedulePolicy`] — and of
    /// which other rounds share the batch, so callers may filter a batch
    /// (cache hits, resumed grids) or repeat one plan under many indices
    /// without cloning it.
    ///
    /// Under [`SchedulePolicy::ShapeGrouped`] (the default) the batch is
    /// stable-partitioned into shape runs and workers claim contiguous
    /// chunks within a run, so each worker backend patches one resident
    /// program pair per run — and never thrashes its bounded program cache,
    /// however many shapes the batch interleaves; results are written to
    /// per-request write-once cells and returned in request order either
    /// way.
    ///
    /// # Errors
    ///
    /// Returns a session-setup error if [`ChannelBackend::begin_batch`]
    /// fails, otherwise the failed round's error that comes first in request
    /// order. Workers re-check the failure flag after every claim and
    /// between the rounds of a claimed chunk, so a failing batch aborts
    /// promptly instead of simulating the rest of the grid; only rounds
    /// whose execution already started run to completion.
    pub fn execute_rounds<B, F>(
        &self,
        rounds: &[RoundRequest<'_>],
        make_backend: F,
    ) -> Result<Vec<Observation>>
    where
        B: ChannelBackend,
        F: Fn() -> B + Sync,
    {
        let workers = self.workers.min(rounds.len().max(1));
        let schedule = Schedule::new(self.policy, rounds);
        if workers <= 1 {
            // One backend walks the whole schedule: grouping still pays off
            // (it keeps the walk on one resident program pair per shape run
            // regardless of the cache's shape capacity) and the first
            // failure aborts the remaining schedule immediately.
            let mut backend = make_backend();
            backend.begin_batch()?;
            let mut slots: Vec<Option<Result<Observation>>> =
                (0..rounds.len()).map(|_| None).collect();
            for &position in &schedule.order {
                let round = &rounds[position];
                let outcome = backend.transmit_round(round.plan, round.round_index);
                let failed = outcome.is_err();
                slots[position] = Some(outcome);
                if failed {
                    break;
                }
            }
            backend.end_batch();
            return collect_in_request_order(slots);
        }

        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let session_error: Mutex<Option<MesError>> = Mutex::new(None);
        // One write-once cell per request, written exactly once by the
        // worker that claimed it — no lock is taken anywhere on the
        // per-round hot path.
        let slots: Vec<OnceLock<Result<Observation>>> =
            (0..rounds.len()).map(|_| OnceLock::new()).collect();
        // The worker scope below is the scheduler hot path: claims go
        // through the CAS cursor and results through write-once cells —
        // no lock, no allocation per round. `mes_core::exec::model`
        // exhaustively model-checks exactly this loop.
        // lint: hot-path
        // lint: warm-path
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut backend = make_backend();
                    if let Err(error) = backend.begin_batch() {
                        failed.store(true, Ordering::Relaxed);
                        session_error
                            // lint: allow(scheduler-lock) — batch-setup failure: once per worker, never per round
                            .lock()
                            .expect("session error mutex poisoned")
                            .get_or_insert(error);
                        return;
                    }
                    let total = schedule.order.len();
                    let mut start = cursor.load(Ordering::Relaxed);
                    'claims: while start < total && !failed.load(Ordering::Relaxed) {
                        // Claim a contiguous chunk of the current shape run
                        // (see `claim_end` for the chunk-sizing rationale).
                        let end =
                            claim_end(start, schedule.run_end[start], workers, MAX_CLAIM_CHUNK);
                        match cursor.compare_exchange_weak(
                            start,
                            end,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Err(current) => start = current,
                            Ok(_) => {
                                for &position in &schedule.order[start..end] {
                                    // Re-checked between chunk rounds (and
                                    // after the claim itself) so a failure
                                    // elsewhere aborts this chunk promptly.
                                    if failed.load(Ordering::Relaxed) {
                                        break 'claims;
                                    }
                                    let round = &rounds[position];
                                    let outcome =
                                        backend.transmit_round(round.plan, round.round_index);
                                    if outcome.is_err() {
                                        failed.store(true, Ordering::Relaxed);
                                    }
                                    slots[position]
                                        .set(outcome)
                                        .expect("request claimed by two workers");
                                }
                                start = cursor.load(Ordering::Relaxed);
                            }
                        }
                    }
                    backend.end_batch();
                });
            }
        });
        // lint: end-warm-path
        // lint: end-hot-path

        if let Some(error) = session_error
            .into_inner()
            .expect("session error mutex poisoned")
        {
            return Err(error);
        }
        collect_in_request_order(slots.into_iter().map(OnceLock::into_inner).collect())
    }

    /// Transmits one payload per round through `channel` on simulated
    /// backends seeded from `base_seed`, recovering each round's report.
    ///
    /// This is the parallel counterpart of
    /// [`CovertChannel::transmit_many`]: plans are compiled up front, the
    /// rounds fan out across the executor's workers (each with its own
    /// [`SimBackend`] reusing one engine), and the reports come back in
    /// payload order — bit-identical for any worker count, and to
    /// `transmit_many` on a `SimBackend::new(profile, base_seed)`.
    ///
    /// # Errors
    ///
    /// Returns an error if any plan cannot be built or any round fails.
    pub fn transmit_payloads(
        &self,
        channel: &CovertChannel,
        payloads: &[BitString],
        base_seed: u64,
    ) -> Result<Vec<TransmissionReport>> {
        let (wires, plans) = channel.compile_batch(payloads)?;
        let profile = std::sync::Arc::clone(channel.shared_profile());
        let observations = self.execute(&plans, || {
            SimBackend::new(std::sync::Arc::clone(&profile), base_seed)
        })?;
        Ok(channel.recover_batch(payloads, &wires, &observations))
    }
}

impl Default for RoundExecutor {
    fn default() -> Self {
        RoundExecutor::available_parallelism()
    }
}

/// Folds per-request result slots into the batch result. Unfilled slots are
/// rounds the scheduler abandoned after a failure elsewhere (claims are not
/// in request order under [`SchedulePolicy::ShapeGrouped`], so an abandoned
/// slot may precede the failed round); the error returned is always a *real*
/// round failure — the one earliest in request order.
fn collect_in_request_order(slots: Vec<Option<Result<Observation>>>) -> Result<Vec<Observation>> {
    let mut observations = Vec::with_capacity(slots.len());
    let mut abandoned = None;
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(observation)) => observations.push(observation),
            Some(Err(error)) => return Err(error),
            None => {
                abandoned.get_or_insert(index);
            }
        }
    }
    match abandoned {
        None => Ok(observations),
        // Defensive: a slot is only ever abandoned after some round failed,
        // and that error was returned above.
        Some(index) => Err(MesError::Simulation {
            reason: format!("round {index} abandoned after another round failed"),
        }),
    }
}

/// One compiled round awaiting execution: the channel that will decode it
/// plus the payload and wire bits it carries.
///
/// Harnesses that batch rounds across *different* channels (one per table
/// row, sweep point or ablation variant) keep a `Vec<PreparedRound>` next to
/// the `Vec<TransmissionPlan>` returned by [`PreparedRound::new`], hand the
/// plans to [`ChannelBackend::transmit_batch`] or
/// [`RoundExecutor::execute`], and decode each observation with
/// [`PreparedRound::recover`]. For many rounds on a *single* channel use
/// [`CovertChannel::transmit_many`] or
/// [`RoundExecutor::transmit_payloads`] instead.
#[derive(Debug, Clone)]
pub struct PreparedRound {
    channel: CovertChannel,
    payload: BitString,
    wire: BitString,
}

impl PreparedRound {
    /// Compiles `payload` for `channel`, returning the round and its plan.
    /// The plan is returned separately so callers can collect plans into a
    /// contiguous batch without cloning them again at execution time.
    ///
    /// # Errors
    ///
    /// Returns an error if the plan cannot be built for the channel's
    /// configuration.
    pub fn new(channel: CovertChannel, payload: BitString) -> Result<(Self, TransmissionPlan)> {
        let (wire, plan) = channel.plan_for(&payload)?;
        Ok((
            PreparedRound {
                channel,
                payload,
                wire,
            },
            plan,
        ))
    }

    /// The channel this round belongs to.
    pub fn channel(&self) -> &CovertChannel {
        &self.channel
    }

    /// The payload the round carries.
    pub fn payload(&self) -> &BitString {
        &self.payload
    }

    /// Decodes the round's observation into a full report.
    pub fn recover(&self, observation: &Observation) -> TransmissionReport {
        self.channel.recover(&self.payload, &self.wire, observation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChannelConfig;
    use mes_coding::BitSource;
    use mes_scenario::ScenarioProfile;
    use mes_types::{Mechanism, Scenario};

    fn plans_for(
        mechanism: Mechanism,
        rounds: usize,
        bits: usize,
    ) -> (CovertChannel, Vec<TransmissionPlan>) {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, mechanism).unwrap();
        let channel = CovertChannel::new(config, profile).unwrap();
        let plans = (0..rounds)
            .map(|i| {
                let payload = BitSource::new(i as u64).random_bits(bits);
                channel.plan_for(&payload).unwrap().1
            })
            .collect();
        (channel, plans)
    }

    #[test]
    fn parallel_execution_matches_sequential_bit_for_bit() {
        let (_, plans) = plans_for(Mechanism::Event, 12, 32);
        let profile = ScenarioProfile::local();
        let sequential = RoundExecutor::sequential()
            .execute(&plans, || SimBackend::new(profile.clone(), 99))
            .unwrap();
        let parallel = RoundExecutor::new(4)
            .execute(&plans, || SimBackend::new(profile.clone(), 99))
            .unwrap();
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.len(), 12);
    }

    #[test]
    fn executor_matches_backend_batch() {
        let (_, plans) = plans_for(Mechanism::Flock, 6, 16);
        let profile = ScenarioProfile::local();
        let batched = SimBackend::new(profile.clone(), 5)
            .transmit_batch(&plans)
            .unwrap();
        let executed = RoundExecutor::new(3)
            .execute(&plans, || SimBackend::new(profile.clone(), 5))
            .unwrap();
        assert_eq!(batched, executed);
    }

    #[test]
    fn transmit_payloads_recovers_reports_in_order() {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        let channel = CovertChannel::new(config, profile).unwrap();
        let payloads: Vec<_> = (0..5)
            .map(|i| BitSource::new(100 + i).random_bits(64))
            .collect();
        let reports = RoundExecutor::new(2)
            .transmit_payloads(&channel, &payloads, 11)
            .unwrap();
        assert_eq!(reports.len(), 5);
        for (payload, report) in payloads.iter().zip(&reports) {
            assert_eq!(report.sent_payload(), payload);
            assert!(report.frame_valid());
            assert!(report.wire_ber().ber_percent() < 5.0);
        }
        let again = RoundExecutor::sequential()
            .transmit_payloads(&channel, &payloads, 11)
            .unwrap();
        assert_eq!(reports, again);
    }

    #[test]
    fn filtered_round_requests_keep_their_indices() {
        let (_, plans) = plans_for(Mechanism::Event, 6, 16);
        let profile = ScenarioProfile::local();
        let full = RoundExecutor::new(3)
            .execute(&plans, || SimBackend::new(profile.clone(), 42))
            .unwrap();
        // Executing a filtered view of the batch (as the experiment cache
        // does for misses) reproduces exactly the full batch's observations
        // at the surviving indices.
        let keep = [1usize, 3, 4];
        let subset: Vec<RoundRequest<'_>> = keep
            .iter()
            .map(|&i| RoundRequest::new(&plans[i], i as u64))
            .collect();
        let partial = RoundExecutor::new(2)
            .execute_rounds(&subset, || SimBackend::new(profile.clone(), 42))
            .unwrap();
        for (slot, &index) in keep.iter().enumerate() {
            assert_eq!(partial[slot], full[index], "round {index}");
        }
    }

    #[test]
    fn shared_plan_requests_match_cloned_plans() {
        let (_, plans) = plans_for(Mechanism::Flock, 1, 16);
        let plan = &plans[0];
        let profile = ScenarioProfile::local();
        let shared: Vec<RoundRequest<'_>> = (0..5).map(|i| RoundRequest::new(plan, i)).collect();
        let borrowed = RoundExecutor::new(2)
            .execute_rounds(&shared, || SimBackend::new(profile.clone(), 17))
            .unwrap();
        let cloned = RoundExecutor::new(2)
            .execute(&vec![plan.clone(); 5], || {
                SimBackend::new(profile.clone(), 17)
            })
            .unwrap();
        assert_eq!(borrowed, cloned);
        // Rounds of one plan still sample independent noise.
        assert_ne!(borrowed[0], borrowed[1]);
    }

    #[test]
    fn executor_surfaces_round_errors() {
        // An Event plan compiled for the local profile deadlocks when run
        // against the cross-VM profile, whose sessions cannot see each
        // other's kernel-object namespace.
        let (_, plans) = plans_for(Mechanism::Event, 3, 8);
        let vm = ScenarioProfile::cross_vm();
        for policy in [SchedulePolicy::Interleaved, SchedulePolicy::ShapeGrouped] {
            let result = RoundExecutor::new(2)
                .with_policy(policy)
                .execute(&plans, || SimBackend::new(vm.clone(), 1));
            let error = result.expect_err("deadlocked batch must fail");
            // The reported error is always a real round failure, never the
            // defensive abandoned-slot placeholder.
            assert!(
                !format!("{error:?}").contains("abandoned"),
                "{policy:?}: {error:?}"
            );
        }
    }

    #[test]
    fn constructors_clamp_workers() {
        assert_eq!(RoundExecutor::new(0).workers(), 1);
        assert_eq!(RoundExecutor::sequential().workers(), 1);
        assert!(RoundExecutor::available_parallelism().workers() >= 1);
        assert!(RoundExecutor::default().workers() >= 1);
        assert_eq!(RoundExecutor::new(4).policy(), SchedulePolicy::ShapeGrouped);
        assert_eq!(
            RoundExecutor::new(4)
                .with_policy(SchedulePolicy::Interleaved)
                .policy(),
            SchedulePolicy::Interleaved
        );
    }

    /// A batch that deliberately interleaves plan shapes: distinct wire bits
    /// produce distinct per-slot action-kind sequences, so consecutive
    /// requests almost never share a shape fingerprint.
    fn interleaved_shape_batch() -> (ScenarioProfile, Vec<TransmissionPlan>) {
        let profile = ScenarioProfile::local();
        let mut plans = Vec::new();
        for round in 0..9 {
            let mechanism = [Mechanism::Event, Mechanism::Flock, Mechanism::Mutex][round % 3];
            let config = ChannelConfig::paper_defaults(Scenario::Local, mechanism).unwrap();
            let channel = CovertChannel::new(config, profile.clone()).unwrap();
            let payload = BitSource::new(round as u64).random_bits(16);
            plans.push(channel.plan_for(&payload).unwrap().1);
        }
        (profile, plans)
    }

    #[test]
    fn schedule_partitions_shape_runs_stably() {
        let (_, plans) = interleaved_shape_batch();
        let rounds: Vec<RoundRequest<'_>> = plans
            .iter()
            .enumerate()
            .map(|(index, plan)| RoundRequest::new(plan, index as u64))
            .collect();

        // Interleaved: identity order, unit runs (the legacy shared cursor).
        let legacy = Schedule::new(SchedulePolicy::Interleaved, &rounds);
        assert_eq!(legacy.order, (0..rounds.len()).collect::<Vec<_>>());
        assert_eq!(legacy.run_end, (1..=rounds.len()).collect::<Vec<_>>());

        // ShapeGrouped: a permutation where every run is shape-homogeneous,
        // runs appear in first-appearance order, and request order survives
        // within each run.
        let grouped = Schedule::new(SchedulePolicy::ShapeGrouped, &rounds);
        let mut sorted = grouped.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..rounds.len()).collect::<Vec<_>>());
        let mut seen_shapes: Vec<u64> = Vec::new();
        let mut position = 0;
        while position < grouped.order.len() {
            let end = grouped.run_end[position];
            assert!(end > position && end <= grouped.order.len());
            let shape = plans[grouped.order[position]].shape_fingerprint();
            assert!(
                !seen_shapes.contains(&shape),
                "a shape must form exactly one run"
            );
            seen_shapes.push(shape);
            let members = &grouped.order[position..end];
            assert!(
                members.windows(2).all(|pair| pair[0] < pair[1]),
                "request order must be preserved within a run"
            );
            for &member in members {
                assert_eq!(grouped.run_end[position], end);
                assert_eq!(plans[member].shape_fingerprint(), shape);
                position += 1;
            }
        }
        assert!(seen_shapes.len() > 1, "the batch must actually mix shapes");
    }

    #[test]
    fn schedule_policies_are_bit_identical_on_shape_interleaved_batches() {
        let (profile, plans) = interleaved_shape_batch();
        let reference = RoundExecutor::sequential()
            .with_policy(SchedulePolicy::Interleaved)
            .execute(&plans, || SimBackend::new(profile.clone(), 77))
            .unwrap();
        for policy in [SchedulePolicy::Interleaved, SchedulePolicy::ShapeGrouped] {
            for workers in [1, 2, 4] {
                let executed = RoundExecutor::new(workers)
                    .with_policy(policy)
                    .execute(&plans, || SimBackend::new(profile.clone(), 77))
                    .unwrap();
                assert_eq!(executed, reference, "{policy:?} with {workers} workers");
            }
        }
    }

    #[test]
    fn chunked_claims_cover_every_round_of_long_runs() {
        // A single-shape batch longer than MAX_CLAIM_CHUNK forces multiple
        // chunked claims per worker; every request index must be executed
        // exactly once and land in its own slot.
        let (_, plans) = plans_for(Mechanism::Event, 1, 16);
        let plan = &plans[0];
        let rounds: Vec<RoundRequest<'_>> = (0..(MAX_CLAIM_CHUNK as u64 * 3 + 5))
            .map(|index| RoundRequest::new(plan, index))
            .collect();
        let profile = ScenarioProfile::local();
        let parallel = RoundExecutor::new(4)
            .execute_rounds(&rounds, || SimBackend::new(profile.clone(), 21))
            .unwrap();
        let sequential = RoundExecutor::sequential()
            .execute_rounds(&rounds, || SimBackend::new(profile.clone(), 21))
            .unwrap();
        assert_eq!(parallel.len(), rounds.len());
        assert_eq!(parallel, sequential);
    }
}
