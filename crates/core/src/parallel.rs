//! Multi-channel rate projections (Section V.C.1 of the paper).
//!
//! A single Trojan/Spy pair is limited by the per-bit protocol time, but an
//! attacker who controls many pairs can run them concurrently. The paper
//! estimates the ceiling from the number of processes the system can run
//! concurrently (6833 on their testbed) for kernel-object channels, and from
//! the default file-descriptor limit (1024) for `flock`.

use mes_types::Mechanism;
use serde::{Deserialize, Serialize};

/// The number of concurrent processes the paper measured on its testbed.
pub const PAPER_CONCURRENT_PROCESSES: u64 = 6833;

/// The default per-process file-descriptor limit the paper cites for the
/// `flock` channel.
pub const PAPER_FD_LIMIT: u64 = 1024;

/// A projection of the aggregate rate achievable with many parallel channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelProjection {
    /// The mechanism being projected.
    pub mechanism: Mechanism,
    /// Measured single-channel rate in kb/s.
    pub single_channel_kbps: f64,
    /// Number of channels assumed to run in parallel.
    pub channels: u64,
    /// Projected aggregate rate in kb/s.
    pub aggregate_kbps: f64,
}

impl ParallelProjection {
    /// Projects the aggregate rate of `channels` parallel instances.
    pub fn new(mechanism: Mechanism, single_channel_kbps: f64, channels: u64) -> Self {
        ParallelProjection {
            mechanism,
            single_channel_kbps,
            channels,
            aggregate_kbps: single_channel_kbps * channels as f64,
        }
    }

    /// The projection with the paper's parallelism assumption for the
    /// mechanism: the process limit for kernel-object channels, the fd limit
    /// for file-lock channels.
    pub fn paper_assumption(mechanism: Mechanism, single_channel_kbps: f64) -> Self {
        let channels = if mechanism.is_file_backed() {
            PAPER_FD_LIMIT
        } else {
            PAPER_CONCURRENT_PROCESSES
        };
        ParallelProjection::new(mechanism, single_channel_kbps, channels)
    }

    /// Aggregate rate in Mb/s.
    pub fn aggregate_mbps(&self) -> f64 {
        self.aggregate_kbps / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_scales_linearly() {
        let projection = ParallelProjection::new(Mechanism::Event, 13.105, 10);
        assert!((projection.aggregate_kbps - 131.05).abs() < 1e-9);
        assert!((projection.aggregate_mbps() - 0.13105).abs() < 1e-9);
    }

    #[test]
    fn paper_assumptions_reach_the_claimed_ceilings() {
        // "ideally we can achieve transfer rates of tens of Mbps" for Event.
        let event = ParallelProjection::paper_assumption(Mechanism::Event, 13.105);
        assert_eq!(event.channels, PAPER_CONCURRENT_PROCESSES);
        assert!(event.aggregate_mbps() > 10.0);

        // "Ideally, we can achieve a TR of several Mbps" for flock.
        let flock = ParallelProjection::paper_assumption(Mechanism::Flock, 7.182);
        assert_eq!(flock.channels, PAPER_FD_LIMIT);
        assert!(flock.aggregate_mbps() > 1.0 && flock.aggregate_mbps() < 10.0);
    }

    #[test]
    fn file_backed_mechanisms_use_the_fd_limit() {
        let filelock = ParallelProjection::paper_assumption(Mechanism::FileLockEx, 7.678);
        assert_eq!(filelock.channels, PAPER_FD_LIMIT);
        let mutex = ParallelProjection::paper_assumption(Mechanism::Mutex, 7.612);
        assert_eq!(mutex.channels, PAPER_CONCURRENT_PROCESSES);
    }
}
