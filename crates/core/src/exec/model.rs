//! An exhaustive model checker for the executor's lock-free claim loop.
//!
//! [`RoundExecutor::execute_rounds`](super::RoundExecutor::execute_rounds)
//! coordinates workers through exactly four pieces of shared state: a CAS
//! cursor over the schedule, an abort flag, one write-once result cell per
//! request, and the run boundaries a chunked claim must not cross. The
//! dynamic tests sample a handful of schedules under whatever interleavings
//! the OS happens to produce; this module re-expresses the loop as an
//! abstract state machine and enumerates **every** interleaving of its
//! atomic steps for small worker counts and schedules, checking:
//!
//! * every schedule position is executed at most once (each write-once
//!   cell is written by exactly one worker);
//! * no claim crosses a shape-run boundary (`end <= run_end[start]`);
//! * with no failing round, every cell is filled — nothing is lost or
//!   double-claimed, for any interleaving;
//! * with failing rounds, the abort flag surfaces promptly: at most
//!   `workers - 1` rounds (the ones already past their re-check) execute
//!   after the flag is set, every abandoned cell is justified by the flag,
//!   and the surfaced error cell is always a *real* failure;
//! * the claim arithmetic is the executor's own: both the real loop and
//!   this model call [`claim_end`](super::claim_end), so the chunk shapes
//!   enumerated here are the chunk shapes production workers take.
//!
//! The checker's teeth are proven by [`Mutation`]s — seeded concurrency
//! bugs (dropping the per-round abort re-check, tearing the CAS into a
//! load + blind store, ignoring run boundaries) that the enumeration must
//! catch. CI runs those fixtures next to the clean configurations, so a
//! checker that stops failing on known-bad loops fails the gate itself.
//!
//! States are explored by depth-first search over a memoized state set.
//! The state vocabulary is position-indexed and fully ordered, so the
//! search itself is deterministic — no hash-order dependence, no clocks.

use super::claim_end;
use std::collections::BTreeSet;

/// A seeded concurrency bug for the checker to catch — the self-check that
/// keeps the model honest. `None` is the faithful loop; every other variant
/// must produce a violation on the CI fixtures (see the module tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The faithful claim loop, as shipped.
    None,
    /// Drop the per-round abort re-check inside a claimed chunk: a worker
    /// runs its whole chunk even after another round failed, so more than
    /// the `workers - 1` in-flight rounds execute after the flag is set.
    SkipAbortRecheck,
    /// Tear the claim CAS into a plain load followed by a blind store: two
    /// workers can observe the same cursor and claim the same chunk, which
    /// the write-once cells expose as a double write.
    NonAtomicClaim,
    /// Size chunks against the schedule's total length instead of the
    /// current shape run's end, so a claim can cross a run boundary.
    CrossRunClaim,
}

/// The model of one `execute_rounds` batch: a worker count, a schedule
/// described by its shape-run lengths, the claim-chunk cap, the set of
/// schedule positions whose round fails, and an optional seeded bug.
#[derive(Debug, Clone)]
pub struct ClaimModel {
    /// Number of concurrent workers (the model is exhaustive, so keep this
    /// at 2–3; state count grows exponentially with it).
    pub workers: usize,
    /// Length of each shape run, in schedule order. The schedule has
    /// `run_lengths.iter().sum()` positions; position `p` belongs to the
    /// run covering it, whose exclusive end a claim must not cross.
    pub run_lengths: Vec<usize>,
    /// The executor's `MAX_CLAIM_CHUNK` analogue.
    pub max_claim_chunk: usize,
    /// Schedule positions whose execution fails (sets the abort flag).
    pub failing: Vec<usize>,
    /// The seeded bug to model, or [`Mutation::None`] for the real loop.
    pub mutation: Mutation,
}

/// What has been written to a request's write-once result cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Cell {
    /// Not yet written (abandoned, or not yet reached).
    Empty,
    /// A successful observation.
    Good,
    /// A round failure (also set the abort flag when written).
    Bad,
}

/// One worker's program counter between atomic steps. Each variant is a
/// point where the real loop has just performed (or is about to perform)
/// one access to shared state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Pc {
    /// About to read the shared cursor.
    Load,
    /// Holds a cursor snapshot; about to test the loop condition
    /// (`start < total && !failed`).
    Check {
        /// The cursor value this worker last observed.
        start: usize,
    },
    /// About to CAS the cursor from `start` to the chunk end.
    Claim {
        /// The cursor value the CAS expects.
        start: usize,
    },
    /// Second half of a torn (non-atomic) claim: about to blind-store the
    /// chunk end. Only reachable under [`Mutation::NonAtomicClaim`].
    ClaimWrite {
        /// First position of the (possibly stale) claimed chunk.
        pos: usize,
        /// Exclusive end about to be stored.
        end: usize,
    },
    /// Inside a claimed chunk, about to re-check the abort flag before the
    /// round at `pos` (or to return to [`Pc::Load`] if the chunk is done).
    Recheck {
        /// Next schedule position of the claimed chunk.
        pos: usize,
        /// Exclusive end of the claimed chunk.
        end: usize,
    },
    /// Past the re-check: about to execute the round at `pos` and write
    /// its cell.
    Exec {
        /// Schedule position being executed.
        pos: usize,
        /// Exclusive end of the claimed chunk.
        end: usize,
    },
    /// Finished (ran `end_batch`).
    Done,
}

/// One global state of the batch: the shared atomics, the result cells,
/// every worker's program counter, and the count of rounds that executed
/// after the abort flag was set (to bound abort latency).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    cursor: usize,
    failed: bool,
    late_execs: usize,
    cells: Vec<Cell>,
    pcs: Vec<Pc>,
}

/// Search statistics, mostly to assert the enumeration is genuinely
/// exhaustive (a handful of states would mean the model collapsed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelStats {
    /// Distinct global states visited.
    pub states: usize,
    /// Terminal states (all workers done) reached and checked.
    pub terminals: usize,
}

/// Enumerates every interleaving of `model` and checks the claim-loop
/// invariants in every reachable state.
///
/// # Errors
///
/// Returns a description of the first violated invariant, including the
/// offending state — which, for the seeded [`Mutation`]s, is the expected
/// outcome.
pub fn check(model: &ClaimModel) -> Result<ModelStats, String> {
    let total: usize = model.run_lengths.iter().sum();
    if model.workers == 0 {
        return Err("model needs at least one worker".into());
    }
    if model.failing.iter().any(|&p| p >= total) {
        return Err(format!("failing position out of range (total {total})"));
    }
    // run_end[p] = exclusive end of the shape run containing position p,
    // exactly like `Schedule::run_end`.
    let mut run_end = Vec::with_capacity(total);
    let mut acc = 0usize;
    for &len in &model.run_lengths {
        acc += len;
        run_end.resize(acc, acc);
    }

    let initial = State {
        cursor: 0,
        failed: false,
        late_execs: 0,
        cells: vec![Cell::Empty; total],
        pcs: vec![Pc::Load; model.workers],
    };
    let mut seen: BTreeSet<State> = BTreeSet::new();
    let mut stack = vec![initial.clone()];
    seen.insert(initial);
    let mut terminals = 0usize;
    while let Some(state) = stack.pop() {
        let mut progressed = false;
        for worker in 0..model.workers {
            if state.pcs[worker] == Pc::Done {
                continue;
            }
            progressed = true;
            for successor in step(model, &run_end, total, &state, worker)? {
                if seen.insert(successor.clone()) {
                    stack.push(successor);
                }
            }
        }
        if !progressed {
            terminals += 1;
            check_terminal(model, total, &state)?;
        }
    }
    Ok(ModelStats {
        states: seen.len(),
        terminals,
    })
}

/// The chunk end a claim at `start` would take — the executor's own
/// [`claim_end`] arithmetic, except under [`Mutation::CrossRunClaim`],
/// which sizes against the whole schedule. Enforces the run-boundary
/// invariant at the moment of claiming.
fn chunk_end(
    model: &ClaimModel,
    run_end: &[usize],
    total: usize,
    start: usize,
) -> Result<usize, String> {
    let boundary = run_end[start];
    let end = match model.mutation {
        Mutation::CrossRunClaim => claim_end(start, total, model.workers, model.max_claim_chunk),
        _ => claim_end(start, boundary, model.workers, model.max_claim_chunk),
    };
    if end > boundary {
        return Err(format!(
            "claim [{start}, {end}) crosses the shape-run boundary at {boundary}: a worker \
             backend would be patched across plan shapes mid-chunk"
        ));
    }
    Ok(end)
}

/// All successor states of `state` when `worker` takes its next atomic
/// step. Violations detectable at a step (double cell write, late
/// execution beyond the in-flight bound, boundary-crossing claims) are
/// reported here.
fn step(
    model: &ClaimModel,
    run_end: &[usize],
    total: usize,
    state: &State,
    worker: usize,
) -> Result<Vec<State>, String> {
    let at = |pc: Pc| {
        let mut next = state.clone();
        next.pcs[worker] = pc;
        next
    };
    let mut out = Vec::new();
    match state.pcs[worker] {
        Pc::Done => {}
        // start = cursor.load()
        Pc::Load => out.push(at(Pc::Check {
            start: state.cursor,
        })),
        // while start < total && !failed.load()
        Pc::Check { start } => {
            if start >= total || state.failed {
                out.push(at(Pc::Done));
            } else {
                out.push(at(Pc::Claim { start }));
            }
        }
        Pc::Claim { start } => {
            if model.mutation == Mutation::NonAtomicClaim {
                // Torn claim: the end is computed from the (possibly
                // stale) snapshot and will be blind-stored next step.
                let end = chunk_end(model, run_end, total, start)?;
                out.push(at(Pc::ClaimWrite { pos: start, end }));
            } else if state.cursor == start {
                let end = chunk_end(model, run_end, total, start)?;
                let mut claimed = at(Pc::Recheck { pos: start, end });
                claimed.cursor = end;
                out.push(claimed);
                // compare_exchange_weak is allowed to fail spuriously even
                // when the cursor matches; the loop must tolerate it.
                out.push(at(Pc::Check { start }));
            } else {
                // CAS failure hands back the current cursor value.
                out.push(at(Pc::Check {
                    start: state.cursor,
                }));
            }
        }
        Pc::ClaimWrite { pos, end } => {
            let mut stored = at(Pc::Recheck { pos, end });
            stored.cursor = end;
            out.push(stored);
        }
        Pc::Recheck { pos, end } => {
            if pos >= end {
                out.push(at(Pc::Load));
            } else if model.mutation == Mutation::SkipAbortRecheck {
                out.push(at(Pc::Exec { pos, end }));
            } else if state.failed {
                // break 'claims
                out.push(at(Pc::Done));
            } else {
                out.push(at(Pc::Exec { pos, end }));
            }
        }
        Pc::Exec { pos, end } => {
            let mut next = at(Pc::Recheck { pos: pos + 1, end });
            if state.failed {
                // The abort flag was set between this worker's re-check
                // and its execution. The design tolerates exactly the
                // in-flight rounds: one per *other* worker.
                next.late_execs += 1;
                let bound = model.workers - 1;
                if next.late_execs > bound {
                    return Err(format!(
                        "schedule position {pos} executed after the abort flag was set, \
                         beyond the {bound} in-flight round(s) the design permits \
                         (state: {state:?})"
                    ));
                }
            }
            if state.cells[pos] != Cell::Empty {
                return Err(format!(
                    "result cell {pos} written twice — two workers claimed one request \
                     (state: {state:?})"
                ));
            }
            if model.failing.contains(&pos) {
                next.failed = true;
                next.cells[pos] = Cell::Bad;
            } else {
                next.cells[pos] = Cell::Good;
            }
            out.push(next);
        }
    }
    Ok(out)
}

/// Invariants of a terminal state (all workers done): completeness without
/// failures, and justified abandonment + a surfaced real error with them.
fn check_terminal(model: &ClaimModel, total: usize, state: &State) -> Result<(), String> {
    if model.failing.is_empty() {
        if state.failed {
            return Err(format!(
                "abort flag set with no failing round (state: {state:?})"
            ));
        }
        if state.cursor != total {
            return Err(format!(
                "workers all done with cursor {} != {total}: schedule not drained \
                 (state: {state:?})",
                state.cursor
            ));
        }
        if let Some(pos) = state.cells.iter().position(|&c| c != Cell::Good) {
            return Err(format!(
                "no round fails, yet cell {pos} ended {:?} — a request was lost \
                 (state: {state:?})",
                state.cells[pos]
            ));
        }
        return Ok(());
    }
    // Failing rounds exist: some interleavings abandon work, but only
    // after a real failure, and that failure must be surfaced.
    if !state.failed {
        return Err(format!(
            "failing rounds configured but the abort flag never surfaced \
             (state: {state:?})"
        ));
    }
    if !state.cells.contains(&Cell::Bad) {
        return Err(format!(
            "abort flag set but no error cell was written: the batch would \
             report failure without an error (state: {state:?})"
        ));
    }
    for (pos, cell) in state.cells.iter().enumerate() {
        let should_fail = model.failing.contains(&pos);
        match cell {
            Cell::Bad if !should_fail => {
                return Err(format!(
                    "cell {pos} reports failure but position {pos} cannot fail \
                     (state: {state:?})"
                ));
            }
            Cell::Good if should_fail => {
                return Err(format!(
                    "cell {pos} reports success but position {pos} always fails \
                     (state: {state:?})"
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(
        workers: usize,
        run_lengths: &[usize],
        max_claim_chunk: usize,
        failing: &[usize],
        mutation: Mutation,
    ) -> ClaimModel {
        ClaimModel {
            workers,
            run_lengths: run_lengths.to_vec(),
            max_claim_chunk,
            failing: failing.to_vec(),
            mutation,
        }
    }

    #[test]
    fn two_workers_single_run_every_interleaving_is_clean() {
        let stats = check(&model(2, &[4], 2, &[], Mutation::None)).expect("no violations");
        // The enumeration must be a real search, not a collapsed one.
        assert!(stats.states > 100, "suspiciously small: {stats:?}");
        assert!(stats.terminals >= 1);
    }

    #[test]
    fn two_workers_multi_run_schedule_is_clean() {
        // Two shape runs of different lengths, chunk cap above run size:
        // claims must still stop at the run boundary.
        check(&model(2, &[2, 3], 4, &[], Mutation::None)).expect("no violations");
    }

    #[test]
    fn three_workers_exhaustive_and_clean() {
        let stats = check(&model(3, &[2, 2, 1], 2, &[], Mutation::None)).expect("no violations");
        assert!(stats.states > 1_000, "suspiciously small: {stats:?}");
    }

    #[test]
    fn interleaved_policy_runs_of_one_are_clean() {
        // SchedulePolicy::Interleaved makes every round its own run.
        check(&model(2, &[1, 1, 1, 1], 32, &[], Mutation::None)).expect("no violations");
    }

    #[test]
    fn failures_abort_promptly_and_surface_a_real_error() {
        for failing in [&[0][..], &[1], &[3], &[0, 3]] {
            check(&model(2, &[4], 2, failing, Mutation::None))
                .unwrap_or_else(|violation| panic!("failing={failing:?}: {violation}"));
        }
    }

    #[test]
    fn three_workers_with_failure_are_clean() {
        check(&model(3, &[2, 2], 2, &[2], Mutation::None)).expect("no violations");
    }

    #[test]
    fn mutation_skipping_the_abort_recheck_is_caught() {
        let violation = check(&model(2, &[4], 2, &[0], Mutation::SkipAbortRecheck))
            .expect_err("a chunk must not keep executing past a failure");
        assert!(
            violation.contains("after the abort flag"),
            "unexpected violation: {violation}"
        );
    }

    #[test]
    fn mutation_tearing_the_claim_cas_is_caught() {
        let violation = check(&model(2, &[4], 2, &[], Mutation::NonAtomicClaim))
            .expect_err("a torn claim must double-write a cell");
        assert!(
            violation.contains("written twice"),
            "unexpected violation: {violation}"
        );
    }

    #[test]
    fn mutation_crossing_run_boundaries_is_caught() {
        let violation = check(&model(2, &[1, 3], 4, &[], Mutation::CrossRunClaim))
            .expect_err("a claim must not cross a shape-run boundary");
        assert!(
            violation.contains("crosses the shape-run boundary"),
            "unexpected violation: {violation}"
        );
    }

    #[test]
    fn claim_end_always_lands_inside_the_run() {
        // The shared arithmetic itself: for every (start, run_end, workers)
        // in a small grid, the claimed chunk is non-empty and in-run.
        for run in 1..=12usize {
            for start in 0..run {
                for workers in 1..=4 {
                    for chunk in 1..=4 {
                        let end = claim_end(start, run, workers, chunk);
                        assert!(end > start, "empty claim at {start}/{run}");
                        assert!(end <= run, "claim {start}..{end} crosses {run}");
                        assert!(end - start <= chunk, "chunk cap violated");
                    }
                }
            }
        }
    }
}
