//! Deprecated sweep entry points, kept as thin shims over the unified
//! experiment API.
//!
//! The timing-parameter sweeps behind Fig. 9 and Fig. 10 used to be
//! implemented here twice (a sequential loop and a `_parallel` loop per grid
//! shape). Grid construction now lives in
//! [`crate::experiment::ExperimentSpec`]'s constructors and execution in
//! [`crate::experiment::CompiledExperiment`] /
//! [`crate::experiment::SweepService`]; every function below compiles the
//! equivalent spec and runs it, so results are bit-identical to what the old
//! bodies produced. New code should build an `ExperimentSpec` and submit it
//! to a `SweepService` instead.

use crate::backend::ChannelBackend;
use crate::exec::RoundExecutor;
use crate::experiment::{CompiledExperiment, ExperimentSpec, PointSpec};
use mes_coding::PayloadSpec;
use mes_scenario::ScenarioProfile;
use mes_stats::{SweepPoint, SweepSeries};
use mes_types::{ChannelTiming, Mechanism, Result};

/// Measures one (timing, payload size) point at x-coordinate `x`: BER in
/// percent and TR in kb/s.
///
/// # Errors
///
/// Returns an error if the configuration is invalid or the backend fails.
#[deprecated(
    since = "0.2.0",
    note = "build an ExperimentSpec::custom point and submit it to a SweepService"
)]
pub fn measure_point(
    mechanism: Mechanism,
    timing: ChannelTiming,
    x: f64,
    profile: &ScenarioProfile,
    backend: &mut dyn ChannelBackend,
    payload_bits: usize,
    seed: u64,
) -> Result<SweepPoint> {
    let spec = ExperimentSpec::custom(
        "measure_point",
        profile.scenario(),
        vec![PointSpec::new(
            mechanism.to_string(),
            x,
            mechanism,
            timing,
            PayloadSpec::Random { bits: payload_bits },
            seed,
        )],
        seed,
    );
    let compiled = CompiledExperiment::compile_with_profile(&spec, profile)?;
    // The historical behaviour was a single `transmit` (not a batch), whose
    // seeding depends on the backend's round counter; preserve it exactly.
    let observation = backend.transmit(&compiled.plans()[0])?;
    let result = compiled.fold(&[&observation], &[], &mut crate::experiment::NullSink)?;
    Ok(result.series.series()[0].points()[0])
}

/// Sweeps the Event/Timer channel over `tw0` for several `ti` values —
/// Fig. 9(a) (BER) and Fig. 9(b) (TR) of the paper. The whole grid runs as
/// one batch through the backend.
///
/// # Errors
///
/// Returns an error if any individual point fails.
#[deprecated(
    since = "0.2.0",
    note = "submit ExperimentSpec::cooperation_grid to a SweepService"
)]
pub fn cooperation_sweep(
    mechanism: Mechanism,
    profile: &ScenarioProfile,
    backend: &mut dyn ChannelBackend,
    tw0_values: &[u64],
    ti_values: &[u64],
    payload_bits: usize,
    seed: u64,
) -> Result<SweepSeries> {
    let spec = ExperimentSpec::cooperation_grid(
        "cooperation_sweep",
        profile.scenario(),
        mechanism,
        tw0_values,
        ti_values,
        payload_bits,
        seed,
    );
    let compiled = CompiledExperiment::compile_with_profile(&spec, profile)?;
    Ok(compiled.run_on_backend(backend)?.into_series())
}

/// [`cooperation_sweep`] with the grid fanned out over a [`RoundExecutor`]'s
/// worker threads (simulated backends seeded from `seed`). The result is
/// bit-identical for any worker count, and matches the sequential sweep when
/// its backend is a `SimBackend::new(profile, seed)`.
///
/// # Errors
///
/// Returns an error if any individual point fails.
#[deprecated(
    since = "0.2.0",
    note = "submit ExperimentSpec::cooperation_grid to a SweepService"
)]
pub fn cooperation_sweep_parallel(
    mechanism: Mechanism,
    profile: &ScenarioProfile,
    executor: &RoundExecutor,
    tw0_values: &[u64],
    ti_values: &[u64],
    payload_bits: usize,
    seed: u64,
) -> Result<SweepSeries> {
    let spec = ExperimentSpec::cooperation_grid(
        "cooperation_sweep_parallel",
        profile.scenario(),
        mechanism,
        tw0_values,
        ti_values,
        payload_bits,
        seed,
    );
    let compiled = CompiledExperiment::compile_with_profile(&spec, profile)?;
    Ok(compiled.run_with_executor(executor)?.into_series())
}

/// Sweeps a contention channel over `tt1` at fixed `tt0` — Fig. 10 of the
/// paper (flock, `tt0` = 60 µs). The whole grid runs as one batch through
/// the backend.
///
/// # Errors
///
/// Returns an error if any individual point fails.
#[deprecated(
    since = "0.2.0",
    note = "submit ExperimentSpec::contention_grid to a SweepService"
)]
pub fn contention_sweep(
    mechanism: Mechanism,
    profile: &ScenarioProfile,
    backend: &mut dyn ChannelBackend,
    tt1_values: &[u64],
    tt0: u64,
    payload_bits: usize,
    seed: u64,
) -> Result<SweepSeries> {
    let spec = ExperimentSpec::contention_grid(
        "contention_sweep",
        profile.scenario(),
        mechanism,
        tt1_values,
        tt0,
        payload_bits,
        seed,
    );
    let compiled = CompiledExperiment::compile_with_profile(&spec, profile)?;
    Ok(compiled.run_on_backend(backend)?.into_series())
}

/// [`contention_sweep`] fanned out over a [`RoundExecutor`] (simulated
/// backends seeded from `seed`). The result is bit-identical for any worker
/// count, and matches the sequential sweep when its backend is a
/// `SimBackend::new(profile, seed)`.
///
/// # Errors
///
/// Returns an error if any individual point fails.
#[deprecated(
    since = "0.2.0",
    note = "submit ExperimentSpec::contention_grid to a SweepService"
)]
pub fn contention_sweep_parallel(
    mechanism: Mechanism,
    profile: &ScenarioProfile,
    executor: &RoundExecutor,
    tt1_values: &[u64],
    tt0: u64,
    payload_bits: usize,
    seed: u64,
) -> Result<SweepSeries> {
    let spec = ExperimentSpec::contention_grid(
        "contention_sweep_parallel",
        profile.scenario(),
        mechanism,
        tt1_values,
        tt0,
        payload_bits,
        seed,
    );
    let compiled = CompiledExperiment::compile_with_profile(&spec, profile)?;
    Ok(compiled.run_with_executor(executor)?.into_series())
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use mes_types::{Micros, Scenario};

    #[test]
    fn cooperation_sweep_produces_a_series_per_interval() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 9);
        let sweep = cooperation_sweep(
            Mechanism::Event,
            &profile,
            &mut backend,
            &[15, 35],
            &[50, 70],
            128,
            9,
        )
        .unwrap();
        assert_eq!(sweep.series().len(), 2);
        assert_eq!(sweep.series()[0].points().len(), 2);
        assert_eq!(sweep.series()[0].points()[0].x, 15.0);
        // Larger tw0 at the same ti transmits slower.
        for series in sweep.series() {
            let points = series.points();
            assert!(points[0].rate_kbps > points[1].rate_kbps);
        }
    }

    #[test]
    fn contention_sweep_rates_fall_with_tt1() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 4);
        let sweep = contention_sweep(
            Mechanism::Flock,
            &profile,
            &mut backend,
            &[140, 200, 260],
            60,
            128,
            4,
        )
        .unwrap();
        let points = sweep.series()[0].points();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].x, 140.0);
        assert_eq!(points[2].x, 260.0);
        assert!(points[0].rate_kbps > points[2].rate_kbps);
        assert!(points.iter().all(|p| p.rate_kbps > 1.0));
    }

    #[test]
    fn parallel_sweeps_match_sequential_sweeps() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 13);
        let sequential = cooperation_sweep(
            Mechanism::Event,
            &profile,
            &mut backend,
            &[15, 35],
            &[50, 70],
            64,
            13,
        )
        .unwrap();
        let parallel = cooperation_sweep_parallel(
            Mechanism::Event,
            &profile,
            &RoundExecutor::new(4),
            &[15, 35],
            &[50, 70],
            64,
            13,
        )
        .unwrap();
        assert_eq!(sequential, parallel);

        let mut backend = SimBackend::new(profile.clone(), 8);
        let sequential = contention_sweep(
            Mechanism::Flock,
            &profile,
            &mut backend,
            &[140, 200],
            60,
            64,
            8,
        )
        .unwrap();
        let parallel = contention_sweep_parallel(
            Mechanism::Flock,
            &profile,
            &RoundExecutor::new(3),
            &[140, 200],
            60,
            64,
            8,
        )
        .unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn shims_match_the_experiment_service() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 21);
        let legacy = cooperation_sweep(
            Mechanism::Timer,
            &profile,
            &mut backend,
            &[15, 45],
            &[70, 110],
            96,
            21,
        )
        .unwrap();
        let spec = ExperimentSpec::cooperation_grid(
            "svc",
            Scenario::Local,
            Mechanism::Timer,
            &[15, 45],
            &[70, 110],
            96,
            21,
        );
        let via_service = crate::experiment::SweepService::with_default_pool()
            .submit(&spec)
            .unwrap();
        assert_eq!(legacy, via_service.series);
    }

    #[test]
    fn measure_point_reports_its_x_coordinate() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 4);
        let timing = ChannelTiming::contention(Micros::new(160), Micros::new(60));
        let point = measure_point(
            Mechanism::Flock,
            timing,
            160.0,
            &profile,
            &mut backend,
            32,
            1,
        )
        .unwrap();
        assert_eq!(point.x, 160.0);
        assert!(point.rate_kbps > 0.0);
    }

    #[test]
    fn measure_point_rejects_bad_timing() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 4);
        let bad = ChannelTiming::contention(Micros::new(50), Micros::new(60));
        assert!(measure_point(Mechanism::Flock, bad, 50.0, &profile, &mut backend, 16, 1).is_err());
    }

    #[test]
    fn sweeps_respect_scenario_availability() {
        let profile = ScenarioProfile::for_scenario(Scenario::CrossVm);
        let mut backend = SimBackend::new(profile.clone(), 4);
        let result = cooperation_sweep(
            Mechanism::Event,
            &profile,
            &mut backend,
            &[15],
            &[70],
            16,
            1,
        );
        assert!(result.is_err());
    }
}
