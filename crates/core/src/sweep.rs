//! Timing-parameter sweeps — the machinery behind Fig. 9 and Fig. 10 of the
//! paper.
//!
//! A sweep is a grid of (timing, payload) points, each measured with one
//! transmission round. All grid points are compiled to
//! [`TransmissionPlan`](crate::plan::TransmissionPlan)s up front and executed
//! as one batch — through [`ChannelBackend::transmit_batch`] when the caller
//! supplies a backend, or fanned out over worker threads when the caller
//! supplies a [`RoundExecutor`]. Both paths produce bit-identical series
//! because every round is seeded from its grid index (see
//! [`crate::backend::round_seed`]).

use crate::backend::{ChannelBackend, Observation, SimBackend};
use crate::channel::CovertChannel;
use crate::config::ChannelConfig;
use crate::exec::{PreparedRound, RoundExecutor};
use crate::plan::TransmissionPlan;
use mes_coding::BitSource;
use mes_scenario::ScenarioProfile;
use mes_stats::{LabeledSeries, SweepPoint, SweepSeries};
use mes_types::{ChannelTiming, Mechanism, Micros, Result};

/// One compiled grid point, ready for batched execution; its plan lives in
/// the grid's parallel plan vector so batches borrow instead of cloning.
struct GridPoint {
    series: usize,
    x: f64,
    round: PreparedRound,
}

impl GridPoint {
    fn prepare(
        mechanism: Mechanism,
        timing: ChannelTiming,
        x: f64,
        series: usize,
        profile: &ScenarioProfile,
        payload_bits: usize,
        seed: u64,
    ) -> Result<(GridPoint, TransmissionPlan)> {
        let config = ChannelConfig::new(mechanism, timing)?.with_seed(seed);
        let channel = CovertChannel::new(config, profile.clone())?;
        let payload = BitSource::new(seed).random_bits(payload_bits);
        let (round, plan) = PreparedRound::new(channel, payload)?;
        Ok((GridPoint { series, x, round }, plan))
    }

    fn measure(&self, observation: &Observation) -> SweepPoint {
        let report = self.round.recover(observation);
        SweepPoint {
            x: self.x,
            ber_percent: report.wire_ber().ber_percent(),
            rate_kbps: report.throughput().kilobits_per_second(),
        }
    }
}

/// Executes a compiled grid and folds the measurements back into series.
fn measure_grid(
    points: &[GridPoint],
    series_labels: Vec<String>,
    x_label: &str,
    observations: &[Observation],
) -> SweepSeries {
    let mut sweep = SweepSeries::new(x_label);
    let mut series: Vec<LabeledSeries> =
        series_labels.into_iter().map(LabeledSeries::new).collect();
    for (point, observation) in points.iter().zip(observations) {
        series[point.series].push(point.measure(observation));
    }
    for labeled in series {
        sweep.push(labeled);
    }
    sweep
}

/// Measures one (timing, payload size) point at x-coordinate `x`: BER in
/// percent and TR in kb/s.
///
/// # Errors
///
/// Returns an error if the configuration is invalid or the backend fails.
pub fn measure_point(
    mechanism: Mechanism,
    timing: ChannelTiming,
    x: f64,
    profile: &ScenarioProfile,
    backend: &mut dyn ChannelBackend,
    payload_bits: usize,
    seed: u64,
) -> Result<SweepPoint> {
    let (point, plan) = GridPoint::prepare(mechanism, timing, x, 0, profile, payload_bits, seed)?;
    let observation = backend.transmit(&plan)?;
    Ok(point.measure(&observation))
}

/// The Fig. 9 grid: one series per `ti`, one point per `tw0`.
fn cooperation_grid(
    mechanism: Mechanism,
    profile: &ScenarioProfile,
    tw0_values: &[u64],
    ti_values: &[u64],
    payload_bits: usize,
    seed: u64,
) -> Result<(Vec<GridPoint>, Vec<TransmissionPlan>, Vec<String>)> {
    let mut points = Vec::with_capacity(tw0_values.len() * ti_values.len());
    let mut plans = Vec::with_capacity(tw0_values.len() * ti_values.len());
    let mut labels = Vec::with_capacity(ti_values.len());
    for (series, &ti) in ti_values.iter().enumerate() {
        labels.push(format!("Interval={ti}"));
        for &tw0 in tw0_values {
            let timing = ChannelTiming::cooperation(Micros::new(tw0), Micros::new(ti));
            let (point, plan) = GridPoint::prepare(
                mechanism,
                timing,
                tw0 as f64,
                series,
                profile,
                payload_bits,
                seed ^ (tw0 << 16) ^ ti,
            )?;
            points.push(point);
            plans.push(plan);
        }
    }
    Ok((points, plans, labels))
}

/// The Fig. 10 grid: a single series over `tt1` at fixed `tt0`.
fn contention_grid(
    mechanism: Mechanism,
    profile: &ScenarioProfile,
    tt1_values: &[u64],
    tt0: u64,
    payload_bits: usize,
    seed: u64,
) -> Result<(Vec<GridPoint>, Vec<TransmissionPlan>, Vec<String>)> {
    let mut points = Vec::with_capacity(tt1_values.len());
    let mut plans = Vec::with_capacity(tt1_values.len());
    for &tt1 in tt1_values {
        let timing = ChannelTiming::contention(Micros::new(tt1), Micros::new(tt0));
        let (point, plan) = GridPoint::prepare(
            mechanism,
            timing,
            tt1 as f64,
            0,
            profile,
            payload_bits,
            seed ^ (tt1 << 8),
        )?;
        points.push(point);
        plans.push(plan);
    }
    Ok((points, plans, vec![mechanism.to_string()]))
}

/// Sweeps the Event/Timer channel over `tw0` for several `ti` values —
/// Fig. 9(a) (BER) and Fig. 9(b) (TR) of the paper. The whole grid runs as
/// one batch through the backend.
///
/// # Errors
///
/// Returns an error if any individual point fails.
pub fn cooperation_sweep(
    mechanism: Mechanism,
    profile: &ScenarioProfile,
    backend: &mut dyn ChannelBackend,
    tw0_values: &[u64],
    ti_values: &[u64],
    payload_bits: usize,
    seed: u64,
) -> Result<SweepSeries> {
    let (points, plans, labels) = cooperation_grid(
        mechanism,
        profile,
        tw0_values,
        ti_values,
        payload_bits,
        seed,
    )?;
    let observations = backend.transmit_batch(&plans)?;
    Ok(measure_grid(&points, labels, "tw0 (us)", &observations))
}

/// [`cooperation_sweep`] with the grid fanned out over a [`RoundExecutor`]'s
/// worker threads (simulated backends seeded from `seed`). The result is
/// bit-identical for any worker count, and matches the sequential sweep when
/// its backend is a `SimBackend::new(profile, seed)`.
///
/// # Errors
///
/// Returns an error if any individual point fails.
pub fn cooperation_sweep_parallel(
    mechanism: Mechanism,
    profile: &ScenarioProfile,
    executor: &RoundExecutor,
    tw0_values: &[u64],
    ti_values: &[u64],
    payload_bits: usize,
    seed: u64,
) -> Result<SweepSeries> {
    let (points, plans, labels) = cooperation_grid(
        mechanism,
        profile,
        tw0_values,
        ti_values,
        payload_bits,
        seed,
    )?;
    let observations = executor.execute(&plans, || SimBackend::new(profile.clone(), seed))?;
    Ok(measure_grid(&points, labels, "tw0 (us)", &observations))
}

/// Sweeps a contention channel over `tt1` at fixed `tt0` — Fig. 10 of the
/// paper (flock, `tt0` = 60 µs). The whole grid runs as one batch through
/// the backend.
///
/// # Errors
///
/// Returns an error if any individual point fails.
pub fn contention_sweep(
    mechanism: Mechanism,
    profile: &ScenarioProfile,
    backend: &mut dyn ChannelBackend,
    tt1_values: &[u64],
    tt0: u64,
    payload_bits: usize,
    seed: u64,
) -> Result<SweepSeries> {
    let (points, plans, labels) =
        contention_grid(mechanism, profile, tt1_values, tt0, payload_bits, seed)?;
    let observations = backend.transmit_batch(&plans)?;
    Ok(measure_grid(&points, labels, "tt1 (us)", &observations))
}

/// [`contention_sweep`] fanned out over a [`RoundExecutor`] (simulated
/// backends seeded from `seed`). The result is bit-identical for any worker
/// count, and matches the sequential sweep when its backend is a
/// `SimBackend::new(profile, seed)`.
///
/// # Errors
///
/// Returns an error if any individual point fails.
pub fn contention_sweep_parallel(
    mechanism: Mechanism,
    profile: &ScenarioProfile,
    executor: &RoundExecutor,
    tt1_values: &[u64],
    tt0: u64,
    payload_bits: usize,
    seed: u64,
) -> Result<SweepSeries> {
    let (points, plans, labels) =
        contention_grid(mechanism, profile, tt1_values, tt0, payload_bits, seed)?;
    let observations = executor.execute(&plans, || SimBackend::new(profile.clone(), seed))?;
    Ok(measure_grid(&points, labels, "tt1 (us)", &observations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use mes_types::Scenario;

    #[test]
    fn cooperation_sweep_produces_a_series_per_interval() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 9);
        let sweep = cooperation_sweep(
            Mechanism::Event,
            &profile,
            &mut backend,
            &[15, 35],
            &[50, 70],
            128,
            9,
        )
        .unwrap();
        assert_eq!(sweep.series().len(), 2);
        assert_eq!(sweep.series()[0].points().len(), 2);
        assert_eq!(sweep.series()[0].points()[0].x, 15.0);
        // Larger tw0 at the same ti transmits slower.
        for series in sweep.series() {
            let points = series.points();
            assert!(points[0].rate_kbps > points[1].rate_kbps);
        }
    }

    #[test]
    fn contention_sweep_rates_fall_with_tt1() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 4);
        let sweep = contention_sweep(
            Mechanism::Flock,
            &profile,
            &mut backend,
            &[140, 200, 260],
            60,
            128,
            4,
        )
        .unwrap();
        let points = sweep.series()[0].points();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].x, 140.0);
        assert_eq!(points[2].x, 260.0);
        assert!(points[0].rate_kbps > points[2].rate_kbps);
        assert!(points.iter().all(|p| p.rate_kbps > 1.0));
    }

    #[test]
    fn parallel_sweeps_match_sequential_sweeps() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 13);
        let sequential = cooperation_sweep(
            Mechanism::Event,
            &profile,
            &mut backend,
            &[15, 35],
            &[50, 70],
            64,
            13,
        )
        .unwrap();
        let parallel = cooperation_sweep_parallel(
            Mechanism::Event,
            &profile,
            &RoundExecutor::new(4),
            &[15, 35],
            &[50, 70],
            64,
            13,
        )
        .unwrap();
        assert_eq!(sequential, parallel);

        let mut backend = SimBackend::new(profile.clone(), 8);
        let sequential = contention_sweep(
            Mechanism::Flock,
            &profile,
            &mut backend,
            &[140, 200],
            60,
            64,
            8,
        )
        .unwrap();
        let parallel = contention_sweep_parallel(
            Mechanism::Flock,
            &profile,
            &RoundExecutor::new(3),
            &[140, 200],
            60,
            64,
            8,
        )
        .unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn measure_point_reports_its_x_coordinate() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 4);
        let timing = ChannelTiming::contention(Micros::new(160), Micros::new(60));
        let point = measure_point(
            Mechanism::Flock,
            timing,
            160.0,
            &profile,
            &mut backend,
            32,
            1,
        )
        .unwrap();
        assert_eq!(point.x, 160.0);
        assert!(point.rate_kbps > 0.0);
    }

    #[test]
    fn measure_point_rejects_bad_timing() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 4);
        let bad = ChannelTiming::contention(Micros::new(50), Micros::new(60));
        assert!(measure_point(Mechanism::Flock, bad, 50.0, &profile, &mut backend, 16, 1).is_err());
    }

    #[test]
    fn sweeps_respect_scenario_availability() {
        let profile = ScenarioProfile::for_scenario(Scenario::CrossVm);
        let mut backend = SimBackend::new(profile.clone(), 4);
        let result = cooperation_sweep(
            Mechanism::Event,
            &profile,
            &mut backend,
            &[15],
            &[70],
            16,
            1,
        );
        assert!(result.is_err());
    }
}
