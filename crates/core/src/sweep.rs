//! Timing-parameter sweeps — the machinery behind Fig. 9 and Fig. 10 of the
//! paper.

use crate::backend::ChannelBackend;
use crate::channel::CovertChannel;
use crate::config::ChannelConfig;
use mes_coding::BitSource;
use mes_scenario::ScenarioProfile;
use mes_stats::{LabeledSeries, SweepPoint, SweepSeries};
use mes_types::{ChannelTiming, Mechanism, Micros, Result};

/// Measures one (timing, payload size) point: BER in percent and TR in kb/s.
///
/// # Errors
///
/// Returns an error if the configuration is invalid or the backend fails.
pub fn measure_point(
    mechanism: Mechanism,
    timing: ChannelTiming,
    profile: &ScenarioProfile,
    backend: &mut dyn ChannelBackend,
    payload_bits: usize,
    seed: u64,
) -> Result<SweepPoint> {
    let config = ChannelConfig::new(mechanism, timing)?.with_seed(seed);
    let channel = CovertChannel::new(config, profile.clone())?;
    let payload = BitSource::new(seed).random_bits(payload_bits);
    let report = channel.transmit(&payload, backend)?;
    Ok(SweepPoint {
        x: 0.0,
        ber_percent: report.wire_ber().ber_percent(),
        rate_kbps: report.throughput().kilobits_per_second(),
    })
}

/// Sweeps the Event/Timer channel over `tw0` for several `ti` values —
/// Fig. 9(a) (BER) and Fig. 9(b) (TR) of the paper.
///
/// # Errors
///
/// Returns an error if any individual point fails.
pub fn cooperation_sweep(
    mechanism: Mechanism,
    profile: &ScenarioProfile,
    backend: &mut dyn ChannelBackend,
    tw0_values: &[u64],
    ti_values: &[u64],
    payload_bits: usize,
    seed: u64,
) -> Result<SweepSeries> {
    let mut sweep = SweepSeries::new("tw0 (us)");
    for &ti in ti_values {
        let mut series = LabeledSeries::new(format!("Interval={ti}"));
        for &tw0 in tw0_values {
            let timing = ChannelTiming::cooperation(Micros::new(tw0), Micros::new(ti));
            let mut point = measure_point(
                mechanism,
                timing,
                profile,
                backend,
                payload_bits,
                seed ^ (tw0 << 16) ^ ti,
            )?;
            point.x = tw0 as f64;
            series.push(point);
        }
        sweep.push(series);
    }
    Ok(sweep)
}

/// Sweeps a contention channel over `tt1` at fixed `tt0` — Fig. 10 of the
/// paper (flock, `tt0` = 60 µs).
///
/// # Errors
///
/// Returns an error if any individual point fails.
pub fn contention_sweep(
    mechanism: Mechanism,
    profile: &ScenarioProfile,
    backend: &mut dyn ChannelBackend,
    tt1_values: &[u64],
    tt0: u64,
    payload_bits: usize,
    seed: u64,
) -> Result<SweepSeries> {
    let mut sweep = SweepSeries::new("tt1 (us)");
    let mut series = LabeledSeries::new(mechanism.to_string());
    for &tt1 in tt1_values {
        let timing = ChannelTiming::contention(Micros::new(tt1), Micros::new(tt0));
        let mut point =
            measure_point(mechanism, timing, profile, backend, payload_bits, seed ^ (tt1 << 8))?;
        point.x = tt1 as f64;
        series.push(point);
    }
    sweep.push(series);
    Ok(sweep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use mes_types::Scenario;

    #[test]
    fn cooperation_sweep_produces_a_series_per_interval() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 9);
        let sweep = cooperation_sweep(
            Mechanism::Event,
            &profile,
            &mut backend,
            &[15, 35],
            &[50, 70],
            128,
            9,
        )
        .unwrap();
        assert_eq!(sweep.series().len(), 2);
        assert_eq!(sweep.series()[0].points().len(), 2);
        assert_eq!(sweep.series()[0].points()[0].x, 15.0);
        // Larger tw0 at the same ti transmits slower.
        for series in sweep.series() {
            let points = series.points();
            assert!(points[0].rate_kbps > points[1].rate_kbps);
        }
    }

    #[test]
    fn contention_sweep_rates_fall_with_tt1() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 4);
        let sweep = contention_sweep(
            Mechanism::Flock,
            &profile,
            &mut backend,
            &[140, 200, 260],
            60,
            128,
            4,
        )
        .unwrap();
        let points = sweep.series()[0].points();
        assert_eq!(points.len(), 3);
        assert!(points[0].rate_kbps > points[2].rate_kbps);
        assert!(points.iter().all(|p| p.rate_kbps > 1.0));
    }

    #[test]
    fn measure_point_rejects_bad_timing() {
        let profile = ScenarioProfile::local();
        let mut backend = SimBackend::new(profile.clone(), 4);
        let bad = ChannelTiming::contention(Micros::new(50), Micros::new(60));
        assert!(measure_point(Mechanism::Flock, bad, &profile, &mut backend, 16, 1).is_err());
    }

    #[test]
    fn sweeps_respect_scenario_availability() {
        let profile = ScenarioProfile::for_scenario(Scenario::CrossVm);
        let mut backend = SimBackend::new(profile.clone(), 4);
        let result = cooperation_sweep(
            Mechanism::Event,
            &profile,
            &mut backend,
            &[15],
            &[70],
            16,
            1,
        );
        assert!(result.is_err());
    }
}
