//! The end-to-end covert channel: framing, transmission, recovery, metrics.

use crate::backend::{ChannelBackend, Observation};
use crate::config::ChannelConfig;
use crate::plan::TransmissionPlan;
use crate::protocol;
use mes_coding::{AdaptiveThreshold, FrameCodec, ThresholdDecoder};
use mes_scenario::ScenarioProfile;
use mes_stats::{BerReport, ThroughputReport};
use mes_types::{BitString, Nanos, Result};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything measured during one transmission round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransmissionReport {
    sent_payload: BitString,
    received_payload: BitString,
    sent_wire: BitString,
    received_wire: BitString,
    latencies: Vec<Nanos>,
    elapsed: Nanos,
    frame_valid: bool,
    threshold: Nanos,
}

impl TransmissionReport {
    /// The payload the Trojan intended to leak.
    pub fn sent_payload(&self) -> &BitString {
        &self.sent_payload
    }

    /// The payload the Spy recovered.
    pub fn received_payload(&self) -> &BitString {
        &self.received_payload
    }

    /// The on-the-wire bits (synchronization sequence + payload) as sent.
    pub fn sent_wire(&self) -> &BitString {
        &self.sent_wire
    }

    /// The on-the-wire bits as decoded by the Spy.
    pub fn received_wire(&self) -> &BitString {
        &self.received_wire
    }

    /// The Spy's raw constraint latencies, one per wire bit.
    pub fn latencies(&self) -> &[Nanos] {
        &self.latencies
    }

    /// Whether the synchronization sequence validated (the paper's Spy
    /// discards the round otherwise).
    pub fn frame_valid(&self) -> bool {
        self.frame_valid
    }

    /// The decision threshold the Spy ended up using.
    pub fn threshold(&self) -> Nanos {
        self.threshold
    }

    /// Wire-level bit error rate — the BER the paper reports.
    pub fn wire_ber(&self) -> BerReport {
        BerReport::compare(&self.sent_wire, &self.received_wire)
    }

    /// Payload-level bit error rate (after frame validation).
    pub fn payload_ber(&self) -> BerReport {
        BerReport::compare(&self.sent_payload, &self.received_payload)
    }

    /// Transmission rate over the whole round.
    pub fn throughput(&self) -> ThroughputReport {
        ThroughputReport::new(self.sent_wire.len() as u64, self.elapsed)
    }

    /// Total elapsed time of the round.
    pub fn elapsed(&self) -> Nanos {
        self.elapsed
    }
}

/// A configured covert channel bound to a deployment profile.
///
/// # Examples
///
/// See the crate-level example; the typical flow is
/// `CovertChannel::new(config, profile)` →
/// [`CovertChannel::transmit`] with any [`ChannelBackend`].
#[derive(Debug, Clone)]
pub struct CovertChannel {
    config: ChannelConfig,
    profile: Arc<ScenarioProfile>,
    codec: FrameCodec,
}

impl CovertChannel {
    /// Creates a channel after validating the configuration against the
    /// profile.
    ///
    /// Accepts an owned profile or an `Arc<ScenarioProfile>`; grid compilers
    /// hand every channel of an experiment the same `Arc`, so building a
    /// thousand-point grid shares one profile allocation instead of deep
    /// cloning it per point.
    ///
    /// # Errors
    ///
    /// Returns an error if the mechanism is unavailable in the scenario or
    /// the configuration is invalid.
    pub fn new(config: ChannelConfig, profile: impl Into<Arc<ScenarioProfile>>) -> Result<Self> {
        let profile = profile.into();
        profile.require(config.mechanism)?;
        config.validate()?;
        let codec =
            FrameCodec::new(config.preamble.clone())?.with_tolerance(config.preamble_tolerance);
        Ok(CovertChannel {
            config,
            profile,
            codec,
        })
    }

    /// The channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// The deployment profile.
    pub fn profile(&self) -> &ScenarioProfile {
        &self.profile
    }

    /// The shared handle to the deployment profile (cheap to clone into
    /// backends and worker factories).
    pub fn shared_profile(&self) -> &Arc<ScenarioProfile> {
        &self.profile
    }

    /// Transmits a payload over `backend` and recovers it from the Spy's
    /// latencies.
    ///
    /// # Errors
    ///
    /// Returns an error if the plan cannot be built or the backend fails;
    /// a round whose synchronization sequence does not validate is *not* an
    /// error — it is reported with [`TransmissionReport::frame_valid`] set to
    /// `false`, matching the paper's "discard and retry" behaviour.
    pub fn transmit(
        &self,
        payload: &BitString,
        backend: &mut dyn ChannelBackend,
    ) -> Result<TransmissionReport> {
        let (wire, plan) = self.plan_for(payload)?;
        let observation = backend.transmit(&plan)?;
        Ok(self.recover(payload, &wire, &observation))
    }

    /// Compiles a payload into its on-the-wire bits and transmission plan
    /// without executing it — the unit of work batched execution operates on.
    ///
    /// # Errors
    ///
    /// Returns an error if the plan cannot be built for this configuration.
    pub fn plan_for(&self, payload: &BitString) -> Result<(BitString, TransmissionPlan)> {
        let wire = self.codec.encode(payload);
        let plan = protocol::encode(&wire, &self.config, &self.profile)?;
        Ok((wire, plan))
    }

    /// Compiles a batch of payloads into their wires and plans.
    pub(crate) fn compile_batch(
        &self,
        payloads: &[BitString],
    ) -> Result<(Vec<BitString>, Vec<TransmissionPlan>)> {
        let mut wires = Vec::with_capacity(payloads.len());
        let mut plans = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let (wire, plan) = self.plan_for(payload)?;
            wires.push(wire);
            plans.push(plan);
        }
        Ok((wires, plans))
    }

    /// Recovers one report per round from a batch's observations.
    pub(crate) fn recover_batch(
        &self,
        payloads: &[BitString],
        wires: &[BitString],
        observations: &[Observation],
    ) -> Vec<TransmissionReport> {
        payloads
            .iter()
            .zip(wires.iter())
            .zip(observations.iter())
            .map(|((payload, wire), observation)| self.recover(payload, wire, observation))
            .collect()
    }

    /// Transmits one round per payload as a single batch and recovers every
    /// round, in payload order.
    ///
    /// All plans are compiled up front and handed to
    /// [`ChannelBackend::transmit_batch`], so backends can reuse per-round
    /// state (the simulated backend keeps one engine alive across the whole
    /// batch) and batches can be replayed deterministically. For
    /// multi-threaded execution see
    /// [`RoundExecutor::transmit_payloads`](crate::exec::RoundExecutor::transmit_payloads);
    /// its reports are bit-identical to this method's when this backend is a
    /// [`crate::SimBackend`] constructed with the executor's `base_seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if any plan cannot be built or the backend fails;
    /// invalid frames are reported per-round, not as errors (see
    /// [`CovertChannel::transmit`]).
    pub fn transmit_many(
        &self,
        payloads: &[BitString],
        backend: &mut dyn ChannelBackend,
    ) -> Result<Vec<TransmissionReport>> {
        let (wires, plans) = self.compile_batch(payloads)?;
        let observations = backend.transmit_batch(&plans)?;
        Ok(self.recover_batch(payloads, &wires, &observations))
    }

    /// Decodes a raw observation against the wire bits that were sent.
    /// Exposed separately so sweeps can reuse observations.
    pub fn recover(
        &self,
        payload: &BitString,
        wire: &BitString,
        observation: &Observation,
    ) -> TransmissionReport {
        let decoder = self.fit_decoder(observation);
        let received_wire = decoder.decode_all(&observation.latencies);
        let (received_payload, frame_valid) = match self.codec.decode(&received_wire) {
            Ok(frame) => (frame.into_payload(), true),
            Err(_) => {
                // The paper's Spy would discard the round; for reporting we
                // still extract the best-effort payload after the preamble.
                let start = self.codec.preamble_len().min(received_wire.len());
                (received_wire.slice(start, received_wire.len()), false)
            }
        };
        TransmissionReport {
            sent_payload: payload.clone(),
            received_payload,
            sent_wire: wire.clone(),
            received_wire,
            latencies: observation.latencies.clone(),
            elapsed: observation.elapsed,
            frame_valid,
            threshold: decoder.threshold(),
        }
    }

    /// Fits the Spy's decision threshold: adaptively from the preamble
    /// latencies when possible (Section V.B), otherwise from the expected
    /// symbol latencies.
    fn fit_decoder(&self, observation: &Observation) -> ThresholdDecoder {
        let preamble = &self.config.preamble;
        if observation.latencies.len() >= preamble.len() {
            if let Ok(decoder) =
                AdaptiveThreshold::fit(preamble, &observation.latencies[..preamble.len()])
            {
                return decoder;
            }
        }
        let (zero, one) = protocol::expected_latencies(&self.config);
        ThresholdDecoder::midpoint(zero, one)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use mes_coding::BitSource;
    use mes_types::{Mechanism, Scenario};

    fn run(mechanism: Mechanism, scenario: Scenario, bits: usize, seed: u64) -> TransmissionReport {
        let profile = ScenarioProfile::for_scenario(scenario);
        let config = ChannelConfig::paper_defaults(scenario, mechanism)
            .unwrap()
            .with_seed(seed);
        let channel = CovertChannel::new(config, profile.clone()).unwrap();
        let mut backend = SimBackend::new(profile, seed);
        let payload = BitSource::new(seed ^ 0xABCD).random_bits(bits);
        channel.transmit(&payload, &mut backend).unwrap()
    }

    #[test]
    fn event_channel_recovers_payload_locally() {
        let report = run(Mechanism::Event, Scenario::Local, 256, 1);
        assert!(report.frame_valid());
        // The calibrated noise model reproduces the paper's ~0.5% BER, so a
        // couple of flipped bits in 256 are expected.
        assert!(report.payload_ber().ber_percent() < 1.6);
        assert!(report.wire_ber().errors() <= 4);
        assert!(report.throughput().kilobits_per_second() > 8.0);
        assert!(report.threshold() > Nanos::ZERO);
        assert_eq!(report.latencies().len(), 256 + 8);
    }

    #[test]
    fn every_local_mechanism_achieves_low_ber() {
        for mechanism in Scenario::Local.mechanisms() {
            let report = run(mechanism, Scenario::Local, 512, 7);
            let ber = report.wire_ber().ber_percent();
            assert!(ber < 3.0, "{mechanism}: BER {ber:.2}%");
            assert!(report.frame_valid(), "{mechanism}: frame should validate");
        }
    }

    #[test]
    fn cross_sandbox_event_still_works() {
        let report = run(Mechanism::Event, Scenario::CrossSandbox, 256, 3);
        assert!(report.wire_ber().ber_percent() < 3.0);
        assert!(report.throughput().kilobits_per_second() > 6.0);
    }

    #[test]
    fn cross_vm_rejects_non_file_mechanisms_and_accepts_file_locks() {
        let profile = ScenarioProfile::cross_vm();
        let bad = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        assert!(CovertChannel::new(bad, profile.clone()).is_err());
        let report = run(Mechanism::FileLockEx, Scenario::CrossVm, 128, 5);
        assert!(report.wire_ber().ber_percent() < 4.0);
    }

    #[test]
    fn byte_payload_roundtrips() {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Flock).unwrap();
        let channel = CovertChannel::new(config, profile.clone()).unwrap();
        let mut backend = SimBackend::new(profile, 11);
        let secret = BitString::from_bytes(b"MESA");
        let report = channel.transmit(&secret, &mut backend).unwrap();
        assert_eq!(report.received_payload().to_bytes(), b"MESA");
        assert_eq!(report.sent_wire().len(), 8 + 32);
    }

    #[test]
    fn transmit_many_matches_round_indexed_single_rounds() {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        let channel = CovertChannel::new(config, profile.clone()).unwrap();
        let payloads: Vec<BitString> = (0..4)
            .map(|i| BitSource::new(50 + i).random_bits(48))
            .collect();

        let mut backend = SimBackend::new(profile.clone(), 21);
        let batch = channel.transmit_many(&payloads, &mut backend).unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(backend.runs(), 4);

        // Each batched round equals the same round on a fresh backend seeded
        // for that index.
        for (index, (payload, report)) in payloads.iter().zip(&batch).enumerate() {
            let mut fresh = SimBackend::new(
                profile.clone(),
                crate::backend::round_seed(21, index as u64),
            );
            let single = channel.transmit(payload, &mut fresh).unwrap();
            assert_eq!(&single, report, "round {index}");
        }
    }

    #[test]
    fn recover_reports_invalid_frames_without_erroring() {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        let channel = CovertChannel::new(config, profile).unwrap();
        let payload = BitString::from_str01("1010").unwrap();
        let wire = channel.codec.encode(&payload);
        // Fabricate an observation where every latency reads as '0'.
        let observation = Observation {
            latencies: vec![Nanos::new(1_000); wire.len()],
            elapsed: Nanos::from_millis(1),
        };
        let report = channel.recover(&payload, &wire, &observation);
        assert!(!report.frame_valid());
        assert!(report.wire_ber().errors() > 0);
    }
}
