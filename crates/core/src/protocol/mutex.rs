//! The Windows mutex channel (§IV.G of the paper).
//!
//! A named mutex kernel object is signalled when unowned; `WaitForSingleObject`
//! acquires it and records the owning thread and recursion counter (Fig. 4).
//! The Trojan's acquire/hold/release pattern modulates how long the Spy's own
//! acquisition blocks — the same contention scheme as the file locks, but on
//! an object that exists only in the kernel-object namespace (and therefore
//! stops working across VMs).

use crate::config::ChannelConfig;
use crate::plan::TransmissionPlan;
use crate::protocol::contention;
use mes_types::BitString;

/// The named-object name Trojan and Spy agree on.
pub const OBJECT_NAME: &str = "Global/mes-attacks-mutex";

/// Compiles on-the-wire bits into a mutex transmission plan.
pub fn encode(wire: &BitString, config: &ChannelConfig) -> TransmissionPlan {
    contention::encode(wire, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SlotAction;
    use mes_types::{Mechanism, Micros, Scenario};

    #[test]
    fn mutex_uses_paper_timeset() {
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Mutex).unwrap();
        let plan = encode(&BitString::from_str01("01").unwrap(), &config);
        assert_eq!(plan.actions[0], SlotAction::Idle(Micros::new(60)));
        assert_eq!(plan.actions[1], SlotAction::Occupy(Micros::new(140)));
    }

    #[test]
    fn mutex_is_unavailable_across_vms() {
        assert!(ChannelConfig::paper_defaults(Scenario::CrossVm, Mechanism::Mutex).is_err());
    }
}
