//! Shared builder for cooperation-based (synchronization) channels.
//!
//! Protocol 2 of the paper: the Trojan *always* satisfies the Spy's
//! synchronization condition, but waits `tw0` before doing so for a `0` and
//! `tw0 + ti` for a `1`. The Spy's wait latency is the symbol. Because the
//! Spy can only proceed once released, the two processes never drift and no
//! fine-grained inter-bit synchronization is needed — this is the paper's
//! novel *cooperation-based volatile covert channel*.

use crate::config::ChannelConfig;
use crate::plan::{SlotAction, TransmissionPlan};
use mes_types::{BitString, ChannelTiming};

/// Compiles bits into signal-after slot actions using the configured
/// cooperation timing.
pub fn encode(wire: &BitString, config: &ChannelConfig) -> TransmissionPlan {
    let (tw0, ti) = match config.timing {
        ChannelTiming::Cooperation { tw0, ti } => (tw0, ti),
        // Defensive mapping for a mismatched family (rejected upstream).
        ChannelTiming::Contention { tt1, tt0 } => (tt0, tt1 - tt0),
    };
    let actions = wire
        .iter()
        .map(|bit| {
            if bit.is_one() {
                SlotAction::SignalAfter(tw0 + ti)
            } else {
                SlotAction::SignalAfter(tw0)
            }
        })
        .collect();
    TransmissionPlan::new(actions, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_types::{Mechanism, Micros, Scenario};

    #[test]
    fn both_symbols_signal_with_different_delays() {
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        let wire = BitString::from_str01("01").unwrap();
        let plan = encode(&wire, &config);
        assert_eq!(
            plan.actions,
            vec![
                SlotAction::SignalAfter(Micros::new(15)),
                SlotAction::SignalAfter(Micros::new(80)),
            ]
        );
        assert!(plan.actions.iter().all(SlotAction::is_signal));
    }

    #[test]
    fn timer_uses_its_own_interval() {
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Timer).unwrap();
        let wire = BitString::from_str01("1").unwrap();
        let plan = encode(&wire, &config);
        assert_eq!(plan.actions, vec![SlotAction::SignalAfter(Micros::new(90))]);
    }
}
