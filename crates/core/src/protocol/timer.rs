//! The WaitableTimer channel (§IV.G of the paper).
//!
//! Identical in structure to the Event channel, but the Trojan releases the
//! Spy by arming a waitable timer with a (near-)immediate due time instead of
//! calling `SetEvent`. The paper reports a slightly lower rate than Event
//! because the timer path through the kernel is longer (Tables IV and V).

use crate::config::ChannelConfig;
use crate::plan::TransmissionPlan;
use crate::protocol::cooperation;
use mes_types::BitString;

/// The named-object name Trojan and Spy agree on.
pub const OBJECT_NAME: &str = "Global/mes-attacks-timer";

/// Compiles on-the-wire bits into a WaitableTimer transmission plan.
pub fn encode(wire: &BitString, config: &ChannelConfig) -> TransmissionPlan {
    cooperation::encode(wire, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SlotAction;
    use mes_types::{Mechanism, Micros, Scenario};

    #[test]
    fn timer_interval_is_wider_than_event() {
        let event = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        let timer = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Timer).unwrap();
        let wire = BitString::from_str01("1").unwrap();
        let event_plan = crate::protocol::event::encode(&wire, &event);
        let timer_plan = encode(&wire, &timer);
        assert_eq!(
            event_plan.actions[0],
            SlotAction::SignalAfter(Micros::new(80))
        );
        assert_eq!(
            timer_plan.actions[0],
            SlotAction::SignalAfter(Micros::new(90))
        );
    }
}
