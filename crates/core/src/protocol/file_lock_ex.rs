//! The `FileLockEX` channel (§IV.G, Tables IV–VI of the paper).
//!
//! The Windows counterpart of the `flock` channel: `LockFileEx` with the
//! exclusive flag on a read-only file shared between Trojan and Spy. Because
//! the lock is attached to a real file visible from both sides of a Hyper-V
//! boundary, this is the one Windows mechanism that still works across
//! virtual machines (Table VI).

use crate::config::ChannelConfig;
use crate::plan::TransmissionPlan;
use crate::protocol::contention;
use mes_types::BitString;

/// The shared file path Trojan and Spy agree on.
pub const SHARED_FILE: &str = "C:/ProgramData/mes-attacks/file.txt";

/// Compiles on-the-wire bits into a FileLockEX transmission plan.
pub fn encode(wire: &BitString, config: &ChannelConfig) -> TransmissionPlan {
    contention::encode(wire, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SlotAction;
    use mes_types::{Mechanism, Micros, Scenario};

    #[test]
    fn cross_vm_timeset_is_larger_than_local() {
        let local = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::FileLockEx).unwrap();
        let vm = ChannelConfig::paper_defaults(Scenario::CrossVm, Mechanism::FileLockEx).unwrap();
        let wire = BitString::from_str01("1").unwrap();
        let local_plan = encode(&wire, &local);
        let vm_plan = encode(&wire, &vm);
        assert_eq!(local_plan.actions[0], SlotAction::Occupy(Micros::new(150)));
        assert_eq!(vm_plan.actions[0], SlotAction::Occupy(Micros::new(190)));
    }
}
