//! The Event channel (Protocol 2 of the paper, §IV.F) — the paper's
//! highest-rate channel and its novel *cooperation-based* design.
//!
//! The Spy creates an auto-reset event object and parks on
//! `WaitForSingleObject` with an infinite timeout. The Trojan opens the same
//! named object, waits `RESTRICTION_PERIOD_1` or `RESTRICTION_PERIOD_2`
//! depending on the bit, then calls `SetEvent`, releasing the Spy. Because
//! the Spy can only proceed when released, the pair is self-synchronising:
//! one bit error never corrupts the bits after it (bit independence), and no
//! per-bit re-synchronization is needed.

use crate::config::ChannelConfig;
use crate::plan::TransmissionPlan;
use crate::protocol::cooperation;
use mes_types::BitString;

/// The named-object name Trojan and Spy agree on.
pub const OBJECT_NAME: &str = "Global/mes-attacks-event";

/// Compiles on-the-wire bits into an Event transmission plan.
pub fn encode(wire: &BitString, config: &ChannelConfig) -> TransmissionPlan {
    cooperation::encode(wire, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SlotAction;
    use mes_types::{Mechanism, Micros, Scenario};

    #[test]
    fn event_signals_for_both_symbols() {
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        let plan = encode(&BitString::from_str01("10").unwrap(), &config);
        assert_eq!(plan.actions[0], SlotAction::SignalAfter(Micros::new(80)));
        assert_eq!(plan.actions[1], SlotAction::SignalAfter(Micros::new(15)));
    }

    #[test]
    fn event_is_unavailable_across_vms() {
        assert!(ChannelConfig::paper_defaults(Scenario::CrossVm, Mechanism::Event).is_err());
    }
}
