//! The Semaphore channel (§IV.E of the paper) and its resource
//! pre-provisioning (Tables II and III).
//!
//! The Spy repeatedly performs the P operation (`WaitForSingleObject`) on a
//! shared semaphore and measures how long it takes to be released from the
//! wait. For a `1`, the Trojan produces a resource (V /
//! `ReleaseSemaphore`) only after holding back for `tt1`, so the Spy waits
//! long. For a `0`, the Trojan just sleeps `tt0` and produces nothing — the
//! Spy is released immediately by consuming one of the resources provisioned
//! *before* the round started.
//!
//! Without provisioning, the first `0` after the pool runs dry stalls the Spy
//! until the next `1` (the failure shown in Table II); provisioning at least
//! as many resources as there are `0`s in the round fixes it (Table III).
//!
//! # Implementation note
//!
//! The paper's pre-provisioning description (Tables II/III) is reproduced
//! exactly by [`provisioning_walkthrough`] and by the
//! `table2_semaphore_provisioning` experiment binary. The *executable* data
//! path, however, uses a behaviourally equivalent **deferred-release**
//! variant: the Trojan releases a resource after `tt1` for a `1` and after
//! `tt0` for a `0`, so the Spy's wait latency carries the bit and the pool
//! can never under-run regardless of round length. A literal "consume one
//! provisioned unit per `0`" scheme cannot distinguish `1`s while provisioned
//! units remain (the Spy's P returns immediately whenever the pool is
//! non-empty), so it only works when the pool is provisioned just-in-time —
//! which is exactly what deferring the release achieves. The per-bit timing,
//! and therefore the BER/TR the paper reports in Tables IV and V, is
//! unchanged.

use crate::config::ChannelConfig;
use crate::plan::{SlotAction, TransmissionPlan};
use mes_types::{BitString, ChannelTiming, MesError, Result};
use serde::{Deserialize, Serialize};

/// The named-object name Trojan and Spy agree on.
pub const OBJECT_NAME: &str = "Global/mes-attacks-semaphore";

/// Number of resources that must be provisioned before transmitting `wire`:
/// one per `0`, because each `0` makes the Spy consume a unit the Trojan
/// never replaces.
pub fn required_resources(wire: &BitString) -> u32 {
    wire.count_zeros() as u32
}

/// Compiles on-the-wire bits into a semaphore transmission plan with the
/// required pre-provisioning.
///
/// # Errors
///
/// Returns [`MesError::InvalidConfig`] if the configuration carries
/// cooperation timing (rejected earlier by [`ChannelConfig::new`]).
pub fn encode(wire: &BitString, config: &ChannelConfig) -> Result<TransmissionPlan> {
    let ChannelTiming::Contention { tt1, tt0 } = config.timing else {
        return Err(MesError::InvalidConfig {
            reason: "semaphore channel requires contention timing".into(),
        });
    };
    let actions = wire
        .iter()
        .map(|bit| {
            if bit.is_one() {
                // Produce the resource only after holding back for tt1.
                SlotAction::SignalAfter(tt1)
            } else {
                // Deferred release: produce quickly so the Spy reads a short
                // wait (see the module-level implementation note).
                SlotAction::SignalAfter(tt0)
            }
        })
        .collect();
    // Recorded for reporting: what the paper's Tables II/III say an attacker
    // running the literal scheme would have to provision.
    Ok(TransmissionPlan::new(actions, config).with_provisioned_resources(required_resources(wire)))
}

/// One row of the provisioning walk-through in Tables II/III of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvisioningStep {
    /// Bit index (1-based, matching the paper's K1..K12 labels).
    pub index: usize,
    /// The transmitted bit.
    pub bit: mes_types::Bit,
    /// What the Trojan does ("Request"/"Sleep" in the paper's wording).
    pub trojan_requests: bool,
    /// Whether the Spy can be released this step.
    pub spy_released: bool,
    /// Remaining provisioned resources after the step.
    pub remaining_resources: i64,
}

/// Replays the paper's provisioning table for a key and an initial resource
/// count, reporting step by step whether the Spy stalls.
///
/// With `initial_resources = 0` and the paper's example key this reproduces
/// Table II (the Spy stalls on the `0`s); with `initial_resources = 5` it
/// reproduces Table III (every step releases the Spy).
pub fn provisioning_walkthrough(key: &BitString, initial_resources: u32) -> Vec<ProvisioningStep> {
    let mut remaining = initial_resources as i64;
    let mut steps = Vec::with_capacity(key.len());
    for (index, bit) in key.iter().enumerate() {
        let trojan_requests = bit.is_one();
        let spy_released = if trojan_requests {
            // The Trojan produces a resource and the Spy consumes it: the
            // provisioned pool is untouched.
            true
        } else if remaining > 0 {
            remaining -= 1;
            true
        } else {
            false
        };
        steps.push(ProvisioningStep {
            index: index + 1,
            bit,
            trojan_requests,
            spy_released,
            remaining_resources: remaining,
        });
    }
    steps
}

/// Checks that a provisioning level is sufficient for a payload.
///
/// # Errors
///
/// Returns [`MesError::InsufficientSemaphoreResources`] when it is not.
pub fn check_provisioning(wire: &BitString, provisioned: u32) -> Result<()> {
    let required = required_resources(wire);
    if provisioned < required {
        Err(MesError::InsufficientSemaphoreResources {
            provisioned: provisioned as u64,
            required: required as u64,
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_types::{Mechanism, Micros, Scenario};

    /// The example key of Tables II/III: K = 1,1,0,1,1,0,1,0,0,0,1,1.
    fn paper_key() -> BitString {
        BitString::from_str01("110110100011").unwrap()
    }

    #[test]
    fn required_resources_counts_zeros() {
        assert_eq!(required_resources(&paper_key()), 5);
        assert_eq!(
            required_resources(&BitString::from_str01("111").unwrap()),
            0
        );
        assert_eq!(required_resources(&BitString::new()), 0);
    }

    #[test]
    fn table_two_without_provisioning_stalls_on_zeros() {
        let steps = provisioning_walkthrough(&paper_key(), 0);
        assert_eq!(steps.len(), 12);
        // K3 is the first 0: with no provisioned resources the Spy stalls.
        assert!(!steps[2].spy_released);
        assert!(steps.iter().filter(|s| !s.spy_released).count() >= 5);
        // Every 1 still releases the Spy.
        assert!(steps
            .iter()
            .filter(|s| s.bit.is_one())
            .all(|s| s.spy_released));
    }

    #[test]
    fn table_three_with_five_resources_never_stalls() {
        let steps = provisioning_walkthrough(&paper_key(), 5);
        assert!(steps.iter().all(|s| s.spy_released));
        // The pool drains to exactly zero, as in the paper's last rows.
        assert_eq!(steps.last().unwrap().remaining_resources, 0);
        // And the per-step remaining counts match Table III's Resources column.
        let remaining: Vec<i64> = steps.iter().map(|s| s.remaining_resources).collect();
        assert_eq!(remaining, vec![5, 5, 4, 4, 4, 3, 3, 2, 1, 0, 0, 0]);
    }

    #[test]
    fn encode_provisions_automatically() {
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Semaphore).unwrap();
        let plan = encode(&paper_key(), &config).unwrap();
        assert_eq!(plan.provisioned_resources, 5);
        assert_eq!(plan.len(), 12);
        assert_eq!(plan.actions[0], SlotAction::SignalAfter(Micros::new(230)));
        assert_eq!(plan.actions[2], SlotAction::SignalAfter(Micros::new(100)));
    }

    #[test]
    fn check_provisioning_enforces_the_bound() {
        assert!(check_provisioning(&paper_key(), 5).is_ok());
        assert!(check_provisioning(&paper_key(), 6).is_ok());
        let err = check_provisioning(&paper_key(), 4).unwrap_err();
        assert!(matches!(
            err,
            MesError::InsufficientSemaphoreResources {
                provisioned: 4,
                required: 5
            }
        ));
    }
}
