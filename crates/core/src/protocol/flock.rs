//! The `flock` channel (Protocol 1 of the paper, §IV.D).
//!
//! Linux is the one OS in the paper's study where the only inter-process
//! MESM that does not require writable shared memory is the advisory file
//! lock. Trojan and Spy agree on a path, both open it read-only, and the
//! Trojan's `LOCK_EX`/`LOCK_UN` pattern modulates how long the Spy's own
//! `LOCK_EX` blocks. The locking state lives on the shared i-node
//! (fd table → file table → i-node, Fig. 5), which is why it crosses process,
//! sandbox and even VM boundaries.

use crate::config::ChannelConfig;
use crate::plan::TransmissionPlan;
use crate::protocol::contention;
use mes_types::BitString;

/// The shared file path Trojan and Spy agree on.
pub const SHARED_FILE: &str = "/tmp/mes-attacks/file.txt";

/// Compiles on-the-wire bits into a flock transmission plan.
pub fn encode(wire: &BitString, config: &ChannelConfig) -> TransmissionPlan {
    contention::encode(wire, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SlotAction;
    use mes_types::{Mechanism, Micros, Scenario};

    #[test]
    fn uses_the_paper_timeset() {
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Flock).unwrap();
        let plan = encode(&BitString::from_str01("10").unwrap(), &config);
        assert_eq!(plan.actions[0], SlotAction::Occupy(Micros::new(160)));
        assert_eq!(plan.actions[1], SlotAction::Idle(Micros::new(60)));
        assert_eq!(plan.mechanism, Mechanism::Flock);
        assert!(!SHARED_FILE.is_empty());
    }
}
