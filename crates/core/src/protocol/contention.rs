//! Shared builder for contention-based (mutual-exclusion) channels.
//!
//! Protocol 1 of the paper, independent of which lock carries it: to send a
//! `1` the Trojan enters the critical section and occupies the resource for
//! `tt1`; to send a `0` it sleeps `tt0` without touching the resource. The
//! Spy attempts the same lock each bit period and measures how long the
//! attempt blocks.

use crate::config::ChannelConfig;
use crate::plan::{SlotAction, TransmissionPlan};
use mes_types::{BitString, ChannelTiming};

/// Compiles bits into occupy/idle slot actions using the configured
/// contention timing.
pub fn encode(wire: &BitString, config: &ChannelConfig) -> TransmissionPlan {
    let (tt1, tt0) = match config.timing {
        ChannelTiming::Contention { tt1, tt0 } => (tt1, tt0),
        // `ChannelConfig::new` rejects family mismatches; treat a cooperation
        // timing defensively as its equivalent hold times.
        ChannelTiming::Cooperation { tw0, ti } => (tw0 + ti, tw0),
    };
    let actions = wire
        .iter()
        .map(|bit| {
            if bit.is_one() {
                SlotAction::Occupy(tt1)
            } else {
                SlotAction::Idle(tt0)
            }
        })
        .collect();
    TransmissionPlan::new(actions, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_types::{Mechanism, Micros, Scenario};

    #[test]
    fn ones_occupy_and_zeros_idle() {
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Flock).unwrap();
        let wire = BitString::from_str01("101").unwrap();
        let plan = encode(&wire, &config);
        assert_eq!(
            plan.actions,
            vec![
                SlotAction::Occupy(Micros::new(160)),
                SlotAction::Idle(Micros::new(60)),
                SlotAction::Occupy(Micros::new(160)),
            ]
        );
        assert!(plan.inter_bit_sync);
    }

    #[test]
    fn empty_wire_gives_empty_plan() {
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Mutex).unwrap();
        let plan = encode(&BitString::new(), &config);
        assert!(plan.is_empty());
    }
}
