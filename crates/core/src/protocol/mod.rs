//! Per-mechanism channel protocols.
//!
//! Each submodule documents and implements the paper's protocol for one
//! MESM. They all compile down to the same mechanism-independent
//! representation — a [`TransmissionPlan`] of per-slot Trojan actions — which
//! the backends then execute:
//!
//! | module | mechanism | family | paper reference |
//! |---|---|---|---|
//! | [`flock`] | Linux `flock(2)` | contention | Protocol 1, §IV.D |
//! | [`file_lock_ex`] | Windows `LockFileEx` | contention | §IV.G |
//! | [`mutex`] | Windows mutex object | contention | §IV.G |
//! | [`semaphore`] | Windows semaphore object | contention (special) | §IV.E, Tables II/III |
//! | [`event`] | Windows event object | cooperation | Protocol 2, §IV.F |
//! | [`timer`] | Windows waitable timer | cooperation | §IV.G |

pub mod contention;
pub mod cooperation;
pub mod event;
pub mod file_lock_ex;
pub mod flock;
pub mod mutex;
pub mod semaphore;
pub mod timer;

use crate::config::ChannelConfig;
use crate::plan::TransmissionPlan;
use mes_scenario::ScenarioProfile;
use mes_sim::NoiseModel;
use mes_types::{BitString, Mechanism, Micros, Nanos, Result};

/// Compiles on-the-wire bits into a [`TransmissionPlan`] for the configured
/// mechanism, including the calibrated per-slot protocol work and (for the
/// semaphore) the resource pre-provisioning.
///
/// # Errors
///
/// Returns an error if the mechanism is not available in the profile's
/// scenario or the configuration is invalid.
pub fn encode(
    wire: &BitString,
    config: &ChannelConfig,
    profile: &ScenarioProfile,
) -> Result<TransmissionPlan> {
    profile.require(config.mechanism)?;
    config.validate()?;
    let plan = match config.mechanism {
        Mechanism::Flock => flock::encode(wire, config),
        Mechanism::FileLockEx => file_lock_ex::encode(wire, config),
        Mechanism::Mutex => mutex::encode(wire, config),
        Mechanism::Semaphore => semaphore::encode(wire, config)?,
        Mechanism::Event => event::encode(wire, config),
        Mechanism::Timer => timer::encode(wire, config),
    };
    let overhead = profile.protocol_overhead(config.mechanism);
    let backend_estimate =
        estimated_backend_overhead(&profile.noise_for(config.mechanism), config.mechanism);
    Ok(plan.with_slot_work(overhead.saturating_sub(backend_estimate)))
}

/// The constraint latency the Spy is expected to observe for a `0` and a `1`
/// under this configuration, before protocol overhead. Used as the fallback
/// decision threshold when the adaptive (preamble-fitted) threshold cannot be
/// computed.
pub fn expected_latencies(config: &ChannelConfig) -> (Nanos, Nanos) {
    match config.mechanism.family() {
        mes_types::ChannelFamily::Cooperation => (
            config.timing.zero_duration().to_nanos(),
            config.timing.one_duration().to_nanos(),
        ),
        mes_types::ChannelFamily::Contention => {
            if config.mechanism == Mechanism::Semaphore {
                // Deferred-release scheme: the Spy waits ~tt0 for a 0 and
                // ~tt1 for a 1 (see `protocol::semaphore`).
                (
                    config.timing.zero_duration().to_nanos(),
                    config.timing.one_duration().to_nanos(),
                )
            } else {
                (
                    Nanos::ZERO,
                    config
                        .timing
                        .one_duration()
                        .saturating_sub(config.spy_offset)
                        .to_nanos(),
                )
            }
        }
    }
}

/// Rough estimate (in µs) of the per-slot time a backend already charges
/// through its operation costs, wake-up latencies and barrier overhead. The
/// calibrated protocol overhead from `mes-scenario` minus this estimate is
/// inserted as explicit per-slot work so the regenerated transmission rates
/// land near the paper's.
pub fn estimated_backend_overhead(noise: &NoiseModel, mechanism: Mechanism) -> Micros {
    let us = |ns: f64| ns / 1_000.0;
    let sleep_wake = us(noise.sleep_wakeup_latency_ns);
    let wait_wake = us(noise.wait_wakeup_latency_ns);
    let object_call = us(noise.costs.kernel_object_call.mean_ns);
    let wait_call = us(noise.costs.wait_call.mean_ns);
    let file_call = us(noise.costs.file_lock_call.mean_ns);
    let barrier = us(noise.costs.loop_iteration.mean_ns) + wait_wake;
    let estimate = match mechanism {
        Mechanism::Event => sleep_wake + object_call,
        Mechanism::Timer => sleep_wake + object_call + 1.0,
        Mechanism::Flock | Mechanism::FileLockEx => sleep_wake + barrier + 2.0 * file_call,
        Mechanism::Mutex => sleep_wake + barrier + wait_call + object_call,
        Mechanism::Semaphore => sleep_wake + barrier + object_call + wait_call,
    };
    Micros::new(estimate.round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_types::Scenario;

    fn wire() -> BitString {
        BitString::from_str01("10101010" /* preamble */).unwrap()
    }

    #[test]
    fn encode_rejects_unavailable_mechanisms() {
        let profile = ScenarioProfile::cross_vm();
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        assert!(encode(&wire(), &config, &profile).is_err());
    }

    #[test]
    fn encode_produces_one_action_per_bit() {
        let profile = ScenarioProfile::local();
        for mechanism in Scenario::Local.mechanisms() {
            let config = ChannelConfig::paper_defaults(Scenario::Local, mechanism).unwrap();
            let plan = encode(&wire(), &config, &profile).unwrap();
            assert_eq!(plan.len(), wire().len(), "{mechanism}");
            assert_eq!(plan.mechanism, mechanism);
        }
    }

    #[test]
    fn slot_work_is_calibrated_but_never_negative() {
        let profile = ScenarioProfile::local();
        for mechanism in Scenario::Local.mechanisms() {
            let config = ChannelConfig::paper_defaults(Scenario::Local, mechanism).unwrap();
            let plan = encode(&wire(), &config, &profile).unwrap();
            let target = profile.protocol_overhead(mechanism);
            assert!(plan.trojan_slot_work <= target, "{mechanism}");
        }
    }

    #[test]
    fn expected_latencies_are_ordered() {
        for mechanism in Scenario::Local.mechanisms() {
            let config = ChannelConfig::paper_defaults(Scenario::Local, mechanism).unwrap();
            let (zero, one) = expected_latencies(&config);
            assert!(one > zero, "{mechanism}: {zero} !< {one}");
        }
    }

    #[test]
    fn backend_overhead_estimates_are_modest() {
        let noise = ScenarioProfile::local().noise().clone();
        for mechanism in Mechanism::ALL {
            let estimate = estimated_backend_overhead(&noise, mechanism);
            assert!(estimate < Micros::new(25), "{mechanism}: {estimate}");
        }
        let quiet = NoiseModel::noiseless();
        assert_eq!(
            estimated_backend_overhead(&quiet, Mechanism::Event),
            Micros::ZERO
        );
    }
}
