//! Channel configuration.

use mes_coding::framing::alternating_preamble;
use mes_types::{BitString, ChannelTiming, Mechanism, MesError, Micros, Result, Scenario};
use serde::{Deserialize, Serialize};

/// Full configuration of one covert channel.
///
/// # Examples
///
/// ```
/// use mes_core::ChannelConfig;
/// use mes_types::{ChannelTiming, Mechanism, Micros, Scenario};
///
/// // The paper's recommended Event parameters for the local scenario.
/// let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event)?;
/// assert_eq!(config.timing, ChannelTiming::cooperation(Micros::new(15), Micros::new(65)));
///
/// // Or a custom parameterisation.
/// let custom = ChannelConfig::new(
///     Mechanism::Flock,
///     ChannelTiming::contention(Micros::new(200), Micros::new(60)),
/// )?;
/// assert!(custom.inter_bit_sync);
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// The MESM the channel is built on.
    pub mechanism: Mechanism,
    /// Timing parameters (the paper's Timeset).
    pub timing: ChannelTiming,
    /// Whether contention channels perform fine-grained inter-bit
    /// synchronization (Section V.B). Disabling it is the drift ablation.
    pub inter_bit_sync: bool,
    /// How long the Spy waits after the start of a contention bit period
    /// before attempting to acquire the resource, so the Trojan reliably gets
    /// there first when sending a `1`.
    pub spy_offset: Micros,
    /// Synchronization sequence prepended to every round (Section V.B).
    pub preamble: BitString,
    /// Number of preamble bit errors tolerated before a round is discarded.
    pub preamble_tolerance: usize,
    /// Base RNG seed for the backend.
    pub seed: u64,
}

impl ChannelConfig {
    /// Creates a configuration with the paper's defaults for everything but
    /// mechanism and timing.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::InvalidTiming`] if the timing parameters are
    /// inconsistent (see [`ChannelTiming::validate`]).
    pub fn new(mechanism: Mechanism, timing: ChannelTiming) -> Result<Self> {
        timing.validate()?;
        let family_matches = match timing {
            ChannelTiming::Cooperation { .. } => mechanism.is_cooperation_based(),
            ChannelTiming::Contention { .. } => mechanism.is_contention_based(),
        };
        if !family_matches {
            return Err(MesError::InvalidConfig {
                reason: format!(
                    "{mechanism} is a {} mechanism but the timing parameters are for the other family",
                    mechanism.family()
                ),
            });
        }
        Ok(ChannelConfig {
            mechanism,
            timing,
            inter_bit_sync: true,
            spy_offset: Micros::new(8),
            preamble: alternating_preamble(8),
            preamble_tolerance: 0,
            seed: 0xC0FFEE,
        })
    }

    /// The configuration the paper recommends for a scenario/mechanism pair
    /// (Timeset rows of Tables IV–VI).
    ///
    /// # Errors
    ///
    /// Returns [`MesError::MechanismUnavailable`] for combinations the paper
    /// does not evaluate (e.g. `Event` across VMs).
    pub fn paper_defaults(scenario: Scenario, mechanism: Mechanism) -> Result<Self> {
        let timing = mes_scenario::paper_timeset(scenario, mechanism)?;
        ChannelConfig::new(mechanism, timing)
    }

    /// Overrides the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the synchronization preamble (builder style).
    pub fn with_preamble(mut self, preamble: BitString) -> Self {
        self.preamble = preamble;
        self
    }

    /// Disables fine-grained inter-bit synchronization (ablation).
    pub fn without_inter_bit_sync(mut self) -> Self {
        self.inter_bit_sync = false;
        self
    }

    /// Validates the configuration as a whole.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::InvalidConfig`] for an empty preamble and
    /// [`MesError::InvalidTiming`] for inconsistent timing.
    pub fn validate(&self) -> Result<()> {
        self.timing.validate()?;
        if self.preamble.is_empty() {
            return Err(MesError::InvalidConfig {
                reason: "the synchronization preamble must not be empty".into(),
            });
        }
        if self.preamble.count_ones() == 0 || self.preamble.count_zeros() == 0 {
            return Err(MesError::InvalidConfig {
                reason: "the synchronization preamble must contain both 0s and 1s so the \
                         receiver can fit its threshold"
                    .into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_exist_for_all_supported_pairs() {
        for scenario in Scenario::ALL {
            for mechanism in scenario.mechanisms() {
                let config = ChannelConfig::paper_defaults(scenario, mechanism).unwrap();
                assert!(config.validate().is_ok(), "{scenario} {mechanism}");
                assert_eq!(config.mechanism, mechanism);
            }
        }
        assert!(ChannelConfig::paper_defaults(Scenario::CrossVm, Mechanism::Event).is_err());
    }

    #[test]
    fn family_mismatch_is_rejected() {
        let cooperation = ChannelTiming::cooperation(Micros::new(15), Micros::new(65));
        assert!(ChannelConfig::new(Mechanism::Flock, cooperation).is_err());
        let contention = ChannelTiming::contention(Micros::new(160), Micros::new(60));
        assert!(ChannelConfig::new(Mechanism::Event, contention).is_err());
    }

    #[test]
    fn invalid_timing_is_rejected() {
        let bad = ChannelTiming::contention(Micros::new(50), Micros::new(60));
        assert!(ChannelConfig::new(Mechanism::Flock, bad).is_err());
    }

    #[test]
    fn builder_overrides() {
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event)
            .unwrap()
            .with_seed(99)
            .without_inter_bit_sync()
            .with_preamble(BitString::from_str01("1100").unwrap());
        assert_eq!(config.seed, 99);
        assert!(!config.inter_bit_sync);
        assert_eq!(config.preamble.len(), 4);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn degenerate_preambles_fail_validation() {
        let mut config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        config.preamble = BitString::new();
        assert!(config.validate().is_err());
        config.preamble = BitString::from_str01("1111").unwrap();
        assert!(config.validate().is_err());
    }
}
