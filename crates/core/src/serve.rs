//! Multi-tenant sweep serving: concurrent experiment submissions coalesced
//! into cross-tenant shape batches on one shared worker pool.
//!
//! [`SweepServer`] is the scheduling layer behind the `sweepd serve` daemon.
//! Where [`SweepService`](crate::experiment::SweepService) executes one
//! submission at a time on a private pool, the server decomposes every
//! in-flight submission into its cache-miss rounds, queues them per tenant,
//! and has the pool consume *shape batches* assembled across tenants:
//!
//! * **Shape coalescing.** Each scheduling quantum drains a bounded number
//!   of rounds from every active tenant and stable-partitions them into
//!   shape runs (the same [`shape_run_order`] arithmetic the
//!   [`RoundExecutor`](crate::exec::RoundExecutor) uses), so concurrent
//!   same-shape requests land back-to-back on one worker's resident
//!   `Arc<Program>` pair instead of recompiling it per request.
//! * **Fair-share admission.** Tenants are drained deficit-round-robin:
//!   every quantum tops each tenant's credit up by
//!   [`ServeConfig::quantum_rounds`] (capped, so idle spells bank no
//!   credit), so a 1024-point mega-sweep and a 16-point probe both place
//!   rounds into every batch — the probe completes within a bounded number
//!   of quanta no matter how large its neighbours are.
//! * **Bounded in-flight work.** A submission may keep at most
//!   [`ServeConfig::max_tenant_rounds`] rounds admitted-but-unexecuted;
//!   larger grids are admitted in waves as the pool drains them, so queue
//!   memory stays proportional to active tenants, not to grid sizes.
//!
//! # Determinism
//!
//! Per tenant, results are **bit-identical to serial submission**: a round's
//! observation depends only on `(profile, plan, effective seed)` — never on
//! which worker runs it, when it runs, or what ran before it on the same
//! backend (see [`SimBackend::set_base_seed`]) — and each submission folds
//! its own rounds in its own grid order. Scheduling order affects only
//! *warmth*, exactly as with the single-tenant executor.
//!
//! # Supervision
//!
//! A submission can be interrupted while in flight, from either side of the
//! API: the caller raises a cancellation flag
//! ([`SweepServer::submit_streaming_cancellable`] — the serve daemon does
//! this when a tenant disconnects), or the server's own per-submission
//! deadline ([`ServeConfig::submission_deadline`]) expires. Both paths run
//! the same teardown as a shutdown-time cancellation, scoped to one tenant:
//! queued rounds are drained from its tenant queue (with the admission and
//! completion accounts adjusted, so the cap headroom they held is refunded
//! immediately), rounds already dispatched into the current shape batch are
//! skipped rather than simulated, and the submitter returns an error once
//! the batch residue has drained. Sibling tenants never observe more than
//! the freed capacity. Interruptions are counted on
//! [`ServeStats::cancelled_submissions`] and
//! [`ServeStats::deadline_expirations`].

use crate::backend::{ChannelBackend, Observation, SimBackend};
use crate::exec::{claim_end, shape_run_order, MAX_CLAIM_CHUNK};
use crate::experiment::cache::{CacheKey, ObservationCache};
use crate::experiment::{
    plan_fingerprint, profile_fingerprint, CompiledExperiment, ExperimentResult, ExperimentSpec,
    NullSink, ResultSink, DEFAULT_CACHE_CAPACITY_BYTES,
};
use mes_types::{MesError, Result};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`SweepServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads executing rounds (0 = one per available core).
    pub workers: usize,
    /// Rounds of deficit credit each active tenant earns per scheduling
    /// quantum. Smaller values interleave tenants more tightly (lower
    /// latency for small probes); larger values make longer same-tenant
    /// shape runs (warmer caches).
    pub quantum_rounds: usize,
    /// Per-tenant cap on admitted-but-unexecuted rounds; submissions larger
    /// than this are admitted in waves.
    pub max_tenant_rounds: usize,
    /// Byte budget of the shared observation cache.
    pub cache_capacity_bytes: usize,
    /// Wall-clock budget of one scheduled submission, measured from the
    /// moment it enters the scheduler; `None` disables the deadline. An
    /// expired submission is cancelled exactly like a tenant disconnect
    /// (see the [module docs](self)) and its submitter gets an error whose
    /// message names the deadline.
    pub submission_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            quantum_rounds: 16,
            max_tenant_rounds: 256,
            cache_capacity_bytes: DEFAULT_CACHE_CAPACITY_BYTES,
            submission_deadline: None,
        }
    }
}

/// A snapshot of a [`SweepServer`]'s lifetime counters — the payload of the
/// daemon's framed stats reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Submissions accepted over the server's lifetime.
    pub submissions: u64,
    /// Rounds executed by the pool (cache misses actually simulated).
    pub rounds_executed: u64,
    /// Point lookups answered by the shared observation cache.
    pub cache_hits: u64,
    /// Point lookups that missed the shared observation cache.
    pub cache_misses: u64,
    /// Observations currently resident in the cache.
    pub cached_observations: usize,
    /// Estimated bytes currently held by the cache.
    pub cached_bytes: usize,
    /// Observations evicted over the server's lifetime.
    pub evictions: u64,
    /// Shape batches assembled (scheduling quanta) so far.
    pub quanta: u64,
    /// High-water mark of admitted-but-unexecuted rounds across all tenants.
    pub peak_inflight_rounds: usize,
    /// Tenants currently registered with the scheduler.
    pub tenants_active: usize,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Submissions cancelled by their caller's cancellation flag (e.g.
    /// tenant disconnects observed by the serve daemon).
    pub cancelled_submissions: u64,
    /// Submissions cancelled because [`ServeConfig::submission_deadline`]
    /// expired.
    pub deadline_expirations: u64,
}

/// Per-submission scheduling telemetry returned by
/// [`SweepServer::submit_with_telemetry`] — the observable the fairness
/// gates assert on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeTelemetry {
    /// Value of the quantum counter when the submission entered the
    /// scheduler (the first quantum that could dispatch its rounds).
    pub admitted_quantum: u64,
    /// Value of the quantum counter of the batch that dispatched the
    /// submission's last round. `dispatched_quantum - admitted_quantum` is
    /// the number of scheduling quanta the submission waited through — the
    /// deficit-round-robin guarantee bounds it by
    /// `ceil(rounds / quantum_rounds) + 1` regardless of neighbour sizes.
    pub dispatched_quantum: u64,
    /// Rounds this submission executed (its cache misses).
    pub rounds_executed: usize,
    /// Points this submission served from the shared cache.
    pub cache_hits: usize,
}

/// One tenant submission in flight: the compiled grid plus the write-once
/// result cells its rounds land in and the completion latch the submitting
/// thread blocks on.
struct Submission {
    compiled: CompiledExperiment,
    profile_fp: u64,
    /// Per-grid-position result cell; only miss positions are ever written.
    slots: Vec<OnceLock<Result<Arc<Observation>>>>,
    /// Miss rounds not yet executed or abandoned; 0 = complete.
    remaining: AtomicUsize,
    /// Miss rounds not yet placed into a shape batch.
    undispatched: AtomicUsize,
    /// Admitted-but-unexecuted rounds (the admission-cap account).
    inflight: AtomicUsize,
    /// Set on the first round failure or on server shutdown; pending rounds
    /// of a failed submission are skipped, not simulated.
    failed: AtomicBool,
    /// Completion latch: true once every miss round is executed/abandoned.
    done: Mutex<bool>,
    done_signal: Condvar,
    admitted_quantum: AtomicU64,
    dispatched_quantum: AtomicU64,
}

/// One schedulable round: a grid position of one submission.
#[derive(Clone)]
struct RoundJob {
    submission: Arc<Submission>,
    position: usize,
}

impl RoundJob {
    fn shape(&self) -> u64 {
        self.submission.compiled.shape_fingerprints()[self.position]
    }
}

/// A tenant's queue of rounds awaiting dispatch, plus its deficit
/// round-robin credit.
struct TenantQueue {
    submission: Arc<Submission>,
    rounds: VecDeque<RoundJob>,
    /// Unspent dispatch credit, in rounds.
    deficit: usize,
    /// The submitter has admitted its final wave; the tenant retires once
    /// its queue drains.
    draining: bool,
}

/// One assembled cross-tenant shape batch: jobs stable-partitioned into
/// shape runs, claimed chunk-wise from the shared cursor exactly like an
/// executor schedule.
struct ShapeBatch {
    jobs: Vec<RoundJob>,
    /// `run_end[i]` is the exclusive end of the shape run containing batch
    /// position `i` — the boundary a chunked claim never crosses.
    run_end: Vec<usize>,
    cursor: AtomicUsize,
}

/// Scheduler state guarded by the dispatch lock.
struct DispatchState {
    tenants: Vec<TenantQueue>,
    /// The batch workers are currently claiming from, if any.
    batch: Option<Arc<ShapeBatch>>,
    /// Round-robin start index for the next quantum's deficit cycle.
    next_tenant: usize,
    shutdown: bool,
}

struct Shared {
    config: ServeConfig,
    state: Mutex<DispatchState>,
    /// Workers wait here for admitted rounds; submitters notify.
    work_ready: Condvar,
    /// Submitters wait here for admission headroom; workers notify per chunk.
    space_ready: Condvar,
    cache: Mutex<ObservationCache>,
    quanta: AtomicU64,
    submissions: AtomicU64,
    rounds_executed: AtomicU64,
    inflight_rounds: AtomicUsize,
    peak_inflight: AtomicUsize,
    cancelled_submissions: AtomicU64,
    deadline_expirations: AtomicU64,
}

/// How often a supervised submitter re-checks its cancellation flag and
/// deadline while parked on a condvar.
const SUPERVISION_POLL: Duration = Duration::from_millis(10);

/// Why a supervised submission stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Interrupt {
    /// The caller raised the cancellation flag.
    Cancelled,
    /// [`ServeConfig::submission_deadline`] elapsed.
    DeadlineExpired,
}

/// The interruption sources watching one submission: an optional caller
/// cancellation flag and an optional absolute deadline. When both are
/// `None` the submitter parks indefinitely, exactly as before supervision
/// existed.
#[derive(Clone, Copy)]
struct Supervision<'a> {
    cancel: Option<&'a AtomicBool>,
    deadline: Option<Instant>,
}

impl Supervision<'_> {
    /// Whether any interruption source is configured (and polling is
    /// therefore needed at all).
    fn active(&self) -> bool {
        self.cancel.is_some() || self.deadline.is_some()
    }

    /// The interruption that has fired, if any. Cancellation wins over an
    /// expired deadline when both have.
    fn interrupted(&self) -> Option<Interrupt> {
        if let Some(cancel) = self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Some(Interrupt::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Interrupt::DeadlineExpired);
            }
        }
        None
    }
}

/// Compile-time proof that a type may cross the server's worker threads.
fn assert_thread_safe<T: Send + Sync>() {}

/// The multi-tenant scheduler: a shared worker pool consuming cross-tenant
/// shape batches (see the [module docs](self)).
///
/// The server is `Sync`: submissions may come from any number of threads
/// concurrently through a shared reference (or an `Arc`), each blocking
/// until its own result is folded. Dropping the server shuts it down,
/// cancelling whatever is still in flight.
pub struct SweepServer {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for SweepServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepServer")
            .field("config", &self.shared.config)
            .finish_non_exhaustive()
    }
}

impl SweepServer {
    /// Starts a server: spawns the worker pool and returns immediately.
    pub fn new(config: ServeConfig) -> Self {
        // Submissions, their compiled grids and the shared scheduler state
        // all cross worker threads.
        assert_thread_safe::<Submission>();
        assert_thread_safe::<Shared>();
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            config.workers
        };
        let config = ServeConfig {
            workers,
            quantum_rounds: config.quantum_rounds.max(1),
            max_tenant_rounds: config.max_tenant_rounds.max(1),
            cache_capacity_bytes: config.cache_capacity_bytes,
            submission_deadline: config.submission_deadline,
        };
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(DispatchState {
                tenants: Vec::new(),
                batch: None,
                next_tenant: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            cache: Mutex::new(ObservationCache::new(config.cache_capacity_bytes)),
            quanta: AtomicU64::new(0),
            submissions: AtomicU64::new(0),
            rounds_executed: AtomicU64::new(0),
            inflight_rounds: AtomicUsize::new(0),
            peak_inflight: AtomicUsize::new(0),
            cancelled_submissions: AtomicU64::new(0),
            deadline_expirations: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        SweepServer {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// A server with the default configuration (machine-sized pool).
    pub fn with_default_config() -> Self {
        SweepServer::new(ServeConfig::default())
    }

    /// The resolved configuration (worker count is never 0 here).
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Submits a spec and blocks until its complete result is folded.
    ///
    /// # Errors
    ///
    /// Returns an error if the spec does not compile, a round fails to
    /// execute, or the server shuts down while the submission is in flight.
    pub fn submit(&self, spec: &ExperimentSpec) -> Result<ExperimentResult> {
        self.submit_streaming(spec, &mut NullSink)
    }

    /// Submits a spec, delivering each point's outcome to `sink` (in grid
    /// order) before the complete result is returned.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepServer::submit`].
    pub fn submit_streaming<S: ResultSink>(
        &self,
        spec: &ExperimentSpec,
        sink: &mut S,
    ) -> Result<ExperimentResult> {
        self.submit_with_telemetry(spec, sink)
            .map(|(result, _)| result)
    }

    /// [`SweepServer::submit_streaming`] under a caller-owned cancellation
    /// flag: when `cancel` becomes `true`, the submission's queued rounds
    /// are withdrawn from the scheduler (freeing their admission headroom
    /// for sibling tenants) and the call returns an error whose message
    /// contains `cancelled`. The serve daemon drives this path when a
    /// tenant disconnects mid-submission.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepServer::submit`], plus cancellation.
    pub fn submit_streaming_cancellable<S: ResultSink>(
        &self,
        spec: &ExperimentSpec,
        sink: &mut S,
        cancel: &AtomicBool,
    ) -> Result<ExperimentResult> {
        self.submit_supervised(spec, sink, Some(cancel))
            .map(|(result, _)| result)
    }

    /// Submits a spec and additionally returns its scheduling telemetry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepServer::submit`].
    pub fn submit_with_telemetry<S: ResultSink>(
        &self,
        spec: &ExperimentSpec,
        sink: &mut S,
    ) -> Result<(ExperimentResult, ServeTelemetry)> {
        self.submit_supervised(spec, sink, None)
    }

    /// The full submission path, watched by an optional cancellation flag
    /// and the configured per-submission deadline.
    fn submit_supervised<S: ResultSink>(
        &self,
        spec: &ExperimentSpec,
        sink: &mut S,
        cancel: Option<&AtomicBool>,
    ) -> Result<(ExperimentResult, ServeTelemetry)> {
        let supervision = Supervision {
            cancel,
            deadline: self
                .shared
                .config
                .submission_deadline
                .map(|limit| Instant::now() + limit),
        };
        let compiled = CompiledExperiment::compile(spec)?;
        self.shared.submissions.fetch_add(1, Ordering::Relaxed);
        let profile_fp = profile_fingerprint(compiled.profile());
        let keys: Vec<CacheKey> = compiled
            .plans()
            .iter()
            .enumerate()
            .map(|(index, plan)| {
                (
                    profile_fp,
                    plan_fingerprint(plan),
                    compiled.effective_seed(index),
                )
            })
            .collect();

        // Look the hits up front (marking them recently used): the handles
        // keep the observations alive through the fold regardless of what
        // concurrent tenants evict, and every other position becomes a
        // scheduled round.
        let hits: Vec<Option<Arc<Observation>>> = {
            let mut cache = self.shared.cache.lock().expect("cache lock");
            keys.iter().map(|key| cache.lookup(key)).collect()
        };
        let cached: Vec<bool> = hits.iter().map(Option::is_some).collect();

        // Miss positions pre-grouped into shape runs (stable partition,
        // first-appearance order), so even this tenant's own slice of a
        // cross-tenant batch is shape-coherent.
        let shapes = compiled.shape_fingerprints();
        let mut miss_positions: Vec<usize> =
            (0..keys.len()).filter(|&index| !cached[index]).collect();
        let mut shape_rank: HashMap<u64, usize> = HashMap::new();
        for &position in &miss_positions {
            let rank = shape_rank.len();
            shape_rank.entry(shapes[position]).or_insert(rank);
        }
        miss_positions.sort_by_key(|&position| shape_rank[&shapes[position]]);

        let point_count = compiled.len();
        let submission = Arc::new(Submission {
            compiled,
            profile_fp,
            slots: (0..point_count).map(|_| OnceLock::new()).collect(),
            remaining: AtomicUsize::new(miss_positions.len()),
            undispatched: AtomicUsize::new(miss_positions.len()),
            inflight: AtomicUsize::new(0),
            failed: AtomicBool::new(false),
            done: Mutex::new(miss_positions.is_empty()),
            done_signal: Condvar::new(),
            admitted_quantum: AtomicU64::new(0),
            dispatched_quantum: AtomicU64::new(0),
        });

        if miss_positions.is_empty() {
            // Served entirely from cache: the scheduler is never involved.
            let now = self.shared.quanta.load(Ordering::Relaxed);
            submission.admitted_quantum.store(now, Ordering::Relaxed);
            submission.dispatched_quantum.store(now, Ordering::Relaxed);
        } else {
            self.admit(&submission, &miss_positions, supervision)?;
            self.wait_done_supervised(&submission, supervision)?;
        }

        // Collect in request order: the earliest error wins (matching the
        // executor's `collect_in_request_order` semantics); a slot left
        // unwritten with no recorded error means the round was abandoned by
        // a shutdown.
        let mut abandoned = None;
        let mut observations: Vec<&Observation> = Vec::with_capacity(point_count);
        for (position, hit) in hits.iter().enumerate() {
            match hit {
                Some(observation) => observations.push(observation.as_ref()),
                None => match submission.slots[position].get() {
                    Some(Ok(observation)) => observations.push(observation.as_ref()),
                    Some(Err(error)) => return Err(error.clone()),
                    None => {
                        if abandoned.is_none() {
                            abandoned = Some(position);
                        }
                    }
                },
            }
        }
        if let Some(position) = abandoned {
            return Err(MesError::Simulation {
                reason: format!(
                    "round at grid position {position} abandoned: server shut down mid-submission"
                ),
            });
        }

        let result = submission.compiled.fold(&observations, &cached, sink)?;

        // Publish the fresh observations to the shared cache (after the
        // fold, so eviction can never starve it).
        {
            let mut cache = self.shared.cache.lock().expect("cache lock");
            for &position in &miss_positions {
                if let Some(Ok(observation)) = submission.slots[position].get() {
                    cache.insert(keys[position], Arc::clone(observation));
                }
            }
        }

        let telemetry = ServeTelemetry {
            admitted_quantum: submission.admitted_quantum.load(Ordering::Relaxed),
            dispatched_quantum: submission.dispatched_quantum.load(Ordering::Relaxed),
            rounds_executed: result.rounds_executed,
            cache_hits: result.cache_hits,
        };
        Ok((result, telemetry))
    }

    /// Registers the submission as a tenant and feeds its miss rounds into
    /// the scheduler, in waves of at most `max_tenant_rounds`.
    fn admit(
        &self,
        submission: &Arc<Submission>,
        miss_positions: &[usize],
        supervision: Supervision<'_>,
    ) -> Result<()> {
        let shared = &*self.shared;
        let cap = shared.config.max_tenant_rounds;
        let mut state = shared.state.lock().expect("dispatch lock");
        if state.shutdown {
            return Err(shutdown_error());
        }
        submission
            .admitted_quantum
            .store(shared.quanta.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        state.tenants.push(TenantQueue {
            submission: Arc::clone(submission),
            rounds: VecDeque::new(),
            deficit: 0,
            draining: false,
        });
        let mut admitted = 0;
        while admitted < miss_positions.len() {
            if let Some(interrupt) = supervision.interrupted() {
                abort_admission(
                    shared,
                    &mut state,
                    submission,
                    miss_positions.len() - admitted,
                );
                return Err(self.interrupt_error(interrupt));
            }
            while submission.inflight.load(Ordering::Relaxed) >= cap && !state.shutdown {
                if let Some(interrupt) = supervision.interrupted() {
                    abort_admission(
                        shared,
                        &mut state,
                        submission,
                        miss_positions.len() - admitted,
                    );
                    return Err(self.interrupt_error(interrupt));
                }
                state = if supervision.active() {
                    shared
                        .space_ready
                        .wait_timeout(state, SUPERVISION_POLL)
                        .expect("dispatch lock")
                        .0
                } else {
                    shared.space_ready.wait(state).expect("dispatch lock")
                };
            }
            if state.shutdown {
                // Cancel: queued rounds and the never-admitted tail are both
                // withdrawn from the completion account so nothing waits on
                // them; `shutdown`'s own drain then finds an empty queue.
                abort_admission(
                    shared,
                    &mut state,
                    submission,
                    miss_positions.len() - admitted,
                );
                return Err(shutdown_error());
            }
            let headroom = cap - submission.inflight.load(Ordering::Relaxed);
            let wave = headroom.min(miss_positions.len() - admitted);
            let tenant = tenant_of(&mut state, submission).expect("tenant registered above");
            for &position in &miss_positions[admitted..admitted + wave] {
                tenant.rounds.push_back(RoundJob {
                    submission: Arc::clone(submission),
                    position,
                });
            }
            submission.inflight.fetch_add(wave, Ordering::Relaxed);
            let inflight_total = shared.inflight_rounds.fetch_add(wave, Ordering::Relaxed) + wave;
            shared
                .peak_inflight
                .fetch_max(inflight_total, Ordering::Relaxed);
            admitted += wave;
            shared.work_ready.notify_all();
        }
        let tenant = tenant_of(&mut state, submission).expect("tenant registered above");
        tenant.draining = true;
        Ok(())
    }

    /// Blocks until the submission completes — or, when supervised, until
    /// its cancellation flag or deadline fires, in which case the
    /// submission is withdrawn from the scheduler and the interruption
    /// error returned.
    fn wait_done_supervised(
        &self,
        submission: &Arc<Submission>,
        supervision: Supervision<'_>,
    ) -> Result<()> {
        if !supervision.active() {
            wait_done(submission);
            return Ok(());
        }
        let interrupt = {
            let mut done = submission.done.lock().expect("completion lock");
            loop {
                if *done {
                    return Ok(());
                }
                if let Some(interrupt) = supervision.interrupted() {
                    break interrupt;
                }
                done = submission
                    .done_signal
                    .wait_timeout(done, SUPERVISION_POLL)
                    .expect("completion lock")
                    .0;
            }
        };
        // Withdraw the queued rounds, then wait for the residue already
        // dispatched into the current batch to drain as skips (workers
        // never simulate rounds of a failed submission), so no worker can
        // touch this submission after we return.
        {
            let mut state = self.shared.state.lock().expect("dispatch lock");
            abort_admission(&self.shared, &mut state, submission, 0);
        }
        wait_done(submission);
        Err(self.interrupt_error(interrupt))
    }

    /// Counts the interruption and renders its error.
    fn interrupt_error(&self, interrupt: Interrupt) -> MesError {
        match interrupt {
            Interrupt::Cancelled => {
                self.shared
                    .cancelled_submissions
                    .fetch_add(1, Ordering::Relaxed);
                MesError::Simulation {
                    reason: "submission cancelled while in flight".to_string(),
                }
            }
            Interrupt::DeadlineExpired => {
                self.shared
                    .deadline_expirations
                    .fetch_add(1, Ordering::Relaxed);
                let limit = self
                    .shared
                    .config
                    .submission_deadline
                    .unwrap_or(Duration::ZERO);
                MesError::Simulation {
                    reason: format!("submission deadline ({limit:?}) expired"),
                }
            }
        }
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServeStats {
        let (cached_observations, cached_bytes, evictions, cache_hits, cache_misses) = {
            let cache = self.shared.cache.lock().expect("cache lock");
            (
                cache.len(),
                cache.cached_bytes(),
                cache.evictions(),
                cache.hits(),
                cache.misses(),
            )
        };
        let tenants_active = self
            .shared
            .state
            .lock()
            .expect("dispatch lock")
            .tenants
            .len();
        ServeStats {
            submissions: self.shared.submissions.load(Ordering::Relaxed),
            rounds_executed: self.shared.rounds_executed.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cached_observations,
            cached_bytes,
            evictions,
            quanta: self.shared.quanta.load(Ordering::Relaxed),
            peak_inflight_rounds: self.shared.peak_inflight.load(Ordering::Relaxed),
            tenants_active,
            workers: self.shared.config.workers,
            cancelled_submissions: self.shared.cancelled_submissions.load(Ordering::Relaxed),
            deadline_expirations: self.shared.deadline_expirations.load(Ordering::Relaxed),
        }
    }

    /// Stops the worker pool and cancels whatever is still in flight:
    /// unexecuted rounds are abandoned, and blocked submitters return a
    /// shutdown error. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("dispatch lock");
            state.shutdown = true;
            for tenant in &mut state.tenants {
                // Workers skip (rather than simulate) rounds of failed
                // submissions, so cancellation drains quickly even mid-batch.
                tenant.submission.failed.store(true, Ordering::Relaxed);
            }
            self.shared.work_ready.notify_all();
            self.shared.space_ready.notify_all();
        }
        for handle in self.workers.lock().expect("worker handles").drain(..) {
            let _ = handle.join();
        }
        // Workers are gone: drain every round still queued — tenant queues
        // and the unclaimed tail of the current batch — so every blocked
        // submitter observes completion and returns the cancellation error.
        let abandoned: Vec<RoundJob> = {
            let mut state = self.shared.state.lock().expect("dispatch lock");
            let mut abandoned = Vec::new();
            for tenant in &mut state.tenants {
                abandoned.extend(tenant.rounds.drain(..));
            }
            state.tenants.clear();
            if let Some(batch) = state.batch.take() {
                let start = batch
                    .cursor
                    .swap(batch.jobs.len(), Ordering::Relaxed)
                    .min(batch.jobs.len());
                abandoned.extend(batch.jobs[start..].iter().cloned());
            }
            abandoned
        };
        for job in &abandoned {
            job.submission.failed.store(true, Ordering::Relaxed);
            job.submission.inflight.fetch_sub(1, Ordering::Relaxed);
            self.shared.inflight_rounds.fetch_sub(1, Ordering::Relaxed);
            if job.submission.remaining.fetch_sub(1, Ordering::Relaxed) == 1 {
                complete(&job.submission);
            }
        }
        self.shared.space_ready.notify_all();
    }
}

impl Drop for SweepServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn shutdown_error() -> MesError {
    MesError::Simulation {
        reason: "sweep server is shutting down".to_string(),
    }
}

/// Withdraws `submission` from the scheduler (shutdown, cancellation or
/// deadline expiry — one teardown for all three): marks it failed so
/// workers skip its dispatched residue, drains its queued rounds, retires
/// its tenant entry, and removes the drained rounds plus `unadmitted`
/// never-admitted ones from the admission and completion accounts. Callers
/// hold the dispatch lock.
fn abort_admission(
    shared: &Shared,
    state: &mut DispatchState,
    submission: &Arc<Submission>,
    unadmitted: usize,
) {
    submission.failed.store(true, Ordering::Relaxed);
    let mut drained = 0;
    if let Some(index) = state
        .tenants
        .iter()
        .position(|tenant| Arc::ptr_eq(&tenant.submission, submission))
    {
        // Remove the tenant entry outright (not just mark it draining):
        // its deficit credit dies with it, and `tenants_active` reflects
        // the withdrawal immediately rather than at the next quantum.
        drained = state.tenants[index].rounds.len();
        state.tenants.remove(index);
    }
    if drained > 0 {
        // Queued rounds held admission headroom; refund it so sibling
        // tenants blocked on the cap make progress immediately.
        submission.inflight.fetch_sub(drained, Ordering::Relaxed);
        shared.inflight_rounds.fetch_sub(drained, Ordering::Relaxed);
    }
    let abandoned = drained + unadmitted;
    if abandoned > 0 {
        submission
            .undispatched
            .fetch_sub(abandoned, Ordering::Relaxed);
        if submission.remaining.fetch_sub(abandoned, Ordering::Relaxed) == abandoned {
            complete(submission);
        }
    }
    shared.space_ready.notify_all();
}

/// The tenant entry of `submission`, if it is still registered.
fn tenant_of<'a>(
    state: &'a mut DispatchState,
    submission: &Arc<Submission>,
) -> Option<&'a mut TenantQueue> {
    state
        .tenants
        .iter_mut()
        .find(|tenant| Arc::ptr_eq(&tenant.submission, submission))
}

fn wait_done(submission: &Submission) {
    let mut done = submission.done.lock().expect("completion lock");
    while !*done {
        done = submission.done_signal.wait(done).expect("completion lock");
    }
}

fn complete(submission: &Submission) {
    let mut done = submission.done.lock().expect("completion lock");
    *done = true;
    submission.done_signal.notify_all();
}

/// Per-worker pool of warm simulation backends keyed by profile
/// fingerprint, bounded like `SimBackend`'s own program LRU so a worker
/// serving many distinct profiles stays memory-bounded.
struct BackendPool {
    backends: Vec<(u64, SimBackend, u64)>,
    tick: u64,
}

/// Warm backends a worker keeps resident (LRU beyond this).
const BACKENDS_PER_WORKER: usize = 8;

impl BackendPool {
    fn new() -> Self {
        BackendPool {
            backends: Vec::new(),
            tick: 0,
        }
    }

    /// The worker's warm backend for `profile_fp`, created on first use.
    fn backend_for(&mut self, profile_fp: u64, compiled: &CompiledExperiment) -> &mut SimBackend {
        self.tick += 1;
        let tick = self.tick;
        if let Some(index) = self
            .backends
            .iter()
            .position(|(fp, _, _)| *fp == profile_fp)
        {
            self.backends[index].2 = tick;
            return &mut self.backends[index].1;
        }
        if self.backends.len() == BACKENDS_PER_WORKER {
            let victim = self
                .backends
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(index, _)| index)
                .expect("pool is non-empty at capacity");
            self.backends.swap_remove(victim);
        }
        self.backends.push((
            profile_fp,
            SimBackend::new(Arc::clone(compiled.shared_profile()), compiled.base_seed()),
            tick,
        ));
        let last = self.backends.len() - 1;
        &mut self.backends[last].1
    }
}

fn worker_loop(shared: &Shared) {
    let mut backends = BackendPool::new();
    while let Some(batch) = next_batch(shared) {
        run_batch(shared, &batch, &mut backends);
    }
}

/// Blocks until there is a batch with unclaimed jobs (assembling the next
/// quantum if necessary) or the server shuts down.
fn next_batch(shared: &Shared) -> Option<Arc<ShapeBatch>> {
    let mut state = shared.state.lock().expect("dispatch lock");
    loop {
        if state.shutdown {
            return None;
        }
        if let Some(batch) = &state.batch {
            if batch.cursor.load(Ordering::Relaxed) < batch.jobs.len() {
                return Some(Arc::clone(batch));
            }
        }
        if let Some(batch) = assemble_batch(&mut state, shared) {
            let batch = Arc::new(batch);
            state.batch = Some(Arc::clone(&batch));
            // Siblings may be parked waiting for this quantum.
            shared.work_ready.notify_all();
            return Some(batch);
        }
        state = shared.work_ready.wait(state).expect("dispatch lock");
    }
}

/// Assembles the next scheduling quantum: drains a deficit-round-robin
/// share from every active tenant and stable-partitions the union into
/// shape runs. Returns `None` when no tenant has queued rounds.
fn assemble_batch(state: &mut DispatchState, shared: &Shared) -> Option<ShapeBatch> {
    state
        .tenants
        .retain(|tenant| !(tenant.draining && tenant.rounds.is_empty()));
    if state.tenants.is_empty() {
        return None;
    }
    let quantum_rounds = shared.config.quantum_rounds;
    let tenant_count = state.tenants.len();
    let start = state.next_tenant % tenant_count;
    let mut selected: Vec<RoundJob> = Vec::new();
    for offset in 0..tenant_count {
        let tenant = &mut state.tenants[(start + offset) % tenant_count];
        if tenant.rounds.is_empty() {
            // An active tenant between admission waves earns no credit while
            // idle: fairness bounds come from per-quantum top-ups, not from
            // banked history.
            tenant.deficit = 0;
            continue;
        }
        // Deficit round-robin: top the credit up by one quantum (capped so a
        // short queue cannot bank unbounded credit), then dispatch as many
        // queued rounds as the credit covers.
        tenant.deficit = (tenant.deficit + quantum_rounds).min(2 * quantum_rounds);
        let grant = tenant.deficit.min(tenant.rounds.len());
        for _ in 0..grant {
            selected.push(tenant.rounds.pop_front().expect("grant within queue"));
        }
        tenant.deficit -= grant;
        if tenant.rounds.is_empty() {
            tenant.deficit = 0;
        }
    }
    state.next_tenant = (start + 1) % tenant_count;
    if selected.is_empty() {
        return None;
    }
    let quantum = shared.quanta.fetch_add(1, Ordering::Relaxed) + 1;
    for job in &selected {
        if job.submission.undispatched.fetch_sub(1, Ordering::Relaxed) == 1 {
            job.submission
                .dispatched_quantum
                .store(quantum, Ordering::Relaxed);
        }
    }
    // Cross-tenant shape coalescing: the same stable partition the executor
    // schedules with, so same-shape rounds from different tenants form one
    // contiguous run claimed onto one worker's resident program pair.
    let shapes: Vec<u64> = selected.iter().map(RoundJob::shape).collect();
    let (order, run_end) = shape_run_order(&shapes);
    let jobs: Vec<RoundJob> = order
        .into_iter()
        .map(|position| selected[position].clone())
        .collect();
    Some(ShapeBatch {
        jobs,
        run_end,
        cursor: AtomicUsize::new(0),
    })
}

/// Claims and executes chunks of `batch` until its cursor is exhausted.
fn run_batch(shared: &Shared, batch: &ShapeBatch, backends: &mut BackendPool) {
    let total = batch.jobs.len();
    let workers = shared.config.workers;
    let mut start = batch.cursor.load(Ordering::Relaxed);
    // The serve scheduler's claim path: chunks are claimed from the batch
    // cursor by CAS — the same `claim_end` arithmetic the round executor
    // uses and `exec::model` exhaustively checks — and results land in
    // per-round write-once cells. Per-round work takes no lock and performs
    // no allocation beyond the observation itself; per-chunk bookkeeping
    // (admission headroom, completion latches) happens in `finish_chunk`,
    // off the per-round path.
    // lint: hot-path
    // lint: warm-path
    while start < total {
        let end = claim_end(start, batch.run_end[start], workers, MAX_CLAIM_CHUNK);
        match batch
            .cursor
            .compare_exchange_weak(start, end, Ordering::Relaxed, Ordering::Relaxed)
        {
            Err(current) => start = current,
            Ok(_) => {
                let mut executed = 0;
                for job in &batch.jobs[start..end] {
                    if execute_job(job, backends) {
                        executed += 1;
                    }
                }
                finish_chunk(shared, &batch.jobs[start..end], executed);
                start = batch.cursor.load(Ordering::Relaxed);
            }
        }
    }
    // lint: end-warm-path
    // lint: end-hot-path
}

/// Executes one claimed round into its submission's write-once slot.
/// Returns whether the round was actually simulated (failed submissions
/// skip their pending rounds).
fn execute_job(job: &RoundJob, backends: &mut BackendPool) -> bool {
    let submission = &job.submission;
    if submission.failed.load(Ordering::Relaxed) {
        // A sibling round already failed (or the server is shutting down):
        // the tenant can no longer use this result, so don't simulate it.
        // The slot stays unwritten; `finish_chunk` still counts it down.
        return false;
    }
    let compiled = &submission.compiled;
    let backend = backends.backend_for(submission.profile_fp, compiled);
    // Rebasing a warm backend between tenants is exact — a round's
    // observation depends only on (profile, plan, effective seed); see
    // `SimBackend::set_base_seed`.
    backend.set_base_seed(compiled.base_seed());
    let outcome = backend
        .transmit_round(
            &compiled.plans()[job.position],
            compiled.round_indices()[job.position],
        )
        .map(Arc::new);
    if outcome.is_err() {
        submission.failed.store(true, Ordering::Relaxed);
    }
    assert!(
        submission.slots[job.position].set(outcome).is_ok(),
        "round claimed by two workers"
    );
    true
}

/// Per-chunk bookkeeping: retires the chunk's rounds from the admission
/// accounts, completes submissions whose last round this was, and wakes
/// submitters waiting for admission headroom.
fn finish_chunk(shared: &Shared, jobs: &[RoundJob], executed: u64) {
    if executed > 0 {
        shared
            .rounds_executed
            .fetch_add(executed, Ordering::Relaxed);
    }
    shared
        .inflight_rounds
        .fetch_sub(jobs.len(), Ordering::Relaxed);
    for job in jobs {
        let submission = &job.submission;
        submission.inflight.fetch_sub(1, Ordering::Relaxed);
        if submission.remaining.fetch_sub(1, Ordering::Relaxed) == 1 {
            complete(submission);
        }
    }
    // Briefly taking the dispatch lock orders this notify after any headroom
    // check a waiting submitter made under it, so the wakeup cannot be lost.
    drop(shared.state.lock().expect("dispatch lock"));
    shared.space_ready.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::RoundExecutor;
    use crate::experiment::SweepService;
    use mes_types::{Mechanism, Scenario};

    fn spec(name: &str, mechanism: Mechanism, bits: usize, seed: u64) -> ExperimentSpec {
        ExperimentSpec::contention_grid(
            name,
            Scenario::Local,
            mechanism,
            &[140, 180, 220, 260],
            60,
            bits,
            seed,
        )
    }

    /// The serial ground truth: a fresh single-submission service.
    fn serial(spec: &ExperimentSpec) -> ExperimentResult {
        SweepService::new(RoundExecutor::sequential())
            .submit(spec)
            .unwrap()
    }

    #[test]
    fn concurrent_submissions_are_byte_identical_to_serial() {
        let specs = [
            spec("tenant-a", Mechanism::Flock, 48, 0xA),
            spec("tenant-b", Mechanism::Flock, 48, 0xB),
            spec("tenant-c", Mechanism::Mutex, 48, 0xC),
            spec("tenant-d", Mechanism::Mutex, 48, 0xD),
        ];
        let server = Arc::new(SweepServer::new(ServeConfig {
            workers: 3,
            quantum_rounds: 2,
            ..ServeConfig::default()
        }));
        let results: Vec<ExperimentResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| {
                    let server = Arc::clone(&server);
                    scope.spawn(move || server.submit(spec).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (spec, concurrent) in specs.iter().zip(&results) {
            let reference = serial(spec);
            assert_eq!(
                concurrent.to_json_string(),
                reference.to_json_string(),
                "{} diverged from serial submission",
                spec.name
            );
        }
        let stats = server.stats();
        assert_eq!(stats.submissions, 4);
        assert_eq!(stats.rounds_executed, 16);
        assert_eq!(stats.tenants_active, 0);
    }

    #[test]
    fn resubmission_is_served_from_the_shared_cache() {
        let server = SweepServer::new(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let spec = spec("cached", Mechanism::Flock, 32, 0x5EED);
        let first = server.submit(&spec).unwrap();
        assert_eq!(first.rounds_executed, 4);
        let (second, telemetry) = server.submit_with_telemetry(&spec, &mut NullSink).unwrap();
        assert_eq!(second.rounds_executed, 0);
        assert_eq!(second.cache_hits, 4);
        assert_eq!(telemetry.admitted_quantum, telemetry.dispatched_quantum);
        assert_eq!(first.series, second.series);
        assert_eq!(server.stats().rounds_executed, 4);
    }

    #[test]
    fn admission_cap_bounds_inflight_rounds() {
        let cap = 8;
        let server = SweepServer::new(ServeConfig {
            workers: 2,
            quantum_rounds: 4,
            max_tenant_rounds: cap,
            ..ServeConfig::default()
        });
        let tt1_values: Vec<u64> = (0..40).map(|i| 120 + 5 * i).collect();
        let wide = ExperimentSpec::contention_grid(
            "wide",
            Scenario::Local,
            Mechanism::Flock,
            &tt1_values,
            60,
            16,
            0xCAFE,
        );
        let result = server.submit(&wide).unwrap();
        assert_eq!(result.rounds_executed, tt1_values.len());
        assert!(
            server.stats().peak_inflight_rounds <= cap,
            "peak in-flight {} exceeded the {cap}-round cap",
            server.stats().peak_inflight_rounds
        );
        assert_eq!(result.series, serial(&wide).series);
    }

    #[test]
    fn shutdown_cancels_in_flight_submissions_and_rejects_new_ones() {
        let server = Arc::new(SweepServer::new(ServeConfig {
            workers: 1,
            quantum_rounds: 2,
            ..ServeConfig::default()
        }));
        let tt1_values: Vec<u64> = (0..64).map(|i| 120 + 2 * i).collect();
        let mega = ExperimentSpec::contention_grid(
            "mega",
            Scenario::Local,
            Mechanism::Flock,
            &tt1_values,
            60,
            256,
            0xDEAD,
        );
        let submitter = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.submit(&mega))
        };
        server.shutdown();
        // The submitter must return promptly — either it finished before the
        // shutdown landed or it observed the cancellation error.
        let outcome = submitter.join().unwrap();
        if let Err(error) = outcome {
            assert!(error.to_string().contains("shut"), "unexpected: {error}");
        }
        let after = server.submit(&spec("late", Mechanism::Mutex, 16, 1));
        assert!(after.is_err(), "submissions after shutdown must fail");
    }

    #[test]
    fn cancellation_withdraws_the_submission_without_wedging_the_server() {
        let server = SweepServer::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let cancelled = AtomicBool::new(true);
        let victim = spec("victim", Mechanism::Flock, 32, 0xF00);
        let error = server
            .submit_streaming_cancellable(&victim, &mut NullSink, &cancelled)
            .expect_err("a pre-cancelled submission must not complete");
        assert!(
            error.to_string().contains("cancelled"),
            "unexpected: {error}"
        );
        let stats = server.stats();
        assert_eq!(stats.cancelled_submissions, 1);
        assert_eq!(stats.deadline_expirations, 0);
        assert_eq!(stats.tenants_active, 0, "cancelled tenant must retire");

        // The scheduler keeps serving: the same spec completes when the
        // flag stays down, identical to serial execution.
        let live = AtomicBool::new(false);
        let result = server
            .submit_streaming_cancellable(&victim, &mut NullSink, &live)
            .unwrap();
        assert_eq!(result.series, serial(&victim).series);
    }

    #[test]
    fn expired_deadline_cancels_the_submission_in_band() {
        let server = SweepServer::new(ServeConfig {
            workers: 1,
            submission_deadline: Some(Duration::ZERO),
            ..ServeConfig::default()
        });
        let error = server
            .submit(&spec("expired", Mechanism::Flock, 32, 0xD1E))
            .expect_err("a zero deadline must expire before any round runs");
        assert!(
            error.to_string().contains("deadline"),
            "unexpected: {error}"
        );
        let stats = server.stats();
        assert_eq!(stats.deadline_expirations, 1);
        assert_eq!(stats.cancelled_submissions, 0);
        assert_eq!(stats.tenants_active, 0, "expired tenant must retire");
    }
}
