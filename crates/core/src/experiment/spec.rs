//! The typed, serializable description of one experiment.
//!
//! An [`ExperimentSpec`] names everything the paper's evaluation varies — a
//! grid over mechanism × timing × scenario × payload × seed — without
//! referencing any runtime object, so a spec can be built in code, written to
//! JSON, shipped across a process boundary and replayed bit-identically. The
//! constructors reproduce the exact grids the repository's figures and tables
//! have always used (same per-point seed derivations, same labels, same
//! execution seeding), which is what lets the legacy sweep functions become
//! thin shims over this API.

use mes_coding::PayloadSpec;
use mes_sim::noise::OpenResourceInterference;
use mes_types::{ChannelTiming, Mechanism, Scenario};

/// Extra third-party contention injected on the shared resource — the
/// serializable form of
/// [`OpenResourceInterference`], used by the open-resource ablation
/// (Section IV.G ① of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenInterferenceSpec {
    /// Probability that a third party contends during any given slot.
    pub contention_probability: f64,
    /// Mean occupancy of the third-party holder, in microseconds.
    pub occupancy_mean_us: f64,
}

impl OpenInterferenceSpec {
    /// The simulator-side noise component this spec configures.
    pub fn to_noise(self) -> OpenResourceInterference {
        OpenResourceInterference {
            contention_probability: self.contention_probability,
            occupancy_mean_us: self.occupancy_mean_us,
        }
    }
}

/// One explicitly described grid point (the `Custom` grid kind).
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Label of the series the point belongs to; points sharing a label are
    /// folded into one curve, in first-appearance order.
    pub series: String,
    /// The point's x-coordinate in the result series.
    pub x: f64,
    /// The MESM carrying the point.
    pub mechanism: Mechanism,
    /// Timing parameters of the point.
    pub timing: ChannelTiming,
    /// How the point sources its payload bits.
    pub payload: PayloadSpec,
    /// Channel seed of the point; `Random` payloads also draw from it.
    pub seed: u64,
    /// Whether contention channels run the fine-grained inter-bit barrier
    /// (disabling it is the drift ablation).
    pub inter_bit_sync: bool,
    /// Overrides the round index the point is seeded with (`None` seeds by
    /// grid position, which every grid always did). Sharded sweeps carry the
    /// original grid's indices here so a shard's rounds are bit-identical to
    /// the same rounds of the unsharded run.
    pub round_index: Option<u64>,
}

impl PointSpec {
    /// Creates a point with inter-bit synchronization enabled (the paper's
    /// default).
    pub fn new(
        series: impl Into<String>,
        x: f64,
        mechanism: Mechanism,
        timing: ChannelTiming,
        payload: PayloadSpec,
        seed: u64,
    ) -> Self {
        PointSpec {
            series: series.into(),
            x,
            mechanism,
            timing,
            payload,
            seed,
            inter_bit_sync: true,
            round_index: None,
        }
    }

    /// Disables the fine-grained inter-bit barrier (builder style).
    pub fn without_inter_bit_sync(mut self) -> Self {
        self.inter_bit_sync = false;
        self
    }

    /// Seeds the point as round `index` instead of its grid position
    /// (builder style). This is how a sharded sub-grid reproduces the exact
    /// effective seeds of the full grid it was cut from.
    pub fn at_round_index(mut self, index: u64) -> Self {
        self.round_index = Some(index);
        self
    }
}

/// The grid axes of an experiment — which (mechanism, timing, payload, seed)
/// points get measured.
#[derive(Debug, Clone, PartialEq)]
pub enum GridSpec {
    /// The Fig. 9 shape: a cooperation mechanism swept over `tw0` (points)
    /// for several `ti` values (series). Point seeds are
    /// `base_seed ^ (tw0 << 16) ^ ti`, exactly as `cooperation_sweep` always
    /// derived them.
    Cooperation {
        /// The cooperation mechanism under test.
        mechanism: Mechanism,
        /// Swept `tw0` values (µs), one point per value.
        tw0_values: Vec<u64>,
        /// `ti` values (µs), one series per value.
        ti_values: Vec<u64>,
        /// Random payload bits per point.
        payload_bits: usize,
    },
    /// The Fig. 10 shape: a contention mechanism swept over `tt1` at fixed
    /// `tt0`. Point seeds are `base_seed ^ (tt1 << 8)`.
    Contention {
        /// The contention mechanism under test.
        mechanism: Mechanism,
        /// Swept `tt1` values (µs), one point per value.
        tt1_values: Vec<u64>,
        /// Fixed `tt0` (µs).
        tt0: u64,
        /// Random payload bits per point.
        payload_bits: usize,
    },
    /// The Tables IV–VI shape: every mechanism the paper evaluates in the
    /// spec's scenario, at the paper's recommended Timeset, one row each.
    /// Payload seeds are `base_seed.wrapping_mul(31) ^ mechanism`, exactly as
    /// `measure_scenario` always derived them.
    ScenarioTable {
        /// Random payload bits per row.
        payload_bits: usize,
    },
    /// The Section VI shape: multi-bit symbol alphabets of several widths on
    /// the local Event channel, one point per width.
    SymbolWidths {
        /// Bits per symbol for each point.
        widths: Vec<u8>,
        /// Shortest symbol latency (µs).
        first_us: u64,
        /// Spacing between adjacent symbol latencies (µs).
        step_us: u64,
        /// Random payload bits per point.
        payload_bits: usize,
        /// Base channel seed; width `k` uses `channel_seed + k`.
        channel_seed: u64,
        /// Base payload seed; width `k` draws from `payload_seed + k`.
        payload_seed: u64,
    },
    /// An explicit list of points for everything the canned shapes don't
    /// cover (ablations, proof-of-concept runs, mixed-mechanism grids).
    Custom {
        /// The points, in measurement order.
        points: Vec<PointSpec>,
    },
}

/// A complete, self-contained experiment request: the unit of work a
/// [`SweepService`](crate::experiment::SweepService) accepts, and the JSON
/// document the `sweepd` harness binary reads.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name, carried into the result for provenance.
    pub name: String,
    /// Deployment scenario; determines the profile every point runs under.
    pub scenario: Scenario,
    /// Base seed of the execution backends; round `i` of the grid is seeded
    /// with `round_seed(base_seed, i)` (plus the plan's own seed).
    pub base_seed: u64,
    /// The grid axes.
    pub grid: GridSpec,
    /// x-axis label of the result series.
    pub x_label: String,
    /// Whether per-point raw latencies are captured into the result
    /// (provenance for latency plots; off by default because sweeps with
    /// thousands of bits per point would dominate the result size).
    pub capture_latencies: bool,
    /// Optional third-party contention on the shared resource (the
    /// open-resource ablation).
    pub open_interference: Option<OpenInterferenceSpec>,
}

impl ExperimentSpec {
    /// Creates a spec from explicit grid axes, with the grid kind's default
    /// x-axis label. The shape-specific constructors below are usually more
    /// convenient.
    pub fn with_grid(
        name: impl Into<String>,
        scenario: Scenario,
        base_seed: u64,
        grid: GridSpec,
    ) -> Self {
        let x_label = match &grid {
            GridSpec::Cooperation { .. } => "tw0 (us)",
            GridSpec::Contention { .. } => "tt1 (us)",
            GridSpec::ScenarioTable { .. } => "row",
            GridSpec::SymbolWidths { .. } => "bits per symbol",
            GridSpec::Custom { .. } => "x",
        };
        ExperimentSpec {
            name: name.into(),
            scenario,
            base_seed,
            grid,
            x_label: x_label.into(),
            capture_latencies: false,
            open_interference: None,
        }
    }

    /// The Fig. 9 grid: `mechanism` swept over `tw0` for several `ti`
    /// values, one series per `ti` labelled `Interval={ti}`.
    pub fn cooperation_grid(
        name: impl Into<String>,
        scenario: Scenario,
        mechanism: Mechanism,
        tw0_values: &[u64],
        ti_values: &[u64],
        payload_bits: usize,
        base_seed: u64,
    ) -> Self {
        ExperimentSpec::with_grid(
            name,
            scenario,
            base_seed,
            GridSpec::Cooperation {
                mechanism,
                tw0_values: tw0_values.to_vec(),
                ti_values: ti_values.to_vec(),
                payload_bits,
            },
        )
    }

    /// The Fig. 10 grid: `mechanism` swept over `tt1` at fixed `tt0`, as a
    /// single series labelled with the mechanism.
    pub fn contention_grid(
        name: impl Into<String>,
        scenario: Scenario,
        mechanism: Mechanism,
        tt1_values: &[u64],
        tt0: u64,
        payload_bits: usize,
        base_seed: u64,
    ) -> Self {
        ExperimentSpec::with_grid(
            name,
            scenario,
            base_seed,
            GridSpec::Contention {
                mechanism,
                tt1_values: tt1_values.to_vec(),
                tt0,
                payload_bits,
            },
        )
    }

    /// The Tables IV–VI grid: every mechanism the paper evaluates in
    /// `scenario` at the paper Timeset, one table row per mechanism.
    pub fn scenario_table(
        name: impl Into<String>,
        scenario: Scenario,
        payload_bits: usize,
        base_seed: u64,
    ) -> Self {
        ExperimentSpec::with_grid(
            name,
            scenario,
            base_seed,
            GridSpec::ScenarioTable { payload_bits },
        )
    }

    /// The Section VI grid: symbol alphabets of the given widths on the
    /// local Event channel (`first_us` + k·`step_us` latency levels).
    #[allow(clippy::too_many_arguments)]
    pub fn symbol_widths(
        name: impl Into<String>,
        widths: &[u8],
        first_us: u64,
        step_us: u64,
        payload_bits: usize,
        channel_seed: u64,
        payload_seed: u64,
        base_seed: u64,
    ) -> Self {
        ExperimentSpec::with_grid(
            name,
            Scenario::Local,
            base_seed,
            GridSpec::SymbolWidths {
                widths: widths.to_vec(),
                first_us,
                step_us,
                payload_bits,
                channel_seed,
                payload_seed,
            },
        )
    }

    /// An explicit list of points.
    pub fn custom(
        name: impl Into<String>,
        scenario: Scenario,
        points: Vec<PointSpec>,
        base_seed: u64,
    ) -> Self {
        ExperimentSpec::with_grid(name, scenario, base_seed, GridSpec::Custom { points })
    }

    /// Overrides the x-axis label (builder style).
    pub fn with_x_label(mut self, x_label: impl Into<String>) -> Self {
        self.x_label = x_label.into();
        self
    }

    /// Captures per-point raw latencies into the result (builder style).
    pub fn with_latency_capture(mut self) -> Self {
        self.capture_latencies = true;
        self
    }

    /// Adds third-party contention on the shared resource (builder style).
    pub fn with_open_interference(mut self, probability: f64, occupancy_mean_us: f64) -> Self {
        self.open_interference = Some(OpenInterferenceSpec {
            contention_probability: probability,
            occupancy_mean_us,
        });
        self
    }

    /// Number of grid points the spec will measure.
    pub fn point_count(&self) -> usize {
        match &self.grid {
            GridSpec::Cooperation {
                tw0_values,
                ti_values,
                ..
            } => tw0_values.len() * ti_values.len(),
            GridSpec::Contention { tt1_values, .. } => tt1_values.len(),
            GridSpec::ScenarioTable { .. } => self.scenario.mechanisms().len(),
            GridSpec::SymbolWidths { widths, .. } => widths.len(),
            GridSpec::Custom { points } => points.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_types::Micros;

    #[test]
    fn constructors_pick_axis_labels_and_count_points() {
        let fig9 = ExperimentSpec::cooperation_grid(
            "fig9",
            Scenario::Local,
            Mechanism::Event,
            &[15, 25],
            &[50, 70, 90],
            128,
            1,
        );
        assert_eq!(fig9.x_label, "tw0 (us)");
        assert_eq!(fig9.point_count(), 6);

        let fig10 = ExperimentSpec::contention_grid(
            "fig10",
            Scenario::Local,
            Mechanism::Flock,
            &[140, 200],
            60,
            128,
            1,
        );
        assert_eq!(fig10.x_label, "tt1 (us)");
        assert_eq!(fig10.point_count(), 2);

        let table = ExperimentSpec::scenario_table("table6", Scenario::CrossVm, 64, 1);
        assert_eq!(table.point_count(), 2);

        let symbols = ExperimentSpec::symbol_widths("fig11", &[1, 2, 3], 15, 50, 64, 2, 3, 4);
        assert_eq!(symbols.point_count(), 3);
        assert_eq!(symbols.scenario, Scenario::Local);

        let custom = ExperimentSpec::custom(
            "poc",
            Scenario::Local,
            vec![PointSpec::new(
                "event",
                0.0,
                Mechanism::Event,
                ChannelTiming::cooperation(Micros::new(15), Micros::new(65)),
                mes_coding::PayloadSpec::Figure8,
                8,
            )
            .without_inter_bit_sync()],
            8,
        )
        .with_x_label("variant")
        .with_latency_capture()
        .with_open_interference(0.05, 120.0);
        assert_eq!(custom.point_count(), 1);
        assert_eq!(custom.x_label, "variant");
        assert!(custom.capture_latencies);
        let interference = custom.open_interference.unwrap();
        assert_eq!(interference.to_noise().contention_probability, 0.05);
        if let GridSpec::Custom { points } = &custom.grid {
            assert!(!points[0].inter_bit_sync);
        } else {
            panic!("custom grid expected");
        }
    }
}
