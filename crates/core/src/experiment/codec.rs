//! JSON codec for [`ExperimentSpec`] and [`ExperimentResult`].
//!
//! This is the wire format of the experiment API: the `sweepd` harness
//! binary reads a spec document and emits a result document, and both
//! round-trip bit-identically (numbers use
//! [`mes_stats::Json`]'s exact token encoding). The layout is plain,
//! versionless JSON with a `kind` discriminant on the grid, e.g.:
//!
//! ```json
//! {
//!   "name": "fig9-small",
//!   "scenario": "local",
//!   "base_seed": 3865,
//!   "x_label": "tw0 (us)",
//!   "capture_latencies": false,
//!   "open_interference": null,
//!   "grid": {
//!     "kind": "cooperation",
//!     "mechanism": "event",
//!     "tw0_values": [15, 35],
//!     "ti_values": [50, 70],
//!     "payload_bits": 128
//!   }
//! }
//! ```

use super::result::{ExperimentResult, ExperimentRow, PointOutcome};
use super::spec::{ExperimentSpec, GridSpec, OpenInterferenceSpec, PointSpec};
use mes_coding::PayloadSpec;
use mes_stats::{Json, SweepSeries};
use mes_types::{ChannelTiming, Mechanism, MesError, Micros, Result, Scenario};

fn invalid(reason: impl Into<String>) -> MesError {
    MesError::Serialization {
        reason: reason.into(),
    }
}

fn timing_to_json(timing: &ChannelTiming) -> Json {
    match *timing {
        ChannelTiming::Cooperation { tw0, ti } => Json::object([
            ("family", Json::string("cooperation")),
            ("tw0", Json::u64(tw0.as_u64())),
            ("ti", Json::u64(ti.as_u64())),
        ]),
        ChannelTiming::Contention { tt1, tt0 } => Json::object([
            ("family", Json::string("contention")),
            ("tt1", Json::u64(tt1.as_u64())),
            ("tt0", Json::u64(tt0.as_u64())),
        ]),
    }
}

fn timing_from_json(json: &Json) -> Result<ChannelTiming> {
    match json.require("family")?.as_str()? {
        "cooperation" => Ok(ChannelTiming::cooperation(
            Micros::new(json.require("tw0")?.as_u64()?),
            Micros::new(json.require("ti")?.as_u64()?),
        )),
        "contention" => Ok(ChannelTiming::contention(
            Micros::new(json.require("tt1")?.as_u64()?),
            Micros::new(json.require("tt0")?.as_u64()?),
        )),
        other => Err(invalid(format!("unknown timing family {other:?}"))),
    }
}

fn mechanism_to_json(mechanism: Mechanism) -> Json {
    Json::string(mechanism.as_str())
}

fn mechanism_from_json(json: &Json) -> Result<Mechanism> {
    json.as_str()?.parse()
}

fn scenario_from_json(json: &Json) -> Result<Scenario> {
    json.as_str()?.parse()
}

fn payload_to_json(payload: &PayloadSpec) -> Json {
    match payload {
        PayloadSpec::Random { bits } => Json::object([
            ("kind", Json::string("random")),
            ("bits", Json::usize(*bits)),
        ]),
        PayloadSpec::Fixed { bits } => Json::object([
            ("kind", Json::string("fixed")),
            ("bits", Json::string(bits)),
        ]),
        PayloadSpec::Figure8 => Json::object([("kind", Json::string("figure8"))]),
    }
}

fn payload_from_json(json: &Json) -> Result<PayloadSpec> {
    match json.require("kind")?.as_str()? {
        "random" => Ok(PayloadSpec::Random {
            bits: json.require("bits")?.as_usize()?,
        }),
        "fixed" => Ok(PayloadSpec::Fixed {
            bits: json.require("bits")?.as_str()?.to_string(),
        }),
        "figure8" => Ok(PayloadSpec::Figure8),
        other => Err(invalid(format!("unknown payload kind {other:?}"))),
    }
}

fn u64_array(values: &[u64]) -> Json {
    Json::array(values.iter().map(|&v| Json::u64(v)).collect())
}

fn u64_vec(json: &Json) -> Result<Vec<u64>> {
    json.as_array()?.iter().map(Json::as_u64).collect()
}

fn grid_to_json(grid: &GridSpec) -> Json {
    match grid {
        GridSpec::Cooperation {
            mechanism,
            tw0_values,
            ti_values,
            payload_bits,
        } => Json::object([
            ("kind", Json::string("cooperation")),
            ("mechanism", mechanism_to_json(*mechanism)),
            ("tw0_values", u64_array(tw0_values)),
            ("ti_values", u64_array(ti_values)),
            ("payload_bits", Json::usize(*payload_bits)),
        ]),
        GridSpec::Contention {
            mechanism,
            tt1_values,
            tt0,
            payload_bits,
        } => Json::object([
            ("kind", Json::string("contention")),
            ("mechanism", mechanism_to_json(*mechanism)),
            ("tt1_values", u64_array(tt1_values)),
            ("tt0", Json::u64(*tt0)),
            ("payload_bits", Json::usize(*payload_bits)),
        ]),
        GridSpec::ScenarioTable { payload_bits } => Json::object([
            ("kind", Json::string("scenario_table")),
            ("payload_bits", Json::usize(*payload_bits)),
        ]),
        GridSpec::SymbolWidths {
            widths,
            first_us,
            step_us,
            payload_bits,
            channel_seed,
            payload_seed,
        } => Json::object([
            ("kind", Json::string("symbol_widths")),
            (
                "widths",
                Json::array(widths.iter().map(|&w| Json::u64(u64::from(w))).collect()),
            ),
            ("first_us", Json::u64(*first_us)),
            ("step_us", Json::u64(*step_us)),
            ("payload_bits", Json::usize(*payload_bits)),
            ("channel_seed", Json::u64(*channel_seed)),
            ("payload_seed", Json::u64(*payload_seed)),
        ]),
        GridSpec::Custom { points } => Json::object([
            ("kind", Json::string("custom")),
            (
                "points",
                Json::array(points.iter().map(point_spec_to_json).collect()),
            ),
        ]),
    }
}

fn grid_from_json(json: &Json) -> Result<GridSpec> {
    match json.require("kind")?.as_str()? {
        "cooperation" => Ok(GridSpec::Cooperation {
            mechanism: mechanism_from_json(json.require("mechanism")?)?,
            tw0_values: u64_vec(json.require("tw0_values")?)?,
            ti_values: u64_vec(json.require("ti_values")?)?,
            payload_bits: json.require("payload_bits")?.as_usize()?,
        }),
        "contention" => Ok(GridSpec::Contention {
            mechanism: mechanism_from_json(json.require("mechanism")?)?,
            tt1_values: u64_vec(json.require("tt1_values")?)?,
            tt0: json.require("tt0")?.as_u64()?,
            payload_bits: json.require("payload_bits")?.as_usize()?,
        }),
        "scenario_table" => Ok(GridSpec::ScenarioTable {
            payload_bits: json.require("payload_bits")?.as_usize()?,
        }),
        "symbol_widths" => Ok(GridSpec::SymbolWidths {
            widths: json
                .require("widths")?
                .as_array()?
                .iter()
                .map(|w| {
                    let value = w.as_u64()?;
                    u8::try_from(value)
                        .map_err(|_| invalid(format!("symbol width {value} exceeds 255")))
                })
                .collect::<Result<_>>()?,
            first_us: json.require("first_us")?.as_u64()?,
            step_us: json.require("step_us")?.as_u64()?,
            payload_bits: json.require("payload_bits")?.as_usize()?,
            channel_seed: json.require("channel_seed")?.as_u64()?,
            payload_seed: json.require("payload_seed")?.as_u64()?,
        }),
        "custom" => Ok(GridSpec::Custom {
            points: json
                .require("points")?
                .as_array()?
                .iter()
                .map(point_spec_from_json)
                .collect::<Result<_>>()?,
        }),
        other => Err(invalid(format!("unknown grid kind {other:?}"))),
    }
}

fn point_spec_to_json(point: &PointSpec) -> Json {
    let mut fields = vec![
        ("series", Json::string(&point.series)),
        ("x", Json::f64(point.x)),
        ("mechanism", mechanism_to_json(point.mechanism)),
        ("timing", timing_to_json(&point.timing)),
        ("payload", payload_to_json(&point.payload)),
        ("seed", Json::u64(point.seed)),
        ("inter_bit_sync", Json::Bool(point.inter_bit_sync)),
    ];
    // Emitted only when overridden, so hand-written and historical spec
    // documents keep their exact layout.
    if let Some(index) = point.round_index {
        fields.push(("round_index", Json::u64(index)));
    }
    Json::object(fields)
}

fn point_spec_from_json(json: &Json) -> Result<PointSpec> {
    Ok(PointSpec {
        series: json.require("series")?.as_str()?.to_string(),
        x: json.require("x")?.as_f64()?,
        mechanism: mechanism_from_json(json.require("mechanism")?)?,
        timing: timing_from_json(json.require("timing")?)?,
        payload: payload_from_json(json.require("payload")?)?,
        seed: json.require("seed")?.as_u64()?,
        inter_bit_sync: json.require("inter_bit_sync")?.as_bool()?,
        round_index: match json.get("round_index") {
            None | Some(Json::Null) => None,
            Some(index) => Some(index.as_u64()?),
        },
    })
}

impl ExperimentSpec {
    /// Serializes the spec as a [`Json`] document.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::string(&self.name)),
            ("scenario", Json::string(self.scenario.as_str())),
            ("base_seed", Json::u64(self.base_seed)),
            ("x_label", Json::string(&self.x_label)),
            ("capture_latencies", Json::Bool(self.capture_latencies)),
            (
                "open_interference",
                match self.open_interference {
                    None => Json::Null,
                    Some(interference) => Json::object([
                        (
                            "contention_probability",
                            Json::f64(interference.contention_probability),
                        ),
                        (
                            "occupancy_mean_us",
                            Json::f64(interference.occupancy_mean_us),
                        ),
                    ]),
                },
            ),
            ("grid", grid_to_json(&self.grid)),
        ])
    }

    /// Serializes the spec as pretty-printed JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Rebuilds a spec from [`ExperimentSpec::to_json`] output. Optional
    /// fields (`x_label`, `capture_latencies`, `open_interference`) may be
    /// omitted, so hand-written spec files stay short.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Serialization`] for missing required fields or
    /// type mismatches.
    pub fn from_json(json: &Json) -> Result<Self> {
        let mut spec = ExperimentSpec::with_grid(
            json.require("name")?.as_str()?,
            scenario_from_json(json.require("scenario")?)?,
            json.require("base_seed")?.as_u64()?,
            grid_from_json(json.require("grid")?)?,
        );
        if let Some(label) = json.get("x_label") {
            spec.x_label = label.as_str()?.to_string();
        }
        if let Some(capture) = json.get("capture_latencies") {
            spec.capture_latencies = capture.as_bool()?;
        }
        match json.get("open_interference") {
            None => {}
            Some(Json::Null) => {}
            Some(interference) => {
                spec.open_interference = Some(OpenInterferenceSpec {
                    contention_probability: interference
                        .require("contention_probability")?
                        .as_f64()?,
                    occupancy_mean_us: interference.require("occupancy_mean_us")?.as_f64()?,
                });
            }
        }
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Serialization`] for malformed JSON or an invalid
    /// spec layout.
    pub fn from_json_str(text: &str) -> Result<Self> {
        ExperimentSpec::from_json(&Json::parse(text)?)
    }
}

fn row_to_json(row: &ExperimentRow) -> Json {
    Json::object([
        ("mechanism", mechanism_to_json(row.mechanism)),
        ("timeset", Json::string(&row.timeset)),
        ("ber_percent", Json::f64(row.ber_percent)),
        ("tr_kbps", Json::f64(row.tr_kbps)),
        ("paper_ber", row.paper_ber.map_or(Json::Null, Json::f64)),
        ("paper_tr", row.paper_tr.map_or(Json::Null, Json::f64)),
    ])
}

fn row_from_json(json: &Json) -> Result<ExperimentRow> {
    let optional = |key: &str| -> Result<Option<f64>> {
        match json.require(key)? {
            Json::Null => Ok(None),
            value => Ok(Some(value.as_f64()?)),
        }
    };
    Ok(ExperimentRow {
        mechanism: mechanism_from_json(json.require("mechanism")?)?,
        timeset: json.require("timeset")?.as_str()?.to_string(),
        ber_percent: json.require("ber_percent")?.as_f64()?,
        tr_kbps: json.require("tr_kbps")?.as_f64()?,
        paper_ber: optional("paper_ber")?,
        paper_tr: optional("paper_tr")?,
    })
}

fn outcome_to_json(point: &PointOutcome) -> Json {
    Json::object([
        ("index", Json::usize(point.index)),
        ("series", Json::string(&point.series)),
        ("x", Json::f64(point.x)),
        ("mechanism", mechanism_to_json(point.mechanism)),
        ("timing", timing_to_json(&point.timing)),
        ("ber_percent", Json::f64(point.ber_percent)),
        ("rate_kbps", Json::f64(point.rate_kbps)),
        ("frame_valid", Json::Bool(point.frame_valid)),
        ("plan_hash", Json::u64(point.plan_hash)),
        ("round_seed", Json::u64(point.round_seed)),
        ("cache_hit", Json::Bool(point.cache_hit)),
        (
            "latencies_us",
            match &point.latencies_us {
                None => Json::Null,
                Some(latencies) => Json::array(latencies.iter().map(|&l| Json::f64(l)).collect()),
            },
        ),
    ])
}

fn outcome_from_json(json: &Json) -> Result<PointOutcome> {
    Ok(PointOutcome {
        index: json.require("index")?.as_usize()?,
        series: json.require("series")?.as_str()?.to_string(),
        x: json.require("x")?.as_f64()?,
        mechanism: mechanism_from_json(json.require("mechanism")?)?,
        timing: timing_from_json(json.require("timing")?)?,
        ber_percent: json.require("ber_percent")?.as_f64()?,
        rate_kbps: json.require("rate_kbps")?.as_f64()?,
        frame_valid: json.require("frame_valid")?.as_bool()?,
        plan_hash: json.require("plan_hash")?.as_u64()?,
        round_seed: json.require("round_seed")?.as_u64()?,
        cache_hit: json.require("cache_hit")?.as_bool()?,
        latencies_us: match json.require("latencies_us")? {
            Json::Null => None,
            latencies => Some(
                latencies
                    .as_array()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Result<_>>()?,
            ),
        },
    })
}

impl PointOutcome {
    /// Serializes the outcome as a [`Json`] document — the payload of the
    /// serve daemon's streamed per-point frames.
    pub fn to_json(&self) -> Json {
        outcome_to_json(self)
    }

    /// Deserializes an outcome from a [`Json`] document.
    ///
    /// # Errors
    ///
    /// Returns a serialization error on a missing field or a type mismatch.
    pub fn from_json(json: &Json) -> Result<Self> {
        outcome_from_json(json)
    }

    /// Deserializes an outcome from JSON text.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PointOutcome::from_json`], plus parse errors.
    pub fn from_json_str(text: &str) -> Result<Self> {
        Self::from_json(&Json::parse(text)?)
    }
}

impl ExperimentResult {
    /// Serializes the result as a [`Json`] document.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::string(&self.name)),
            ("scenario", Json::string(self.scenario.as_str())),
            ("rounds_executed", Json::usize(self.rounds_executed)),
            ("cache_hits", Json::usize(self.cache_hits)),
            ("series", self.series.to_json()),
            (
                "rows",
                Json::array(self.rows.iter().map(row_to_json).collect()),
            ),
            (
                "points",
                Json::array(self.points.iter().map(outcome_to_json).collect()),
            ),
        ])
    }

    /// Serializes the result as pretty-printed JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Rebuilds a result from [`ExperimentResult::to_json`] output,
    /// bit-identically (numbers round-trip exactly).
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Serialization`] for missing fields or type
    /// mismatches.
    pub fn from_json(json: &Json) -> Result<Self> {
        Ok(ExperimentResult {
            name: json.require("name")?.as_str()?.to_string(),
            scenario: scenario_from_json(json.require("scenario")?)?,
            rounds_executed: json.require("rounds_executed")?.as_usize()?,
            cache_hits: json.require("cache_hits")?.as_usize()?,
            series: SweepSeries::from_json(json.require("series")?)?,
            rows: json
                .require("rows")?
                .as_array()?
                .iter()
                .map(row_from_json)
                .collect::<Result<_>>()?,
            points: json
                .require("points")?
                .as_array()?
                .iter()
                .map(outcome_from_json)
                .collect::<Result<_>>()?,
        })
    }

    /// Parses a result from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Serialization`] for malformed JSON or an invalid
    /// result layout.
    pub fn from_json_str(text: &str) -> Result<Self> {
        ExperimentResult::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::super::SweepService;
    use super::*;
    use crate::exec::RoundExecutor;

    fn specs() -> Vec<ExperimentSpec> {
        vec![
            ExperimentSpec::cooperation_grid(
                "fig9",
                Scenario::Local,
                Mechanism::Event,
                &[15, 35],
                &[50, 70],
                64,
                0xF19,
            ),
            ExperimentSpec::contention_grid(
                "fig10",
                Scenario::Local,
                Mechanism::Flock,
                &[140, 200],
                60,
                64,
                0xF10,
            ),
            ExperimentSpec::scenario_table("table5", Scenario::CrossSandbox, 48, 7),
            ExperimentSpec::symbol_widths("fig11", &[1, 2, 3], 15, 50, 64, 0xF11, 42, 0x5EED),
            ExperimentSpec::custom(
                "ablation",
                Scenario::Local,
                vec![
                    PointSpec::new(
                        "closed",
                        0.0,
                        Mechanism::Flock,
                        ChannelTiming::contention(Micros::new(160), Micros::new(60)),
                        PayloadSpec::Random { bits: 32 },
                        0xAB1,
                    ),
                    PointSpec::new(
                        "poc",
                        1.0,
                        Mechanism::Event,
                        ChannelTiming::cooperation(Micros::new(15), Micros::new(65)),
                        PayloadSpec::Figure8,
                        8,
                    )
                    .without_inter_bit_sync(),
                ],
                0xAB0,
            )
            .with_x_label("variant")
            .with_latency_capture()
            .with_open_interference(0.05, 120.0),
        ]
    }

    #[test]
    fn every_spec_kind_round_trips_through_json() {
        for spec in specs() {
            let text = spec.to_json_string();
            let back = ExperimentSpec::from_json_str(&text).unwrap_or_else(|error| {
                panic!("{}: {error}\n{text}", spec.name);
            });
            assert_eq!(back, spec, "{}", spec.name);
        }
    }

    #[test]
    fn results_round_trip_bit_identically() {
        let mut service = SweepService::new(RoundExecutor::sequential());
        for spec in [
            ExperimentSpec::contention_grid(
                "fig10",
                Scenario::Local,
                Mechanism::Flock,
                &[140, 200],
                60,
                48,
                0xF10,
            ),
            ExperimentSpec::scenario_table("table6", Scenario::CrossVm, 32, 5)
                .with_latency_capture(),
        ] {
            let result = service.submit(&spec).unwrap();
            let text = result.to_json_string();
            let back = ExperimentResult::from_json_str(&text).unwrap();
            assert_eq!(back, result, "{}", spec.name);
        }
    }

    #[test]
    fn minimal_hand_written_specs_parse_with_defaults() {
        let text = r#"{
            "name": "mini",
            "scenario": "local",
            "base_seed": 7,
            "grid": {"kind": "scenario_table", "payload_bits": 64}
        }"#;
        let spec = ExperimentSpec::from_json_str(text).unwrap();
        assert_eq!(spec.x_label, "row");
        assert!(!spec.capture_latencies);
        assert!(spec.open_interference.is_none());
        assert_eq!(spec.point_count(), 6);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "{}",
            r#"{"name":"x","scenario":"moon","base_seed":1,"grid":{"kind":"scenario_table","payload_bits":8}}"#,
            r#"{"name":"x","scenario":"local","base_seed":1,"grid":{"kind":"warp","payload_bits":8}}"#,
            r#"{"name":"x","scenario":"local","base_seed":1,"grid":{"kind":"custom","points":[{"series":"s"}]}}"#,
            "not json",
        ] {
            assert!(ExperimentSpec::from_json_str(bad).is_err(), "{bad}");
        }
        assert!(ExperimentResult::from_json_str("{}").is_err());
    }
}
