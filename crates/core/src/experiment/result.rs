//! The typed response of a sweep: series, table rows and per-point
//! provenance.

use mes_stats::SweepSeries;
use mes_types::{ChannelTiming, Mechanism, Scenario};

/// What one grid point measured, plus where it came from.
///
/// The provenance fields (`plan_hash`, `round_seed`, `cache_hit`) identify
/// the exact execution that produced the numbers: two outcomes with equal
/// `(profile, plan_hash, round_seed)` are guaranteed to carry identical
/// measurements, which is the invariant the
/// [`SweepService`](crate::experiment::SweepService) cache exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome {
    /// Index of the point in grid order.
    pub index: usize,
    /// Label of the series the point belongs to.
    pub series: String,
    /// The point's x-coordinate.
    pub x: f64,
    /// The MESM that carried the point.
    pub mechanism: Mechanism,
    /// Timing parameters of the point.
    pub timing: ChannelTiming,
    /// Measured bit error rate, in percent.
    pub ber_percent: f64,
    /// Measured transmission rate, in kb/s.
    pub rate_kbps: f64,
    /// Whether the synchronization sequence validated (always `true` for
    /// symbol points, which carry no frame).
    pub frame_valid: bool,
    /// Fingerprint of the executed [`TransmissionPlan`]
    /// (see [`crate::experiment::plan_fingerprint`]).
    ///
    /// [`TransmissionPlan`]: crate::plan::TransmissionPlan
    pub plan_hash: u64,
    /// The effective backend seed of the round
    /// (`round_seed(base_seed, index) + plan.seed`).
    pub round_seed: u64,
    /// Whether the observation came from the service cache instead of a
    /// fresh execution.
    pub cache_hit: bool,
    /// Raw constraint latencies in microseconds, when the spec asked for
    /// them ([`ExperimentSpec::capture_latencies`]).
    ///
    /// [`ExperimentSpec::capture_latencies`]: crate::experiment::ExperimentSpec::capture_latencies
    pub latencies_us: Option<Vec<f64>>,
}

/// One measured row of a scenario table (Tables IV–VI), with the paper's
/// published numbers next to the measured ones.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRow {
    /// Mechanism of the row.
    pub mechanism: Mechanism,
    /// Timeset string as the paper prints it.
    pub timeset: String,
    /// Measured BER in percent.
    pub ber_percent: f64,
    /// Measured TR in kb/s.
    pub tr_kbps: f64,
    /// BER the paper reports, if any.
    pub paper_ber: Option<f64>,
    /// TR the paper reports, if any.
    pub paper_tr: Option<f64>,
}

/// The complete response to one [`ExperimentSpec`] submission.
///
/// [`ExperimentSpec`]: crate::experiment::ExperimentSpec
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Name of the spec that produced the result.
    pub name: String,
    /// Scenario the experiment ran in.
    pub scenario: Scenario,
    /// The measured curves, one labelled series per grid series — exactly
    /// the [`SweepSeries`] the legacy sweep functions returned.
    pub series: SweepSeries,
    /// Scenario-table rows (populated by the `ScenarioTable` grid kind,
    /// empty otherwise).
    pub rows: Vec<ExperimentRow>,
    /// Per-point measurements and provenance, in grid order.
    pub points: Vec<PointOutcome>,
    /// Rounds actually executed for this submission (cache misses).
    pub rounds_executed: usize,
    /// Points served from the service cache.
    pub cache_hits: usize,
}

impl ExperimentResult {
    /// Consumes the result, returning just the sweep series — what the
    /// legacy sweep functions used to return.
    pub fn into_series(self) -> SweepSeries {
        self.series
    }
}

/// Receives per-point outcomes as a sweep progresses — the streaming side of
/// [`SweepService::submit_streaming`].
///
/// Implemented for closures and for [`std::sync::mpsc::Sender`], so both
/// callback-style and channel-style consumers plug in directly:
///
/// ```
/// use mes_core::experiment::{ExperimentSpec, PointOutcome, SweepService};
/// use mes_types::{Mechanism, Scenario};
///
/// let spec = ExperimentSpec::contention_grid(
///     "stream", Scenario::Local, Mechanism::Flock, &[140, 200], 60, 32, 5,
/// );
/// let mut service = SweepService::with_default_pool();
/// let mut seen = Vec::new();
/// let result = service
///     .submit_streaming(&spec, &mut |point: &PointOutcome| seen.push(point.x))?;
/// assert_eq!(seen, vec![140.0, 200.0]);
/// assert_eq!(result.points.len(), 2);
/// # Ok::<(), mes_types::MesError>(())
/// ```
///
/// [`SweepService::submit_streaming`]: crate::experiment::SweepService::submit_streaming
pub trait ResultSink {
    /// Called once per grid point, in grid order, as soon as the point's
    /// measurement is available.
    fn on_point(&mut self, outcome: &PointOutcome);
}

impl<F: FnMut(&PointOutcome)> ResultSink for F {
    fn on_point(&mut self, outcome: &PointOutcome) {
        self(outcome);
    }
}

impl ResultSink for std::sync::mpsc::Sender<PointOutcome> {
    fn on_point(&mut self, outcome: &PointOutcome) {
        // A disconnected receiver just stops listening; the sweep itself
        // still completes and returns the full result.
        let _ = self.send(outcome.clone());
    }
}

/// A sink that discards every outcome (used by the non-streaming submit).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ResultSink for NullSink {
    fn on_point(&mut self, _outcome: &PointOutcome) {}
}
