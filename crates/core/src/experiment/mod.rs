//! The unified experiment API: `ExperimentSpec` → [`SweepService`] →
//! `ExperimentResult`.
//!
//! Every evaluation artefact of the paper — the Fig. 9/10 sweeps, the
//! Tables IV–VI scenario tables, the Section VI symbol-width comparison, the
//! ablations — is one shape: a grid of (mechanism, timing, scenario,
//! payload, seed) points measured into BER/throughput series. This module
//! makes that shape a first-class, serializable request/response surface:
//!
//! * [`ExperimentSpec`] (in [`spec`]) describes a grid without referencing
//!   any runtime object; constructors reproduce the repository's historical
//!   grids exactly, and the JSON codec (in [`codec`]) round-trips a spec
//!   through text so it can cross a process boundary (the `sweepd` harness
//!   binary, and the future async/sharded sweep service).
//! * [`SweepService`] owns a [`RoundExecutor`] pool plus a
//!   `(profile, plan, seed)` → [`Observation`] cache; submitting a spec
//!   compiles it (see [`compile`]), executes only the rounds the cache has
//!   not seen, and folds everything into an [`ExperimentResult`] — all at
//!   once, or streamed point-by-point through a [`ResultSink`].
//! * [`ExperimentResult`] (in [`result`]) carries the measured series, the
//!   scenario-table rows and per-point provenance (plan hash, effective
//!   seed, cache hit), and round-trips through JSON bit-identically.
//!
//! # Examples
//!
//! Run the Fig. 10 contention sweep through the service, then resubmit it
//! and observe that the cache answers without executing a single round:
//!
//! ```
//! use mes_core::experiment::{ExperimentSpec, SweepService};
//! use mes_types::{Mechanism, Scenario};
//!
//! let spec = ExperimentSpec::contention_grid(
//!     "fig10-demo", Scenario::Local, Mechanism::Flock, &[140, 200, 260], 60, 64, 0xF10,
//! );
//! let mut service = SweepService::with_default_pool();
//! let first = service.submit(&spec)?;
//! assert_eq!(first.rounds_executed, 3);
//!
//! let second = service.submit(&spec)?;
//! assert_eq!(second.rounds_executed, 0);
//! assert_eq!(second.cache_hits, 3);
//! assert_eq!(first.series, second.series);
//! # Ok::<(), mes_types::MesError>(())
//! ```

pub(crate) mod cache;
mod codec;
mod compile;
mod result;
mod shard;
mod spec;

pub use compile::{plan_fingerprint, profile_fingerprint, CompiledExperiment};
pub use result::{ExperimentResult, ExperimentRow, NullSink, PointOutcome, ResultSink};
pub use shard::{ExperimentShard, ShardedExperiment};
pub use spec::{ExperimentSpec, GridSpec, OpenInterferenceSpec, PointSpec};

use crate::backend::{Observation, SimBackend};
use crate::exec::{RoundExecutor, RoundRequest};
use cache::{CacheKey, ObservationCache};
use mes_types::Result;
use std::collections::HashMap;
use std::sync::Arc;

/// Default byte budget of the observation cache (64 MiB — roughly a million
/// cached 64-bit rounds). Long-lived services override it with
/// [`SweepService::with_cache_capacity`].
pub const DEFAULT_CACHE_CAPACITY_BYTES: usize = 64 << 20;

/// Executes [`ExperimentSpec`]s on a pooled [`RoundExecutor`] with a
/// bounded observation cache across submissions.
///
/// The service is the single entry point every harness binary and the
/// `sweepd` process boundary go through; the legacy sweep functions are thin
/// shims over it. Identical grid points — across resubmissions or between
/// overlapping specs — are measured once and served from the cache
/// afterwards, which [`ExperimentResult::rounds_executed`] and
/// [`ExperimentResult::cache_hits`] make observable.
///
/// The cache is capped by estimated observation bytes
/// ([`DEFAULT_CACHE_CAPACITY_BYTES`] unless overridden with
/// [`SweepService::with_cache_capacity`]) and evicts least-recently-used
/// entries at insertion time, so a long-lived service stays bounded no
/// matter how many grids flow through it. Eviction never affects
/// correctness: the submission in flight always folds from complete data,
/// and an evicted point simply re-executes on its next appearance.
#[derive(Debug)]
pub struct SweepService {
    executor: RoundExecutor,
    cache: ObservationCache,
    rounds_executed: u64,
    cache_hits: u64,
}

impl SweepService {
    /// Creates a service over an executor pool.
    pub fn new(executor: RoundExecutor) -> Self {
        SweepService {
            executor,
            cache: ObservationCache::new(DEFAULT_CACHE_CAPACITY_BYTES),
            rounds_executed: 0,
            cache_hits: 0,
        }
    }

    /// A service over a machine-sized executor pool.
    pub fn with_default_pool() -> Self {
        SweepService::new(RoundExecutor::available_parallelism())
    }

    /// Caps the observation cache at `bytes` (builder style). A cap of 0
    /// disables caching entirely — every submission re-executes.
    pub fn with_cache_capacity(mut self, bytes: usize) -> Self {
        self.cache.set_capacity(bytes);
        self
    }

    /// The executor pool backing the service.
    pub fn executor(&self) -> &RoundExecutor {
        &self.executor
    }

    /// Total rounds executed over the service's lifetime (cache misses).
    pub fn rounds_executed(&self) -> u64 {
        self.rounds_executed
    }

    /// Total points served from the cache over the service's lifetime.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Number of observations currently cached.
    pub fn cached_observations(&self) -> usize {
        self.cache.len()
    }

    /// The cache's byte budget.
    pub fn cache_capacity_bytes(&self) -> usize {
        self.cache.capacity_bytes()
    }

    /// Estimated bytes currently held by the cache (always ≤ the capacity).
    pub fn cached_bytes(&self) -> usize {
        self.cache.cached_bytes()
    }

    /// Observations evicted over the service's lifetime.
    pub fn evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Drops every cached observation.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Submits a spec and returns the complete result.
    ///
    /// # Errors
    ///
    /// Returns an error if the spec does not compile (invalid timing,
    /// mechanism unavailable in the scenario, bad payload literal) or a
    /// round fails to execute.
    pub fn submit(&mut self, spec: &ExperimentSpec) -> Result<ExperimentResult> {
        self.submit_streaming(spec, &mut NullSink)
    }

    /// Submits a spec, delivering each point's outcome to `sink` (in grid
    /// order) before the complete result is returned — the streaming entry
    /// point for long sweeps whose consumers render incrementally.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepService::submit`].
    pub fn submit_streaming<S: ResultSink>(
        &mut self,
        spec: &ExperimentSpec,
        sink: &mut S,
    ) -> Result<ExperimentResult> {
        let compiled = CompiledExperiment::compile(spec)?;
        self.run_compiled(&compiled, sink)
    }

    /// Runs an already compiled experiment through the pool and cache. This
    /// is the shared engine behind [`SweepService::submit`] and the legacy
    /// shims that compile against caller-customized profiles.
    ///
    /// # Errors
    ///
    /// Returns an error if a round fails to execute or decode.
    pub fn run_compiled<S: ResultSink>(
        &mut self,
        compiled: &CompiledExperiment,
        sink: &mut S,
    ) -> Result<ExperimentResult> {
        let profile_fp = profile_fingerprint(compiled.profile());
        let keys: Vec<CacheKey> = compiled
            .plans()
            .iter()
            .enumerate()
            .map(|(index, plan)| {
                (
                    profile_fp,
                    plan_fingerprint(plan),
                    compiled.effective_seed(index),
                )
            })
            .collect();

        // Look the hits up (and mark them freshly used) before anything else
        // so a grid bigger than the cache evicts strangers before its own
        // points; the returned handles keep the observations alive for the
        // fold even if eviction races ahead of it.
        let hits: Vec<Option<Arc<Observation>>> =
            keys.iter().map(|key| self.cache.lookup(key)).collect();
        let cached: Vec<bool> = hits.iter().map(Option::is_some).collect();
        // Submit the misses pre-grouped into shape runs (stable partition,
        // first-appearance order): the executor's shape-grouped schedule
        // becomes the identity, and even a legacy `Interleaved` pool then
        // claims shape-coherent spans instead of thrashing its program
        // caches. Each request carries the experiment's precomputed
        // fingerprint, so no plan is re-walked here or in the executor.
        let shapes = compiled.shape_fingerprints();
        let round_indices = compiled.round_indices();
        // Each miss pairs its grid position with its round request: requests
        // carry *round indices* (which sharded sub-grids override away from
        // positions), so positions must be tracked alongside, never derived
        // back from the request.
        let mut misses: Vec<(usize, RoundRequest<'_>)> = compiled
            .plans()
            .iter()
            .enumerate()
            .filter(|(index, _)| !cached[*index])
            .map(|(index, plan)| {
                (
                    index,
                    RoundRequest::new(plan, round_indices[index])
                        .with_shape_fingerprint(shapes[index]),
                )
            })
            .collect();
        let mut shape_rank: HashMap<u64, usize> = HashMap::new();
        for (position, _) in &misses {
            let rank = shape_rank.len();
            shape_rank.entry(shapes[*position]).or_insert(rank);
        }
        misses.sort_by_cached_key(|(position, _)| shape_rank[&shapes[*position]]);
        let requests: Vec<RoundRequest<'_>> = misses.iter().map(|(_, request)| *request).collect();

        // Only the rounds the cache has not seen run; they keep their
        // original round indices, so their observations are bit-identical to
        // a full uncached execution of the same grid. Workers share the
        // compiled experiment's profile allocation.
        let profile = Arc::clone(compiled.shared_profile());
        let base_seed = compiled.base_seed();
        let fresh = self.executor.execute_rounds(&requests, || {
            SimBackend::new(Arc::clone(&profile), base_seed)
        })?;
        let mut fresh_by_index: Vec<Option<Observation>> = (0..keys.len()).map(|_| None).collect();
        for ((position, _), observation) in misses.iter().zip(fresh) {
            fresh_by_index[*position] = Some(observation);
        }

        // Fold from the freshly executed rounds plus borrowed cache handles
        // — warm submissions never copy the per-bit latency vectors, and the
        // fold always sees complete data even when the grid itself is larger
        // than the cache's byte budget (insertion, and therefore eviction,
        // happens only after the fold).
        let observations: Vec<&Observation> = fresh_by_index
            .iter()
            .zip(&hits)
            .map(|(fresh, hit)| match fresh {
                Some(observation) => observation,
                None => hit
                    .as_deref()
                    .expect("every position is a cache hit or an executed miss"),
            })
            .collect();
        let result = compiled.fold(&observations, &cached, sink)?;
        for (index, observation) in fresh_by_index.into_iter().enumerate() {
            if let Some(observation) = observation {
                self.cache.insert(keys[index], Arc::new(observation));
            }
        }
        self.rounds_executed += result.rounds_executed as u64;
        self.cache_hits += result.cache_hits as u64;
        Ok(result)
    }
}

impl Default for SweepService {
    fn default() -> Self {
        SweepService::with_default_pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_coding::PayloadSpec;
    use mes_types::{ChannelTiming, Mechanism, Micros, Scenario};

    #[test]
    fn service_reproduces_executor_and_backend_runs() {
        let spec = ExperimentSpec::cooperation_grid(
            "fig9-small",
            Scenario::Local,
            Mechanism::Event,
            &[15, 35],
            &[50, 70],
            64,
            13,
        );
        let compiled = CompiledExperiment::compile(&spec).unwrap();
        let mut backend = SimBackend::new(compiled.profile().clone(), 13);
        let on_backend = compiled.run_on_backend(&mut backend).unwrap();
        let with_executor = compiled.run_with_executor(&RoundExecutor::new(4)).unwrap();
        let mut service = SweepService::new(RoundExecutor::new(3));
        let through_service = service.submit(&spec).unwrap();

        assert_eq!(on_backend.series, with_executor.series);
        assert_eq!(on_backend.series, through_service.series);
        assert_eq!(on_backend.points.len(), 4);
        assert_eq!(through_service.rounds_executed, 4);
        assert_eq!(through_service.cache_hits, 0);
    }

    #[test]
    fn resubmission_is_served_entirely_from_cache() {
        let spec = ExperimentSpec::contention_grid(
            "fig10-small",
            Scenario::Local,
            Mechanism::Flock,
            &[140, 200],
            60,
            48,
            8,
        );
        let mut service = SweepService::new(RoundExecutor::sequential());
        let first = service.submit(&spec).unwrap();
        assert_eq!(service.rounds_executed(), 2);
        assert_eq!(service.cached_observations(), 2);

        let second = service.submit(&spec).unwrap();
        assert_eq!(service.rounds_executed(), 2, "no new rounds may run");
        assert_eq!(service.cache_hits(), 2);
        assert_eq!(second.rounds_executed, 0);
        assert!(second.points.iter().all(|p| p.cache_hit));
        assert!(first.points.iter().all(|p| !p.cache_hit));
        assert_eq!(first.series, second.series);

        service.clear_cache();
        assert_eq!(service.cached_observations(), 0);
        let third = service.submit(&spec).unwrap();
        assert_eq!(third.rounds_executed, 2);
        assert_eq!(third.series, first.series);
    }

    #[test]
    fn overlapping_specs_share_cached_points() {
        let small = ExperimentSpec::contention_grid(
            "small",
            Scenario::Local,
            Mechanism::Flock,
            &[140, 200],
            60,
            32,
            9,
        );
        let large = ExperimentSpec::contention_grid(
            "large",
            Scenario::Local,
            Mechanism::Flock,
            &[140, 200, 260],
            60,
            32,
            9,
        );
        let mut service = SweepService::new(RoundExecutor::sequential());
        service.submit(&small).unwrap();
        let result = service.submit(&large).unwrap();
        // The first two points coincide (same plan, same index, same seed),
        // so only the third executes.
        assert_eq!(result.rounds_executed, 1);
        assert_eq!(result.cache_hits, 2);

        // The widened grid is still bit-identical to an uncached run.
        let uncached = SweepService::new(RoundExecutor::sequential())
            .submit(&large)
            .unwrap();
        assert_eq!(result.series, uncached.series);
    }

    #[test]
    fn mega_grid_stays_under_the_byte_cap_and_evicted_points_re_execute() {
        // A grid far larger than the byte budget: the submission must stay
        // correct, the cache must stay bounded, and resubmitting must
        // re-execute the evicted points while reproducing identical results.
        let tt1_values: Vec<u64> = (0..24).map(|i| 120 + 10 * i).collect();
        let spec = ExperimentSpec::contention_grid(
            "mega",
            Scenario::Local,
            Mechanism::Flock,
            &tt1_values,
            60,
            64,
            0xCA9,
        );
        let capacity = 2_048;
        let mut service =
            SweepService::new(RoundExecutor::sequential()).with_cache_capacity(capacity);
        assert_eq!(service.cache_capacity_bytes(), capacity);

        let capped = service.submit(&spec).unwrap();
        assert_eq!(capped.rounds_executed, tt1_values.len());
        assert!(
            service.cached_bytes() <= capacity,
            "cache holds {} bytes over the {capacity}-byte cap",
            service.cached_bytes()
        );
        assert!(service.evictions() > 0, "the grid must overflow the cap");
        assert!(service.cached_observations() < tt1_values.len());

        // Bounded cache, identical measurements.
        let unbounded = SweepService::new(RoundExecutor::sequential())
            .submit(&spec)
            .unwrap();
        assert_eq!(capped.series, unbounded.series);

        // Resubmission: evicted points re-execute (correct, just uncached).
        let again = service.submit(&spec).unwrap();
        assert!(again.rounds_executed > 0, "evicted points must re-execute");
        assert_eq!(again.series, capped.series);
        assert!(service.cached_bytes() <= capacity);

        // A zero cap disables caching entirely.
        let mut uncached_service =
            SweepService::new(RoundExecutor::sequential()).with_cache_capacity(0);
        uncached_service.submit(&spec).unwrap();
        assert_eq!(uncached_service.cached_observations(), 0);
        let rerun = uncached_service.submit(&spec).unwrap();
        assert_eq!(rerun.rounds_executed, tt1_values.len());
        assert_eq!(rerun.series, capped.series);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries_over_recently_touched_ones() {
        let small = ExperimentSpec::contention_grid(
            "small",
            Scenario::Local,
            Mechanism::Flock,
            &[140, 200],
            60,
            32,
            7,
        );
        let mut service = SweepService::new(RoundExecutor::sequential());
        service.submit(&small).unwrap();
        let bytes_for_two = service.cached_bytes();

        // Shrink the budget to exactly the current contents: nothing evicts.
        let mut service = service.with_cache_capacity(bytes_for_two);
        assert_eq!(service.evictions(), 0);

        // Re-touch the existing points, then submit one new point: the new
        // insertion must evict the least-recently-used entry, not crash the
        // resident ones, and the running totals must stay consistent.
        let hit = service.submit(&small).unwrap();
        assert_eq!(hit.cache_hits, 2);
        let wider = ExperimentSpec::contention_grid(
            "wider",
            Scenario::Local,
            Mechanism::Flock,
            &[140, 200, 260],
            60,
            32,
            7,
        );
        let widened = service.submit(&wider).unwrap();
        assert_eq!(widened.rounds_executed, 1);
        assert_eq!(widened.cache_hits, 2);
        assert!(service.evictions() > 0);
        assert!(service.cached_bytes() <= service.cache_capacity_bytes());
    }

    #[test]
    fn streaming_sink_sees_every_point_in_grid_order() {
        let spec = ExperimentSpec::scenario_table("table4", Scenario::Local, 48, 3);
        let mut service = SweepService::with_default_pool();
        let (sender, receiver) = std::sync::mpsc::channel();
        let mut sink = sender;
        let result = service.submit_streaming(&spec, &mut sink).unwrap();
        drop(sink);
        let streamed: Vec<PointOutcome> = receiver.iter().collect();
        assert_eq!(streamed, result.points);
        assert_eq!(streamed.len(), 6);
        assert_eq!(result.rows.len(), 6);
        assert!(result.rows.iter().all(|row| row.paper_tr.is_some()));
    }

    #[test]
    fn symbol_grid_measures_rates_by_width() {
        let spec = ExperimentSpec::symbol_widths("fig11", &[1, 2], 15, 50, 400, 0xF11, 42, 0x5EED);
        let mut service = SweepService::with_default_pool();
        let result = service.submit(&spec).unwrap();
        let points = result.series.series()[0].points();
        assert_eq!(points.len(), 2);
        assert!(
            points[1].rate_kbps > points[0].rate_kbps,
            "2-bit symbols should beat 1-bit symbols"
        );
    }

    #[test]
    fn invalid_specs_are_rejected_at_submission() {
        let bad_scenario = ExperimentSpec::cooperation_grid(
            "bad",
            Scenario::CrossVm,
            Mechanism::Event,
            &[15],
            &[70],
            16,
            1,
        );
        let mut service = SweepService::with_default_pool();
        assert!(service.submit(&bad_scenario).is_err());

        let bad_timing = ExperimentSpec::custom(
            "bad-timing",
            Scenario::Local,
            vec![PointSpec::new(
                "x",
                0.0,
                Mechanism::Flock,
                ChannelTiming::contention(Micros::new(50), Micros::new(60)),
                PayloadSpec::Random { bits: 8 },
                1,
            )],
            1,
        );
        assert!(service.submit(&bad_timing).is_err());
        assert_eq!(service.rounds_executed(), 0);
    }

    #[test]
    fn open_interference_changes_the_measurement() {
        let base = ExperimentSpec::contention_grid(
            "closed",
            Scenario::Local,
            Mechanism::Flock,
            &[160],
            60,
            512,
            0xAB,
        );
        let mut noisy = base.clone().with_open_interference(0.2, 120.0);
        noisy.name = "open".into();
        let mut service = SweepService::with_default_pool();
        let closed = service.submit(&base).unwrap();
        let open = service.submit(&noisy).unwrap();
        // Different profiles must not collide in the cache.
        assert_eq!(open.rounds_executed, 1);
        let closed_ber = closed.series.series()[0].points()[0].ber_percent;
        let open_ber = open.series.series()[0].points()[0].ber_percent;
        assert!(
            open_ber > closed_ber,
            "third-party contention should raise BER: {open_ber} vs {closed_ber}"
        );
    }
}
