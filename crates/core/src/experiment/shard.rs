//! Grid sharding: cut a compiled experiment into standalone per-shard specs
//! and merge the shard results back, bit-identically and in any order.
//!
//! The §V.C.1 projection of the paper assumes thousands of concurrent
//! Trojan/Spy channels; one process tops out far earlier, so mega-grids are
//! split across `sweepd` worker processes. The split has to preserve the
//! determinism contract end to end:
//!
//! * Every shard is a `Custom` [`ExperimentSpec`] whose points carry their
//!   exact payload bits (as `Fixed` literals — payload materialization is
//!   seed-independent for them), their plan's channel seed, and their
//!   **original grid index** via [`PointSpec::round_index`]. A shard's
//!   rounds therefore derive the same effective seeds as the same rounds of
//!   the unsharded grid, and compile to bit-equal plans.
//! * Shards are keyed by [`TransmissionPlan::shape_fingerprint`]: each shard
//!   holds points of exactly one shape family, so a worker process patches
//!   one resident program pair instead of recompiling across shapes. Large
//!   families are chopped into contiguous chunks balanced by the plans'
//!   [`TransmissionPlan::nominal_duration`], so shards finish together.
//! * The merge is addressed by grid index, never by arrival order: results
//!   may come back in any permutation and the merged result is rebuilt by
//!   the *same* assembly code an unsharded fold uses, from the original
//!   compiled grid. Per-point plan hashes and effective seeds are verified
//!   during the merge, so a shard that ran the wrong round is rejected
//!   instead of silently merged.
//!
//! Symbol-width grids decode multi-bit symbols and cannot be expressed as
//! `Custom` frame points; they split into a single passthrough shard.
//!
//! [`TransmissionPlan::shape_fingerprint`]: crate::plan::TransmissionPlan::shape_fingerprint
//! [`TransmissionPlan::nominal_duration`]: crate::plan::TransmissionPlan::nominal_duration

use super::compile::{plan_fingerprint, CompiledExperiment, PointMeasurement};
use super::result::{ExperimentResult, NullSink, ResultSink};
use super::spec::{ExperimentSpec, PointSpec};
use mes_types::{MesError, Result};
use std::collections::HashMap;

fn merge_error(reason: impl Into<String>) -> MesError {
    MesError::InvalidConfig {
        reason: reason.into(),
    }
}

/// One shard of a split experiment: a standalone spec plus the original grid
/// positions its points came from (in shard-point order).
#[derive(Debug, Clone)]
pub struct ExperimentShard {
    spec: ExperimentSpec,
    indices: Vec<usize>,
}

impl ExperimentShard {
    /// The shard's standalone spec — self-contained, so it can cross the
    /// `sweepd` spec-JSON process boundary like any other spec.
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// Original grid positions of the shard's points, in shard-point order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of grid points the shard measures.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the shard is empty (never produced by the splitter).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// A compiled experiment partitioned into per-shape-family shards, plus the
/// machinery to merge shard results back into the unsharded result.
pub struct ShardedExperiment {
    compiled: CompiledExperiment,
    shards: Vec<ExperimentShard>,
}

impl ShardedExperiment {
    /// Compiles `spec` and partitions its grid into at most
    /// `target_shards`-ish shards (at least one per shape family — families
    /// are never mixed within a shard, so a grid with more families than the
    /// target yields one shard per family).
    ///
    /// Shards hold contiguous chunks of one shape family and are balanced by
    /// the total [`nominal_duration`](crate::plan::TransmissionPlan::nominal_duration)
    /// of their plans, the simulated run length that dominates a shard's
    /// wall clock.
    ///
    /// # Errors
    ///
    /// Returns an error if the spec does not compile.
    pub fn split(spec: &ExperimentSpec, target_shards: usize) -> Result<Self> {
        let compiled = CompiledExperiment::compile(spec)?;
        let target = target_shards.max(1);
        if compiled.is_empty() {
            return Ok(ShardedExperiment {
                compiled,
                shards: Vec::new(),
            });
        }

        // Rebuild every point as a standalone spec point; a grid with any
        // inexpressible (symbol) point ships as one passthrough shard.
        let points: Option<Vec<PointSpec>> = (0..compiled.len())
            .map(|index| compiled.shard_point_spec(index))
            .collect();
        let Some(points) = points else {
            let shard = ExperimentShard {
                spec: spec.clone(),
                indices: (0..compiled.len()).collect(),
            };
            return Ok(ShardedExperiment {
                compiled,
                shards: vec![shard],
            });
        };

        // Group grid positions into shape families, first-appearance order.
        let shapes = compiled.shape_fingerprints();
        let mut families: Vec<Vec<usize>> = Vec::new();
        let mut family_of: HashMap<u64, usize> = HashMap::new();
        for (position, &shape) in shapes.iter().enumerate() {
            let family = *family_of.entry(shape).or_insert_with(|| {
                families.push(Vec::new());
                families.len() - 1
            });
            families[family].push(position);
        }

        // Chop each family into contiguous chunks that accumulate roughly a
        // 1/target share of the grid's total simulated run length.
        let cost = |position: usize| {
            compiled.plans()[position]
                .nominal_duration()
                .as_u64()
                .max(1)
        };
        let total: u64 = (0..compiled.len()).map(cost).sum();
        let target_cost = (total / target as u64).max(1);
        let mut chunks: Vec<Vec<usize>> = Vec::new();
        for family in families {
            let mut chunk: Vec<usize> = Vec::new();
            let mut chunk_cost = 0u64;
            for position in family {
                chunk_cost += cost(position);
                chunk.push(position);
                if chunk_cost >= target_cost {
                    chunks.push(std::mem::take(&mut chunk));
                    chunk_cost = 0;
                }
            }
            if !chunk.is_empty() {
                chunks.push(chunk);
            }
        }

        let shards = chunks
            .into_iter()
            .enumerate()
            .map(|(ordinal, indices)| {
                let shard_points = indices.iter().map(|&i| points[i].clone()).collect();
                let mut shard_spec = ExperimentSpec::custom(
                    format!("{}-shard{}", spec.name, ordinal),
                    spec.scenario,
                    shard_points,
                    spec.base_seed,
                )
                .with_x_label(spec.x_label.clone());
                shard_spec.capture_latencies = spec.capture_latencies;
                shard_spec.open_interference = spec.open_interference;
                ExperimentShard {
                    spec: shard_spec,
                    indices,
                }
            })
            .collect();
        Ok(ShardedExperiment { compiled, shards })
    }

    /// The shards, in split order. Shard `i` answers to id `i` in
    /// [`ShardedExperiment::merge`].
    pub fn shards(&self) -> &[ExperimentShard] {
        &self.shards
    }

    /// The compiled full grid the shards were cut from.
    pub fn compiled(&self) -> &CompiledExperiment {
        &self.compiled
    }

    /// Merges one result per shard — supplied in **any** order as
    /// `(shard_id, result)` pairs — into the full grid's result.
    ///
    /// Measurements are addressed by original grid index, so the merged
    /// result is independent of shard completion order; it is rebuilt from
    /// the original compiled grid by the same assembly code an unsharded
    /// fold uses, making it bit-identical to an uncached unsharded run (the
    /// `shard_merge` integration test proves this under every permutation).
    /// Every shard point's plan hash and effective seed are checked against
    /// the full grid before merging.
    ///
    /// # Errors
    ///
    /// Returns an error if a shard is missing, duplicated, or unknown; if a
    /// shard's point count disagrees with the split; or if any point's plan
    /// hash or effective seed disagrees with the full grid.
    pub fn merge(&self, results: &[(usize, ExperimentResult)]) -> Result<ExperimentResult> {
        self.merge_streaming(results, &mut NullSink)
    }

    /// Validates one shard's result against the full grid without merging
    /// it: the point count must match the split, and every point's plan hash
    /// and effective seed must equal the full grid's at the point's original
    /// position.
    ///
    /// This is the same provenance check [`ShardedExperiment::merge`] runs,
    /// exposed separately so a fan-out driver can classify a worker's answer
    /// *at receipt* — a frame that parses as a result document but carries
    /// foreign rounds is a babbling worker, not a mergeable shard — and the
    /// merge stays the final line of defense either way.
    ///
    /// # Errors
    ///
    /// Returns an error if `shard_id` is unknown, the point count disagrees
    /// with the split, or any point's plan hash or effective seed disagrees
    /// with the full grid.
    pub fn verify_shard_result(&self, shard_id: usize, result: &ExperimentResult) -> Result<()> {
        let shard = self.shards.get(shard_id).ok_or_else(|| {
            merge_error(format!(
                "unknown shard id {shard_id} (the split produced {})",
                self.shards.len()
            ))
        })?;
        if result.points.len() != shard.indices.len() {
            return Err(merge_error(format!(
                "shard {shard_id} returned {} points, expected {}",
                result.points.len(),
                shard.indices.len()
            )));
        }
        for (outcome, &position) in result.points.iter().zip(&shard.indices) {
            // The provenance carried by every outcome pins the round it
            // measured: equal plan hashes and effective seeds are what
            // make a shard's round *the same round* as the full grid's.
            if outcome.plan_hash != plan_fingerprint(&self.compiled.plans()[position]) {
                return Err(merge_error(format!(
                    "shard {shard_id}: plan hash mismatch at grid index {position}"
                )));
            }
            if outcome.round_seed != self.compiled.effective_seed(position) {
                return Err(merge_error(format!(
                    "shard {shard_id}: effective seed mismatch at grid index {position}"
                )));
            }
        }
        Ok(())
    }

    /// [`ShardedExperiment::merge`], delivering each merged point to `sink`
    /// in grid order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardedExperiment::merge`].
    pub fn merge_streaming(
        &self,
        results: &[(usize, ExperimentResult)],
        sink: &mut dyn ResultSink,
    ) -> Result<ExperimentResult> {
        let total = self.compiled.len();
        let mut slots: Vec<Option<PointMeasurement>> = (0..total).map(|_| None).collect();
        let mut seen = vec![false; self.shards.len()];
        for (shard_id, result) in results {
            self.verify_shard_result(*shard_id, result)?;
            if std::mem::replace(&mut seen[*shard_id], true) {
                return Err(merge_error(format!("shard {shard_id} merged twice")));
            }
            let shard = &self.shards[*shard_id];
            for (outcome, &position) in result.points.iter().zip(&shard.indices) {
                slots[position] = Some(PointMeasurement {
                    ber_percent: outcome.ber_percent,
                    rate_kbps: outcome.rate_kbps,
                    frame_valid: outcome.frame_valid,
                    latencies_us: outcome.latencies_us.clone(),
                });
            }
        }
        let measurements: Vec<PointMeasurement> = slots
            .into_iter()
            .enumerate()
            .map(|(position, slot)| {
                slot.ok_or_else(|| {
                    merge_error(format!("grid index {position} not covered by any shard"))
                })
            })
            .collect::<Result<_>>()?;
        self.compiled.assemble(measurements, &[], sink)
    }
}

#[cfg(test)]
mod tests {
    use super::super::SweepService;
    use super::*;
    use crate::exec::RoundExecutor;
    use mes_coding::PayloadSpec;
    use mes_types::{ChannelTiming, Mechanism, Micros, Scenario};

    /// A grid that deliberately interleaves three plan shapes.
    fn mixed_shape_spec() -> ExperimentSpec {
        let mut points = Vec::new();
        for round in 0..9u64 {
            let (series, mechanism, timing) = match round % 3 {
                0 => (
                    "event",
                    Mechanism::Event,
                    ChannelTiming::cooperation(Micros::new(15 + round), Micros::new(65)),
                ),
                1 => (
                    "flock",
                    Mechanism::Flock,
                    ChannelTiming::contention(Micros::new(140 + 10 * round), Micros::new(60)),
                ),
                _ => (
                    "mutex",
                    Mechanism::Mutex,
                    ChannelTiming::contention(Micros::new(230 + 10 * round), Micros::new(100)),
                ),
            };
            points.push(PointSpec::new(
                series,
                round as f64,
                mechanism,
                timing,
                PayloadSpec::Random { bits: 24 },
                0xA0 + round,
            ));
        }
        ExperimentSpec::custom("mixed", Scenario::Local, points, 0x511A2D)
    }

    fn run_shard(shard: &ExperimentShard) -> ExperimentResult {
        SweepService::new(RoundExecutor::sequential())
            .submit(shard.spec())
            .unwrap()
    }

    #[test]
    fn shards_are_shape_pure_and_cover_the_grid_once() {
        let spec = mixed_shape_spec();
        let sharded = ShardedExperiment::split(&spec, 4).unwrap();
        let shapes = sharded.compiled().shape_fingerprints();
        let mut covered = vec![0usize; sharded.compiled().len()];
        for shard in sharded.shards() {
            assert!(!shard.is_empty());
            assert_eq!(shard.len(), shard.spec().point_count());
            let first = shapes[shard.indices()[0]];
            for &position in shard.indices() {
                assert_eq!(shapes[position], first, "shards must be shape-pure");
                covered[position] += 1;
            }
        }
        assert!(
            covered.iter().all(|&count| count == 1),
            "every grid point must land in exactly one shard: {covered:?}"
        );
        assert!(sharded.shards().len() >= 3, "three families, three+ shards");
    }

    #[test]
    fn merged_shards_reproduce_the_unsharded_result_in_any_order() {
        let spec = mixed_shape_spec();
        let reference = SweepService::new(RoundExecutor::sequential())
            .submit(&spec)
            .unwrap();
        let sharded = ShardedExperiment::split(&spec, 3).unwrap();
        let mut results: Vec<(usize, ExperimentResult)> = sharded
            .shards()
            .iter()
            .enumerate()
            .map(|(id, shard)| (id, run_shard(shard)))
            .collect();
        // Reversed completion order must merge identically.
        results.reverse();
        let merged = sharded.merge(&results).unwrap();
        assert_eq!(merged, reference);
    }

    #[test]
    fn scenario_table_rows_survive_sharding() {
        // The table grid seeds its channel and payload differently; fixed
        // payload literals in the shard points must reproduce both, and the
        // merged result must rebuild the table rows the shards cannot carry.
        let spec = ExperimentSpec::scenario_table("table4", Scenario::Local, 32, 0xAB1E);
        let reference = SweepService::new(RoundExecutor::sequential())
            .submit(&spec)
            .unwrap();
        assert!(!reference.rows.is_empty());
        let sharded = ShardedExperiment::split(&spec, 2).unwrap();
        let results: Vec<(usize, ExperimentResult)> = sharded
            .shards()
            .iter()
            .enumerate()
            .map(|(id, shard)| {
                let result = run_shard(shard);
                assert!(result.rows.is_empty(), "shard specs are row-less");
                (id, result)
            })
            .collect();
        assert_eq!(sharded.merge(&results).unwrap(), reference);
    }

    #[test]
    fn symbol_grids_split_into_one_passthrough_shard() {
        let spec = ExperimentSpec::symbol_widths("fig11", &[1, 2], 15, 50, 64, 2, 3, 4);
        let sharded = ShardedExperiment::split(&spec, 4).unwrap();
        assert_eq!(sharded.shards().len(), 1);
        assert_eq!(sharded.shards()[0].spec(), &spec);
        let reference = SweepService::new(RoundExecutor::sequential())
            .submit(&spec)
            .unwrap();
        let merged = sharded
            .merge(&[(0, run_shard(&sharded.shards()[0]))])
            .unwrap();
        assert_eq!(merged, reference);
    }

    #[test]
    fn merge_rejects_missing_duplicate_and_foreign_results() {
        let spec = mixed_shape_spec();
        let sharded = ShardedExperiment::split(&spec, 3).unwrap();
        let results: Vec<(usize, ExperimentResult)> = sharded
            .shards()
            .iter()
            .enumerate()
            .map(|(id, shard)| (id, run_shard(shard)))
            .collect();

        assert!(sharded.merge(&results[1..]).is_err(), "missing shard");
        let mut duplicated = results.clone();
        duplicated.push(results[0].clone());
        assert!(sharded.merge(&duplicated).is_err(), "duplicate shard");
        let mut foreign = results.clone();
        foreign[0].0 = sharded.shards().len();
        assert!(sharded.merge(&foreign).is_err(), "unknown shard id");

        // A result whose rounds are not the grid's rounds must be rejected
        // by the provenance check, not merged.
        let mut wrong_spec = spec.clone();
        wrong_spec.base_seed ^= 1;
        let wrong = ShardedExperiment::split(&wrong_spec, 3).unwrap();
        let mut swapped = results.clone();
        swapped[0].1 = SweepService::new(RoundExecutor::sequential())
            .submit(wrong.shards()[0].spec())
            .unwrap();
        assert!(sharded.merge(&swapped).is_err(), "foreign rounds");
    }

    #[test]
    fn verify_shard_result_classifies_answers_at_receipt() {
        let spec = mixed_shape_spec();
        let sharded = ShardedExperiment::split(&spec, 3).unwrap();
        let good = run_shard(&sharded.shards()[0]);
        sharded.verify_shard_result(0, &good).unwrap();
        assert!(
            sharded
                .verify_shard_result(sharded.shards().len(), &good)
                .is_err(),
            "unknown shard id"
        );
        assert!(
            sharded.verify_shard_result(1, &good).is_err(),
            "a result delivered under the wrong shard id carries the wrong rounds"
        );
        // Rounds derived from a different base seed are foreign provenance
        // even though the document parses as a well-formed shard result.
        let mut wrong_spec = spec.clone();
        wrong_spec.base_seed ^= 1;
        let wrong = ShardedExperiment::split(&wrong_spec, 3).unwrap();
        let foreign = run_shard(&wrong.shards()[0]);
        assert!(sharded.verify_shard_result(0, &foreign).is_err());
    }

    #[test]
    fn empty_grids_split_into_zero_shards_and_merge_to_an_empty_result() {
        let spec = ExperimentSpec::custom("empty", Scenario::Local, Vec::new(), 1);
        let sharded = ShardedExperiment::split(&spec, 4).unwrap();
        assert!(sharded.shards().is_empty());
        let merged = sharded.merge(&[]).unwrap();
        assert!(merged.points.is_empty());
    }
}
