//! Byte-capped LRU observation cache shared by [`SweepService`] and the
//! multi-tenant [`serve`](crate::serve) scheduler.
//!
//! Entries hold `Arc<Observation>` so a hit can be handed out (to a fold, or
//! to a concurrent submission on another thread) without copying the per-bit
//! latency vectors, and so the daemon's shared cache can serve many tenants
//! from one allocation. The cache also owns the hit/miss/eviction counters
//! the daemon's stats frame reports.
//!
//! [`SweepService`]: crate::experiment::SweepService

use crate::backend::Observation;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Cache key of one executed round: profile fingerprint, plan fingerprint,
/// effective backend seed. Two rounds with equal keys produce identical
/// observations, so the cached observation can stand in for a re-execution.
pub(crate) type CacheKey = (u64, u64, u64);

/// One cached observation plus its LRU bookkeeping.
#[derive(Debug)]
struct CacheEntry {
    observation: Arc<Observation>,
    /// Monotonic use counter; the lowest live tick is the eviction victim.
    tick: u64,
    /// Estimated resident bytes of the entry (see [`observation_bytes`]).
    bytes: usize,
}

/// Estimated resident size of a cached observation: the latency vector plus
/// the fixed per-entry overhead (entry struct, key, and the two index slots).
fn observation_bytes(observation: &Observation) -> usize {
    std::mem::size_of::<CacheEntry>()
        + 2 * std::mem::size_of::<CacheKey>()
        + std::mem::size_of::<u64>()
        + observation.latencies.len() * std::mem::size_of::<mes_types::Nanos>()
}

/// A byte-capped `(profile, plan, seed)` → [`Observation`] LRU map.
///
/// Eviction happens at insertion time, so a long-lived holder stays bounded
/// no matter how many grids flow through it; eviction never affects
/// correctness, because callers fold from handles they looked up *before*
/// inserting, and an evicted point simply re-executes on its next
/// appearance. An entry larger than the whole budget is not inserted at all
/// (in particular a zero-byte capacity disables caching without
/// insert/evict churn).
#[derive(Debug)]
pub(crate) struct ObservationCache {
    entries: HashMap<CacheKey, CacheEntry>,
    /// Use-order index: tick → key, mirroring `entries` (ticks are unique).
    lru: BTreeMap<u64, CacheKey>,
    tick: u64,
    capacity_bytes: usize,
    cached_bytes: usize,
    evictions: u64,
    hits: u64,
    misses: u64,
}

impl ObservationCache {
    /// An empty cache with the given byte budget.
    pub(crate) fn new(capacity_bytes: usize) -> Self {
        ObservationCache {
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            capacity_bytes,
            cached_bytes: 0,
            evictions: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Re-caps the byte budget, evicting immediately if the current
    /// contents no longer fit.
    pub(crate) fn set_capacity(&mut self, bytes: usize) {
        self.capacity_bytes = bytes;
        self.enforce_capacity();
    }

    /// The byte budget.
    pub(crate) fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Estimated bytes currently held (always ≤ the capacity).
    pub(crate) fn cached_bytes(&self) -> usize {
        self.cached_bytes
    }

    /// Number of observations currently cached.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Observations evicted over the cache's lifetime.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Lookups answered from the cache over its lifetime.
    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed over the cache's lifetime.
    pub(crate) fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every cached observation (counters are kept).
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.lru.clear();
        self.cached_bytes = 0;
    }

    /// Looks `key` up, counting the outcome and marking a hit as most
    /// recently used.
    pub(crate) fn lookup(&mut self, key: &CacheKey) -> Option<Arc<Observation>> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(entry) => {
                self.hits += 1;
                self.lru.remove(&entry.tick);
                entry.tick = tick;
                self.lru.insert(tick, *key);
                Some(Arc::clone(&entry.observation))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts an observation, then evicts least-recently-used entries until
    /// the cache fits its byte budget again.
    pub(crate) fn insert(&mut self, key: CacheKey, observation: Arc<Observation>) {
        let bytes = observation_bytes(&observation);
        if bytes > self.capacity_bytes {
            // The entry could never fit: inserting it would only flush the
            // whole cache and count phantom evictions.
            return;
        }
        if let Some(previous) = self.entries.remove(&key) {
            self.lru.remove(&previous.tick);
            self.cached_bytes -= previous.bytes;
        }
        self.tick += 1;
        let tick = self.tick;
        self.entries.insert(
            key,
            CacheEntry {
                observation,
                tick,
                bytes,
            },
        );
        self.lru.insert(tick, key);
        self.cached_bytes += bytes;
        self.enforce_capacity();
    }

    fn enforce_capacity(&mut self) {
        while self.cached_bytes > self.capacity_bytes {
            let Some((&oldest_tick, &victim)) = self.lru.iter().next() else {
                break;
            };
            self.lru.remove(&oldest_tick);
            if let Some(entry) = self.entries.remove(&victim) {
                self.cached_bytes -= entry.bytes;
                self.evictions += 1;
            }
        }
    }
}
