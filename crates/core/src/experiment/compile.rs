//! Spec → grid compilation and measurement folding.
//!
//! A [`CompiledExperiment`] is the executable form of an
//! [`ExperimentSpec`]: every grid point's channel is built, its payload
//! materialized and its [`TransmissionPlan`] compiled, with all plans owned
//! by one vector so executors and cache keys borrow instead of cloning. The
//! same compiled grid can then run three ways — on a caller-supplied backend
//! (`transmit_batch`, how the legacy sequential sweeps behave), on a bare
//! [`RoundExecutor`], or through the caching
//! [`SweepService`](super::SweepService) — and all three fold observations
//! back into an identical [`ExperimentResult`].

use super::result::{ExperimentResult, ExperimentRow, NullSink, PointOutcome, ResultSink};
use super::spec::{ExperimentSpec, GridSpec, PointSpec};
use crate::backend::{round_seed, ChannelBackend, Observation};
use crate::channel::CovertChannel;
use crate::config::ChannelConfig;
use crate::exec::{PreparedRound, RoundExecutor};
use crate::multibit::SymbolChannel;
use crate::plan::TransmissionPlan;
use mes_coding::{BitSource, PayloadSpec, SymbolAlphabet};
use mes_scenario::ScenarioProfile;
use mes_stats::{LabeledSeries, SweepSeries};
use mes_types::{BitString, ChannelTiming, Mechanism, Micros, Result};
use std::sync::Arc;

/// A stable fingerprint of a transmission plan, covering every field that
/// influences its execution (actions, timing, seed, mechanism, sync flags).
///
/// Structural (the plan's `Hash` stream through `mes_types::Fnv64`) and
/// allocation-free — the previous implementation formatted the plan's
/// `Debug` rendering, which for 20 000-bit payloads streamed hundreds of
/// kilobytes of text per cache lookup.
pub fn plan_fingerprint(plan: &TransmissionPlan) -> u64 {
    plan.fingerprint()
}

/// A stable fingerprint of a deployment profile, covering the scenario, the
/// noise model (floats hashed by bit pattern) and the session layout.
/// Structural and allocation-free, like [`plan_fingerprint`].
pub fn profile_fingerprint(profile: &ScenarioProfile) -> u64 {
    mes_types::fingerprint_of(profile)
}

/// How one compiled point decodes its observation.
enum PointDecoder {
    /// A framed single-bit round (everything except symbol grids).
    Frame(PreparedRound),
    /// A multi-bit symbol round (the Section VI grid).
    Symbols {
        channel: SymbolChannel,
        payload: BitString,
        sent: Vec<usize>,
    },
}

/// One compiled grid point; its plan lives in the grid's plan vector.
struct CompiledPoint {
    series: usize,
    x: f64,
    mechanism: Mechanism,
    timing: ChannelTiming,
    decoder: PointDecoder,
    paper_ber: Option<f64>,
    paper_tr: Option<f64>,
}

/// An [`ExperimentSpec`] compiled down to plans and decoders, ready to run.
pub struct CompiledExperiment {
    name: String,
    /// Shared with every compiled channel and handed to executor workers —
    /// one profile allocation per experiment, not per point or per worker.
    profile: Arc<ScenarioProfile>,
    base_seed: u64,
    x_label: String,
    capture_latencies: bool,
    table_rows: bool,
    series_labels: Vec<String>,
    points: Vec<CompiledPoint>,
    plans: Vec<TransmissionPlan>,
    /// [`TransmissionPlan::shape_fingerprint`] of each plan, in grid order —
    /// computed once at compilation so the service can group cache-miss
    /// submissions into shape runs without re-walking the plans.
    shapes: Vec<u64>,
    /// The round index each point is seeded with. Equal to the grid position
    /// for every grid except `Custom` points carrying a
    /// [`PointSpec::round_index`] override — the mechanism sharded sweeps use
    /// to reproduce the full grid's seeds inside a sub-grid.
    round_indices: Vec<u64>,
    /// Whether any point overrides its round index (when `false`, the legacy
    /// position-seeded execution paths are used unchanged).
    has_round_overrides: bool,
}

impl CompiledExperiment {
    /// Compiles a spec against the profile its scenario implies (plus the
    /// spec's noise tweaks).
    ///
    /// # Errors
    ///
    /// Returns an error if any point's configuration is invalid or its
    /// mechanism is unavailable in the scenario.
    pub fn compile(spec: &ExperimentSpec) -> Result<Self> {
        let mut profile = ScenarioProfile::for_scenario(spec.scenario);
        if let Some(interference) = spec.open_interference {
            profile = profile.clone().with_noise(
                profile
                    .noise()
                    .clone()
                    .with_open_interference(interference.to_noise()),
            );
        }
        CompiledExperiment::compile_with_profile(spec, &profile)
    }

    /// Compiles a spec against an explicit profile — the entry point the
    /// legacy shims use so caller-customized profiles (ablation noise
    /// models) keep working. The spec's scenario should match the profile's.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledExperiment::compile`].
    pub fn compile_with_profile(spec: &ExperimentSpec, profile: &ScenarioProfile) -> Result<Self> {
        // One deep clone into an `Arc` per compilation; every channel and
        // worker of the experiment shares it from here on.
        let profile = Arc::new(profile.clone());
        let mut grid = GridBuilder {
            profile: &profile,
            series_labels: Vec::new(),
            points: Vec::new(),
            plans: Vec::new(),
            table_rows: matches!(spec.grid, GridSpec::ScenarioTable { .. }),
        };
        match &spec.grid {
            GridSpec::Cooperation {
                mechanism,
                tw0_values,
                ti_values,
                payload_bits,
            } => {
                for (series, &ti) in ti_values.iter().enumerate() {
                    grid.series_labels.push(format!("Interval={ti}"));
                    for &tw0 in tw0_values {
                        let timing = ChannelTiming::cooperation(Micros::new(tw0), Micros::new(ti));
                        grid.push_frame_point(
                            series,
                            tw0 as f64,
                            *mechanism,
                            timing,
                            &PayloadSpec::Random {
                                bits: *payload_bits,
                            },
                            spec.base_seed ^ (tw0 << 16) ^ ti,
                            true,
                        )?;
                    }
                }
            }
            GridSpec::Contention {
                mechanism,
                tt1_values,
                tt0,
                payload_bits,
            } => {
                grid.series_labels.push(mechanism.to_string());
                for &tt1 in tt1_values {
                    let timing = ChannelTiming::contention(Micros::new(tt1), Micros::new(*tt0));
                    grid.push_frame_point(
                        0,
                        tt1 as f64,
                        *mechanism,
                        timing,
                        &PayloadSpec::Random {
                            bits: *payload_bits,
                        },
                        spec.base_seed ^ (tt1 << 8),
                        true,
                    )?;
                }
            }
            GridSpec::ScenarioTable { payload_bits } => {
                for (row, (mechanism, timing)) in mes_scenario::paper_timeset_grid(spec.scenario)
                    .into_iter()
                    .enumerate()
                {
                    grid.series_labels.push(mechanism.to_string());
                    // `measure_scenario` has always drawn the payload from a
                    // mechanism-mixed seed while seeding the channel with the
                    // base seed itself; reproduce both exactly.
                    let config = ChannelConfig::new(mechanism, timing)?.with_seed(spec.base_seed);
                    let channel = CovertChannel::new(config, Arc::clone(&profile))?;
                    let payload =
                        BitSource::new(spec.base_seed.wrapping_mul(31) ^ mechanism as u64)
                            .random_bits(*payload_bits);
                    let (round, plan) = PreparedRound::new(channel, payload)?;
                    grid.points.push(CompiledPoint {
                        series: row,
                        x: row as f64,
                        mechanism,
                        timing,
                        decoder: PointDecoder::Frame(round),
                        paper_ber: mes_scenario::paper_ber_percent(spec.scenario, mechanism),
                        paper_tr: mes_scenario::paper_tr_kbps(spec.scenario, mechanism),
                    });
                    grid.plans.push(plan);
                }
            }
            GridSpec::SymbolWidths {
                widths,
                first_us,
                step_us,
                payload_bits,
                channel_seed,
                payload_seed,
            } => {
                grid.series_labels.push(Mechanism::Event.to_string());
                for &k in widths {
                    let alphabet = SymbolAlphabet::evenly_spaced(
                        k,
                        Micros::new(*first_us),
                        Micros::new(*step_us),
                    )?;
                    let channel = SymbolChannel::new(
                        alphabet,
                        Mechanism::Event,
                        Arc::clone(&profile),
                        channel_seed + u64::from(k),
                    )?;
                    let payload =
                        BitSource::new(payload_seed + u64::from(k)).random_bits(*payload_bits);
                    let (sent, plan) = channel.plan(&payload)?;
                    let timing =
                        ChannelTiming::cooperation(Micros::new(*first_us), Micros::new(*step_us));
                    grid.points.push(CompiledPoint {
                        series: 0,
                        x: f64::from(k),
                        mechanism: Mechanism::Event,
                        timing,
                        decoder: PointDecoder::Symbols {
                            channel,
                            payload,
                            sent,
                        },
                        paper_ber: None,
                        paper_tr: None,
                    });
                    grid.plans.push(plan);
                }
            }
            GridSpec::Custom { points } => {
                for point in points {
                    let series = grid.series_index(&point.series);
                    grid.push_frame_point(
                        series,
                        point.x,
                        point.mechanism,
                        point.timing,
                        &point.payload,
                        point.seed,
                        point.inter_bit_sync,
                    )?;
                }
            }
        }
        let GridBuilder {
            table_rows,
            series_labels,
            points,
            plans,
            ..
        } = grid;
        let shapes = plans
            .iter()
            .map(TransmissionPlan::shape_fingerprint)
            .collect();
        let round_indices: Vec<u64> = match &spec.grid {
            GridSpec::Custom { points } => points
                .iter()
                .enumerate()
                .map(|(index, point)| point.round_index.unwrap_or(index as u64))
                .collect(),
            _ => (0..plans.len() as u64).collect(),
        };
        let has_round_overrides = round_indices
            .iter()
            .enumerate()
            .any(|(position, &index)| index != position as u64);
        Ok(CompiledExperiment {
            name: spec.name.clone(),
            profile,
            base_seed: spec.base_seed,
            x_label: spec.x_label.clone(),
            capture_latencies: spec.capture_latencies,
            table_rows,
            series_labels,
            points,
            plans,
            shapes,
            round_indices,
            has_round_overrides,
        })
    }

    /// The compiled plans, in grid order — one shared allocation that
    /// executor requests and cache keys both borrow.
    pub fn plans(&self) -> &[TransmissionPlan] {
        &self.plans
    }

    /// The [`TransmissionPlan::shape_fingerprint`] of each plan, in grid
    /// order. Precomputed at compilation; the service uses it to submit
    /// cache-miss rounds pre-grouped into shape runs (see
    /// [`crate::exec::SchedulePolicy`]).
    pub fn shape_fingerprints(&self) -> &[u64] {
        &self.shapes
    }

    /// The profile every point runs under.
    pub fn profile(&self) -> &ScenarioProfile {
        &self.profile
    }

    /// The shared handle to the profile (cheap to clone into executor
    /// worker factories).
    pub fn shared_profile(&self) -> &Arc<ScenarioProfile> {
        &self.profile
    }

    /// The base seed of the execution backends.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Number of compiled grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The round index each grid point is seeded with, in grid order: the
    /// grid position unless the point carries a
    /// [`PointSpec::round_index`] override.
    pub fn round_indices(&self) -> &[u64] {
        &self.round_indices
    }

    /// Whether any point seeds itself as a round other than its grid
    /// position (true exactly for sharded sub-grids).
    pub fn has_round_overrides(&self) -> bool {
        self.has_round_overrides
    }

    /// The effective backend seed of the point at grid position `index`
    /// (what [`ChannelBackend::transmit_round`] derives for a backend whose
    /// base seed is this experiment's, at the point's round index).
    pub fn effective_seed(&self, index: usize) -> u64 {
        round_seed(self.base_seed, self.round_indices[index]).wrapping_add(self.plans[index].seed)
    }

    /// Runs the whole grid as one batch on a caller-supplied backend —
    /// exactly what the legacy sequential sweeps did. The grid is bracketed
    /// in a `begin_batch`/`end_batch` session, so session-capable backends
    /// keep their warm state across every plan of the experiment. On a fresh
    /// [`SimBackend`](crate::backend::SimBackend) seeded with
    /// [`CompiledExperiment::base_seed`], the result is bit-identical to the
    /// executor paths.
    ///
    /// # Errors
    ///
    /// Returns an error if the backend fails or a symbol round cannot be
    /// decoded.
    pub fn run_on_backend(&self, backend: &mut dyn ChannelBackend) -> Result<ExperimentResult> {
        backend.begin_batch()?;
        let observations = if self.has_round_overrides {
            // Round-index overrides address rounds explicitly, so the batch
            // cannot go through `transmit_batch`'s position-based seeding.
            self.plans
                .iter()
                .zip(&self.round_indices)
                .map(|(plan, &index)| backend.transmit_round(plan, index))
                .collect()
        } else {
            backend.transmit_batch(&self.plans)
        };
        backend.end_batch();
        let observations = observations?;
        let refs: Vec<&Observation> = observations.iter().collect();
        self.fold(&refs, &[], &mut NullSink)
    }

    /// Runs the whole grid across an executor's workers (simulated backends
    /// seeded with [`CompiledExperiment::base_seed`]), without caching.
    ///
    /// # Errors
    ///
    /// Returns an error if any round fails or a symbol round cannot be
    /// decoded.
    pub fn run_with_executor(&self, executor: &RoundExecutor) -> Result<ExperimentResult> {
        let rounds: Vec<crate::exec::RoundRequest<'_>> = self
            .plans
            .iter()
            .enumerate()
            .map(|(position, plan)| {
                crate::exec::RoundRequest::new(plan, self.round_indices[position])
                    .with_shape_fingerprint(self.shapes[position])
            })
            .collect();
        let observations = executor.execute_rounds(&rounds, || {
            crate::backend::SimBackend::new(Arc::clone(&self.profile), self.base_seed)
        })?;
        let refs: Vec<&Observation> = observations.iter().collect();
        self.fold(&refs, &[], &mut NullSink)
    }

    /// Folds one observation per point (in grid order, borrowed — cached
    /// observations are folded in place rather than cloned) into the typed
    /// result. `cached` marks the indices served from a cache (pass `&[]`
    /// when every observation was freshly executed); `sink` receives each
    /// point as it is measured. This is the decode half of every execution
    /// path, exposed so harnesses that obtain observations their own way
    /// (single-`transmit` legacy shims, externally timed strategy
    /// comparisons) produce the same typed result.
    ///
    /// # Errors
    ///
    /// Returns an error if a symbol round cannot be decoded.
    pub fn fold(
        &self,
        observations: &[&Observation],
        cached: &[bool],
        sink: &mut dyn ResultSink,
    ) -> Result<ExperimentResult> {
        let measurements = self
            .points
            .iter()
            .zip(observations)
            .map(|(point, observation)| self.measure_point(point, observation))
            .collect::<Result<Vec<PointMeasurement>>>()?;
        self.assemble(measurements, cached, sink)
    }

    /// Decodes one point's observation into its measurement.
    fn measure_point(
        &self,
        point: &CompiledPoint,
        observation: &Observation,
    ) -> Result<PointMeasurement> {
        let (ber_percent, rate_kbps, frame_valid, latencies_us) = match &point.decoder {
            PointDecoder::Frame(round) => {
                let report = round.recover(observation);
                (
                    report.wire_ber().ber_percent(),
                    report.throughput().kilobits_per_second(),
                    report.frame_valid(),
                    self.capture_latencies.then(|| {
                        report
                            .latencies()
                            .iter()
                            .map(|l| l.as_micros_f64())
                            .collect()
                    }),
                )
            }
            PointDecoder::Symbols {
                channel,
                payload,
                sent,
            } => {
                let report = channel.recover(payload, sent, observation)?;
                (
                    report.ber().ber_percent(),
                    report.throughput().kilobits_per_second(),
                    true,
                    self.capture_latencies.then(|| {
                        report
                            .latencies()
                            .iter()
                            .map(|l| l.as_micros_f64())
                            .collect()
                    }),
                )
            }
        };
        Ok(PointMeasurement {
            ber_percent,
            rate_kbps,
            frame_valid,
            latencies_us,
        })
    }

    /// Builds the typed result from one decoded measurement per point (in
    /// grid order) — the assembly half of [`CompiledExperiment::fold`],
    /// shared with the shard merger so a merged result is *constructed* the
    /// same way an unsharded fold constructs it, not merely compared equal.
    pub(super) fn assemble(
        &self,
        measurements: Vec<PointMeasurement>,
        cached: &[bool],
        sink: &mut dyn ResultSink,
    ) -> Result<ExperimentResult> {
        let mut series: Vec<LabeledSeries> =
            self.series_labels.iter().map(LabeledSeries::new).collect();
        let mut rows = Vec::new();
        let mut outcomes = Vec::with_capacity(self.points.len());
        let mut cache_hits = 0;
        let measured = measurements.len();

        for (index, (point, measurement)) in self.points.iter().zip(measurements).enumerate() {
            let cache_hit = cached.get(index).copied().unwrap_or(false);
            if cache_hit {
                cache_hits += 1;
            }
            let PointMeasurement {
                ber_percent,
                rate_kbps,
                frame_valid,
                latencies_us: latencies,
            } = measurement;

            series[point.series].push(mes_stats::SweepPoint {
                x: point.x,
                ber_percent,
                rate_kbps,
            });
            if self.table_rows {
                rows.push(ExperimentRow {
                    mechanism: point.mechanism,
                    timeset: point.timing.to_string(),
                    ber_percent,
                    tr_kbps: rate_kbps,
                    paper_ber: point.paper_ber,
                    paper_tr: point.paper_tr,
                });
            }
            let outcome = PointOutcome {
                index,
                series: self.series_labels[point.series].clone(),
                x: point.x,
                mechanism: point.mechanism,
                timing: point.timing,
                ber_percent,
                rate_kbps,
                frame_valid,
                plan_hash: plan_fingerprint(&self.plans[index]),
                round_seed: self.effective_seed(index),
                cache_hit,
                latencies_us: latencies,
            };
            sink.on_point(&outcome);
            outcomes.push(outcome);
        }

        let mut sweep = SweepSeries::new(&self.x_label);
        for labeled in series {
            sweep.push(labeled);
        }
        Ok(ExperimentResult {
            name: self.name.clone(),
            scenario: self.profile.scenario(),
            series: sweep,
            rows,
            points: outcomes,
            rounds_executed: measured - cached.iter().filter(|&&c| c).count(),
            cache_hits,
        })
    }

    /// Rebuilds the point at grid position `index` as a standalone
    /// [`PointSpec`] carrying its exact payload bits (as a `Fixed` literal),
    /// its plan's seed and its round index — the form a shard spec ships
    /// across the `sweepd` process boundary. Returns `None` for symbol
    /// points, whose multi-bit decoding a frame point cannot express.
    pub(super) fn shard_point_spec(&self, index: usize) -> Option<PointSpec> {
        let point = &self.points[index];
        let PointDecoder::Frame(round) = &point.decoder else {
            return None;
        };
        let plan = &self.plans[index];
        let mut spec = PointSpec::new(
            self.series_labels[point.series].clone(),
            point.x,
            point.mechanism,
            point.timing,
            PayloadSpec::Fixed {
                bits: round.payload().to_string01(),
            },
            plan.seed,
        )
        .at_round_index(self.round_indices[index]);
        spec.inter_bit_sync = plan.inter_bit_sync;
        Some(spec)
    }
}

/// One point's decoded measurement — what execution contributes to a result,
/// with everything else (labels, provenance, paper values) coming from the
/// compiled grid at assembly time.
#[derive(Debug, Clone, PartialEq)]
pub(super) struct PointMeasurement {
    pub(super) ber_percent: f64,
    pub(super) rate_kbps: f64,
    pub(super) frame_valid: bool,
    pub(super) latencies_us: Option<Vec<f64>>,
}

/// Accumulator shared by the grid kinds during compilation.
struct GridBuilder<'a> {
    profile: &'a Arc<ScenarioProfile>,
    series_labels: Vec<String>,
    points: Vec<CompiledPoint>,
    plans: Vec<TransmissionPlan>,
    table_rows: bool,
}

impl GridBuilder<'_> {
    /// Index of `label` in the series list, appending it on first use.
    fn series_index(&mut self, label: &str) -> usize {
        if let Some(index) = self.series_labels.iter().position(|l| l == label) {
            index
        } else {
            self.series_labels.push(label.to_string());
            self.series_labels.len() - 1
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_frame_point(
        &mut self,
        series: usize,
        x: f64,
        mechanism: Mechanism,
        timing: ChannelTiming,
        payload: &PayloadSpec,
        seed: u64,
        inter_bit_sync: bool,
    ) -> Result<()> {
        let mut config = ChannelConfig::new(mechanism, timing)?.with_seed(seed);
        if !inter_bit_sync {
            config = config.without_inter_bit_sync();
        }
        let channel = CovertChannel::new(config, Arc::clone(self.profile))?;
        let payload = payload.materialize(seed)?;
        let (round, plan) = PreparedRound::new(channel, payload)?;
        self.points.push(CompiledPoint {
            series,
            x,
            mechanism,
            timing,
            decoder: PointDecoder::Frame(round),
            paper_ber: None,
            paper_tr: None,
        });
        self.plans.push(plan);
        Ok(())
    }
}
