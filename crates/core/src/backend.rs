//! Channel backends: where a [`TransmissionPlan`] actually runs.
//!
//! The [`ChannelBackend`] trait is the boundary between the channel logic
//! (framing, encoding, decoding, metrics) and the machinery that executes
//! lock and signal operations. [`SimBackend`] runs plans on the `mes-sim`
//! simulated kernel; `mes-host` provides a backend that runs the `flock`
//! channel on the real Linux kernel of the build machine.

use crate::plan::{SlotAction, TransmissionPlan};
use mes_scenario::ScenarioProfile;
use mes_sim::{Engine, Measurement, ObjectKind, Op, Program, ProgramPatcher};
use mes_types::{FdId, HandleId, Mechanism, Micros, Nanos, Result};
use std::sync::Arc;

/// What the Spy observed during one transmission round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// Constraint latencies, one per transmitted slot, in slot order.
    pub latencies: Vec<Nanos>,
    /// Total elapsed time of the round (virtual time for the simulator,
    /// wall-clock time for a host backend).
    pub elapsed: Nanos,
}

impl Observation {
    /// Number of observed slots.
    pub fn len(&self) -> usize {
        self.latencies.len()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.latencies.is_empty()
    }
}

/// Derives the seed for one transmission round from a base seed and the
/// round's index (SplitMix64 finaliser over the mixed pair).
///
/// Every batched/parallel execution path seeds round `i` with
/// `round_seed(base, i)`, so a round's result depends only on
/// `(profile, base_seed, round_index, plan)` — never on which worker thread
/// ran it or how many rounds ran before it. That is what makes parallel
/// execution bit-identical to sequential execution.
pub fn round_seed(base_seed: u64, round_index: u64) -> u64 {
    let mut z = base_seed ^ round_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Executes transmission plans against some incarnation of the OS MESMs.
///
/// # Batch sessions
///
/// Backends with expensive per-round setup implement the batch-session
/// lifecycle: [`ChannelBackend::begin_batch`] opens a session whose warm
/// state (threads, files, engines) every round of the batch shares, and
/// [`ChannelBackend::end_batch`] tears it down. The drivers — the default
/// [`ChannelBackend::transmit_batch`],
/// [`crate::exec::RoundExecutor::execute_rounds`] and
/// `CompiledExperiment::run_on_backend` — bracket every batch with the pair,
/// so a backend only has to override the hooks to be executed session-wise
/// everywhere. Sessions must be behaviour-transparent: a round inside a
/// session returns exactly what the same round returns outside one. The
/// hooks nest (the drivers may layer); implementations tear down when the
/// outermost `end_batch` arrives.
pub trait ChannelBackend {
    /// Runs one transmission round and returns the Spy's observations.
    ///
    /// # Errors
    ///
    /// Implementations return an error when the plan cannot be executed
    /// (mechanism not available, simulated deadlock, host syscall failure).
    fn transmit(&mut self, plan: &TransmissionPlan) -> Result<Observation>;

    /// Opens a batch session: subsequent rounds may share warm state until
    /// the matching [`ChannelBackend::end_batch`]. Default: no-op.
    ///
    /// # Errors
    ///
    /// Implementations return an error when the session's resources cannot
    /// be acquired (e.g. worker threads or shared files).
    fn begin_batch(&mut self) -> Result<()> {
        Ok(())
    }

    /// Closes the innermost open batch session, releasing its warm state
    /// once the outermost session ends. Default: no-op. Must be infallible
    /// so drivers can always unwind a batch, even after a round error.
    fn end_batch(&mut self) {}

    /// Runs one round addressed by its index in a batch.
    ///
    /// Backends with internal randomness should derive the round's state
    /// from [`round_seed`]`(base, round_index)` so that a round's result is
    /// independent of execution order — the contract
    /// [`crate::exec::RoundExecutor`] relies on to parallelise batches
    /// deterministically. The default implementation ignores the index and
    /// simply calls [`ChannelBackend::transmit`] (correct for backends whose
    /// rounds are naturally independent, e.g. real-kernel backends).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChannelBackend::transmit`].
    fn transmit_round(&mut self, plan: &TransmissionPlan, round_index: u64) -> Result<Observation> {
        let _ = round_index;
        self.transmit(plan)
    }

    /// Runs a batch of rounds and returns one observation per plan, in plan
    /// order.
    ///
    /// The default implementation brackets the batch in a
    /// [`ChannelBackend::begin_batch`]/[`ChannelBackend::end_batch`] session
    /// and loops over [`ChannelBackend::transmit`]. Backends are encouraged
    /// to override it with round-indexed seeding (see
    /// [`ChannelBackend::transmit_round`]) and to reuse expensive per-round
    /// state across the batch, as [`SimBackend`] does with its simulation
    /// engine and the host backends do with their persistent Trojan/Spy
    /// worker pairs.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered, in plan order.
    fn transmit_batch(&mut self, plans: &[TransmissionPlan]) -> Result<Vec<Observation>> {
        self.begin_batch()?;
        let observations = plans.iter().map(|plan| self.transmit(plan)).collect();
        self.end_batch();
        observations
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &str;
}

/// A compiled Trojan/Spy program pair for one plan *shape*, shared with the
/// engine via [`Arc`] so warm rounds respawn without cloning an op list.
/// Same-shape plans — durations aside — are served by patching the pair in
/// place (see [`SimBackend::programs_for`]).
#[derive(Debug)]
struct CachedPrograms {
    /// [`TransmissionPlan::shape_fingerprint`] of the cached pair's plan —
    /// equal shapes patch durations in place instead of recompiling.
    shape: u64,
    trojan: Arc<Program>,
    spy: Arc<Program>,
    /// Number of the pair's programs containing a barrier op (min 1) — a
    /// shape invariant, handed to [`Engine::set_barrier_parties`] every
    /// round so the engine never rescans op lists to derive it.
    barrier_parties: usize,
    /// Last access stamp from [`SimBackend::program_tick`]; the entry with
    /// the smallest stamp is evicted when the cache is full.
    tick: u64,
}

/// Shape capacity of the per-backend program cache. Real grids interleave a
/// handful of shape families (mechanism × payload-shape combinations), so a
/// small bound keeps every family warm across interleaved traffic while
/// still bounding a pathological many-shape sweep.
const PROGRAM_CACHE_SHAPES: usize = 8;

/// The simulated-kernel backend.
///
/// Every round runs on a simulated system (namespace, filesystem, processes)
/// built from the plan alone, so rounds are independent and fully
/// reproducible from `(profile, seed, plan)`. The engine behind the rounds
/// is allocated once and [`Engine::reset`] between rounds — an arena-backed
/// cursor rewind — and the compiled Trojan/Spy programs are cached **per
/// plan shape** in a small LRU map ([`PROGRAM_CACHE_SHAPES`] shapes): any
/// round whose plan shares a cached shape — repeated rounds of one plan, a
/// duration sweep moving between same-shape points, or traffic
/// *interleaving* several shapes — patches the plan's durations into its
/// shape's pair in place via [`Arc::get_mut`] after the engine reset
/// released its references, instead of recompiling. Warm rounds over a
/// bounded shape set therefore execute without any `mes-sim` heap
/// allocation (the `alloc_regression` integration test enforces this). A
/// reset engine is observably identical to a fresh one and a patched
/// program is op-identical to a freshly built one, keeping reproducibility
/// intact.
#[derive(Debug)]
pub struct SimBackend {
    profile: Arc<ScenarioProfile>,
    seed: u64,
    runs: u64,
    trace_capacity: Option<usize>,
    /// Reused across rounds; `None` until the first round (and in clones, so
    /// cloning a backend is cheap and never shares simulation state).
    engine: Option<Engine>,
    /// Program cache, one entry per recently seen plan shape (bounded at
    /// [`PROGRAM_CACHE_SHAPES`], least-recently-used eviction); empty until
    /// the first round.
    programs: Vec<CachedPrograms>,
    /// Monotonic access counter stamping `programs` entries for eviction.
    program_tick: u64,
    /// Scratch for sorting the Spy's measurement windows by slot.
    measure_scratch: Vec<Measurement>,
}

impl Clone for SimBackend {
    fn clone(&self) -> Self {
        SimBackend {
            profile: Arc::clone(&self.profile),
            seed: self.seed,
            runs: self.runs,
            trace_capacity: self.trace_capacity,
            engine: None,
            programs: Vec::new(),
            program_tick: 0,
            measure_scratch: Vec::new(),
        }
    }
}

impl SimBackend {
    /// Creates a backend for a deployment profile with a base seed.
    ///
    /// Accepts an owned profile or an `Arc<ScenarioProfile>`; executor
    /// worker factories pass the shared `Arc` so spawning a worker never
    /// deep-clones the profile.
    pub fn new(profile: impl Into<Arc<ScenarioProfile>>, seed: u64) -> Self {
        SimBackend {
            profile: profile.into(),
            seed,
            runs: 0,
            trace_capacity: None,
            engine: None,
            programs: Vec::new(),
            program_tick: 0,
            measure_scratch: Vec::new(),
        }
    }

    /// Enables engine tracing for subsequent rounds (used by the
    /// proof-of-concept figure).
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// The deployment profile the backend simulates.
    pub fn profile(&self) -> &ScenarioProfile {
        &self.profile
    }

    /// The shared handle to the deployment profile (cheap to clone into
    /// worker factories).
    pub fn shared_profile(&self) -> &Arc<ScenarioProfile> {
        &self.profile
    }

    /// Number of rounds executed so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Rebases the backend onto a new base seed for subsequent rounds.
    ///
    /// A round fully re-derives its execution state from
    /// `(profile, plan, round_seed(base, index) + plan.seed)`: the engine is
    /// reset before every round, and the cached program pairs are keyed by
    /// plan *shape*, which no seed influences. Rebasing a warm backend
    /// between rounds therefore preserves the determinism contract exactly —
    /// the next [`ChannelBackend::transmit_round`] is bit-identical to the
    /// same call on a fresh `SimBackend::new(profile, seed)` — while keeping
    /// the engine arena and the resident program pairs warm. The multi-tenant
    /// [`serve`](crate::serve) scheduler relies on this to run rounds of
    /// different submissions (different base seeds) back-to-back on one
    /// backend without recompiling the shapes they share.
    pub fn set_base_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Builds the Trojan and Spy programs for a plan. Exposed for tests and
    /// for the proof-of-concept harness, which wants the raw programs.
    pub fn build_programs(&self, plan: &TransmissionPlan) -> (Program, Program) {
        let mut spy = Program::new("spy").in_session(self.profile.spy_session());
        let mut trojan = Program::new("trojan").in_session(self.profile.trojan_session());
        emit_programs(
            plan,
            &mut OpSink::Build(&mut trojan),
            &mut OpSink::Build(&mut spy),
        );
        (trojan, spy)
    }
}

/// Where [`emit_programs`] sends each op: appended to a program under
/// construction, or replayed against an existing program's ops to patch the
/// durations in place. One generation routine drives both, so a patched
/// program can never drift from what a fresh compilation would produce.
enum OpSink<'a> {
    Build(&'a mut Program),
    Patch(ProgramPatcher<'a>),
}

impl OpSink<'_> {
    fn sleep_for(&mut self, duration: Nanos) {
        match self {
            OpSink::Build(program) => program.push(Op::SleepFor { duration }),
            OpSink::Patch(patcher) => patcher.sleep_for(duration),
        }
    }

    fn compute(&mut self, duration: Nanos) {
        match self {
            OpSink::Build(program) => program.push(Op::Compute { duration }),
            OpSink::Patch(patcher) => patcher.compute(duration),
        }
    }

    fn set_timer(&mut self, handle: HandleId, due: Nanos) {
        match self {
            OpSink::Build(program) => program.push(Op::SetTimer { handle, due }),
            OpSink::Patch(patcher) => patcher.set_timer(handle, due),
        }
    }

    /// Structural ops below carry no duration: the patch path verifies their
    /// distinguishing fields and keeps them. String fields (object names,
    /// file paths) are built lazily so the patch path never allocates.
    fn open_file(&mut self, path: impl FnOnce() -> String, fd: FdId) {
        match self {
            OpSink::Build(program) => program.push(Op::OpenFile { path: path(), fd }),
            OpSink::Patch(patcher) => patcher.open_file(fd),
        }
    }

    fn create_object(&mut self, name: impl FnOnce() -> String, kind: ObjectKind, handle: HandleId) {
        match self {
            OpSink::Build(program) => program.push(Op::CreateObject {
                name: name(),
                kind,
                handle,
            }),
            OpSink::Patch(patcher) => patcher.create_object(kind, handle),
        }
    }

    fn open_object(&mut self, name: impl FnOnce() -> String, handle: HandleId) {
        match self {
            OpSink::Build(program) => program.push(Op::OpenObject {
                name: name(),
                handle,
            }),
            OpSink::Patch(patcher) => patcher.open_object(handle),
        }
    }

    fn wait_for_single_object(&mut self, handle: HandleId) {
        match self {
            OpSink::Build(program) => program.push(Op::WaitForSingleObject { handle }),
            OpSink::Patch(patcher) => patcher.wait_for_single_object(handle),
        }
    }

    fn set_event(&mut self, handle: HandleId) {
        match self {
            OpSink::Build(program) => program.push(Op::SetEvent { handle }),
            OpSink::Patch(patcher) => patcher.set_event(handle),
        }
    }

    fn release_mutex(&mut self, handle: HandleId) {
        match self {
            OpSink::Build(program) => program.push(Op::ReleaseMutex { handle }),
            OpSink::Patch(patcher) => patcher.release_mutex(handle),
        }
    }

    fn release_semaphore(&mut self, handle: HandleId, count: u32) {
        match self {
            OpSink::Build(program) => program.push(Op::ReleaseSemaphore { handle, count }),
            OpSink::Patch(patcher) => patcher.release_semaphore(handle, count),
        }
    }

    fn flock_exclusive(&mut self, fd: FdId) {
        match self {
            OpSink::Build(program) => program.push(Op::FlockExclusive { fd }),
            OpSink::Patch(patcher) => patcher.flock_exclusive(fd),
        }
    }

    fn flock_unlock(&mut self, fd: FdId) {
        match self {
            OpSink::Build(program) => program.push(Op::FlockUnlock { fd }),
            OpSink::Patch(patcher) => patcher.flock_unlock(fd),
        }
    }

    fn timestamp_start(&mut self, slot: u32) {
        match self {
            OpSink::Build(program) => program.push(Op::TimestampStart { slot }),
            OpSink::Patch(patcher) => patcher.timestamp_start(slot),
        }
    }

    fn timestamp_end(&mut self, slot: u32) {
        match self {
            OpSink::Build(program) => program.push(Op::TimestampEnd { slot }),
            OpSink::Patch(patcher) => patcher.timestamp_end(slot),
        }
    }

    fn barrier(&mut self, id: u32) {
        match self {
            OpSink::Build(program) => program.push(Op::Barrier { id }),
            OpSink::Patch(patcher) => patcher.barrier(id),
        }
    }

    /// `true` iff the sink's whole target was produced/visited consistently
    /// (always true for builds; for patches, see [`ProgramPatcher::finish`]).
    fn finish(self) -> bool {
        match self {
            OpSink::Build(_) => true,
            OpSink::Patch(patcher) => patcher.finish(),
        }
    }
}

/// The single source of truth for the Trojan/Spy op sequences of a plan.
///
/// Drives a pair of [`OpSink`]s: with `Build` sinks this is program
/// compilation; with `Patch` sinks it replays the identical sequence over a
/// cached same-shape pair, rewriting every duration in place without
/// allocating. Only duration-bearing calls (`sleep_for`, `compute`,
/// `set_timer`) depend on the plan's durations, so a patch replay leaves
/// structure untouched by construction.
// lint: warm-path
fn emit_programs(plan: &TransmissionPlan, trojan: &mut OpSink<'_>, spy: &mut OpSink<'_>) {
    let slot_work = plan.trojan_slot_work.to_nanos();
    let h = HandleId::new(1);
    let fd_spy = FdId::new(3);
    let fd_trojan = FdId::new(4);
    // lint: allow(warm-path-alloc) — lazy thunk: only Build sinks invoke it, never a patch replay
    let object_name = || format!("mes-{}", plan.mechanism.as_str());
    // lint: allow(warm-path-alloc) — lazy thunk: only Build sinks invoke it, never a patch replay
    let file_path = || "/shared/mes-attacks-file".to_string();

    // --- setup ----------------------------------------------------------
    match plan.mechanism {
        Mechanism::Flock | Mechanism::FileLockEx => {
            spy.open_file(file_path, fd_spy);
            trojan.open_file(file_path, fd_trojan);
        }
        Mechanism::Mutex => {
            spy.create_object(object_name, ObjectKind::Mutex, h);
            trojan.compute(Micros::new(10).to_nanos());
            trojan.open_object(object_name, h);
        }
        Mechanism::Semaphore => {
            // Deferred-release scheme (see `protocol::semaphore`): the
            // pool starts empty and the Trojan produces one unit per bit,
            // so the Spy's wait latency carries the bit value.
            let slots = plan.actions.len() as u32;
            spy.create_object(
                object_name,
                ObjectKind::semaphore(0, plan.provisioned_resources + slots + 1),
                h,
            );
            trojan.compute(Micros::new(10).to_nanos());
            trojan.open_object(object_name, h);
        }
        Mechanism::Event => {
            spy.create_object(object_name, ObjectKind::event_auto_reset(), h);
            trojan.compute(Micros::new(10).to_nanos());
            trojan.open_object(object_name, h);
        }
        Mechanism::Timer => {
            spy.create_object(object_name, ObjectKind::Timer, h);
            trojan.compute(Micros::new(10).to_nanos());
            trojan.open_object(object_name, h);
        }
    }

    // --- per-slot body ---------------------------------------------------
    let contention_like = matches!(
        plan.mechanism,
        Mechanism::Flock | Mechanism::FileLockEx | Mechanism::Mutex | Mechanism::Semaphore
    );
    for (index, action) in plan.actions.iter().enumerate() {
        let slot = index as u32;
        if contention_like && plan.inter_bit_sync {
            trojan.barrier(slot);
            spy.barrier(slot);
        }

        // Trojan side.
        match (plan.mechanism, action) {
            (Mechanism::Flock | Mechanism::FileLockEx, SlotAction::Occupy(hold)) => {
                trojan.flock_exclusive(fd_trojan);
                trojan.sleep_for(hold.to_nanos());
                trojan.flock_unlock(fd_trojan);
            }
            (Mechanism::Mutex, SlotAction::Occupy(hold)) => {
                trojan.wait_for_single_object(h);
                trojan.sleep_for(hold.to_nanos());
                trojan.release_mutex(h);
            }
            (Mechanism::Semaphore, SlotAction::SignalAfter(delay)) => {
                trojan.sleep_for(delay.to_nanos());
                trojan.release_semaphore(h, 1);
            }
            (Mechanism::Event, SlotAction::SignalAfter(delay)) => {
                trojan.sleep_for(delay.to_nanos());
                trojan.set_event(h);
            }
            (Mechanism::Timer, SlotAction::SignalAfter(delay)) => {
                trojan.sleep_for(delay.to_nanos());
                trojan.set_timer(h, Micros::new(1).to_nanos());
            }
            // Idle slots (and defensively, occupy on signalling channels):
            // the Trojan just sleeps away from the resource.
            (_, action) => {
                trojan.sleep_for(action.duration().to_nanos());
            }
        }
        if slot_work > Nanos::ZERO {
            trojan.compute(slot_work);
        }

        // Spy side.
        match plan.mechanism {
            Mechanism::Flock | Mechanism::FileLockEx => {
                spy.compute(plan.spy_offset.to_nanos());
                spy.timestamp_start(slot);
                spy.flock_exclusive(fd_spy);
                spy.flock_unlock(fd_spy);
                spy.timestamp_end(slot);
            }
            Mechanism::Mutex => {
                spy.compute(plan.spy_offset.to_nanos());
                spy.timestamp_start(slot);
                spy.wait_for_single_object(h);
                spy.release_mutex(h);
                spy.timestamp_end(slot);
            }
            Mechanism::Semaphore | Mechanism::Event | Mechanism::Timer => {
                spy.timestamp_start(slot);
                spy.wait_for_single_object(h);
                spy.timestamp_end(slot);
            }
        }
        if contention_like && !plan.inter_bit_sync {
            // Without fine-grained synchronization the Spy paces itself
            // with SLEEP_PERIOD_2, as in Protocol 1 — and drifts.
            spy.sleep_for(
                plan.actions
                    .get(index)
                    .map(|a| a.duration())
                    .unwrap_or(Micros::ZERO)
                    .saturating_sub(plan.spy_offset)
                    .to_nanos(),
            );
        }
    }
}
// lint: end-warm-path

impl SimBackend {
    /// Patches a cached same-shape program pair to `plan`'s durations by
    /// replaying the generation sequence over the existing ops. Returns
    /// `false` (caller must rebuild) if the replay ever disagrees with the
    /// cached structure — which a correct shape fingerprint rules out, so
    /// this is defence in depth, not an expected path.
    // lint: warm-path
    fn patch_programs(plan: &TransmissionPlan, trojan: &mut Program, spy: &mut Program) -> bool {
        let mut trojan_sink = OpSink::Patch(trojan.patcher());
        let mut spy_sink = OpSink::Patch(spy.patcher());
        emit_programs(plan, &mut trojan_sink, &mut spy_sink);
        let trojan_ok = trojan_sink.finish();
        let spy_ok = spy_sink.finish();
        trojan_ok && spy_ok
    }
    // lint: end-warm-path

    /// The Trojan/Spy programs for `plan`, plus the pair's barrier party
    /// count: the plan shape's cached pair with durations (re-)patched in
    /// place when the shape is resident in the LRU map, a fresh compilation
    /// otherwise (evicting the least-recently-used shape at capacity).
    ///
    /// The warm path patches unconditionally — also when the plan is
    /// unchanged — because the patch replay is idempotent, allocation-free,
    /// and verifies the cached structure op by op. Correctness therefore
    /// never rests on fingerprint equality: a shape-hash collision fails
    /// the structural replay and falls through to recompilation instead of
    /// executing a stale plan's durations. Patching requires unique
    /// ownership of the pair, which [`Engine::reset`] guarantees by
    /// releasing the engine's program references — callers reset before
    /// calling this.
    fn programs_for(&mut self, plan: &TransmissionPlan) -> (Arc<Program>, Arc<Program>, usize) {
        // lint: warm-path
        let shape = plan.shape_fingerprint();
        self.program_tick += 1;
        if let Some(cached) = self.programs.iter_mut().find(|c| c.shape == shape) {
            if let (Some(trojan), Some(spy)) = (
                Arc::get_mut(&mut cached.trojan),
                Arc::get_mut(&mut cached.spy),
            ) {
                if SimBackend::patch_programs(plan, trojan, spy) {
                    cached.tick = self.program_tick;
                    return (
                        Arc::clone(&cached.trojan),
                        Arc::clone(&cached.spy),
                        cached.barrier_parties,
                    );
                }
            }
            // lint: end-warm-path
            // Shape-hash collision or a pair still pinned elsewhere: drop
            // the entry and recompile below. Not an expected path.
            let stale = self
                .programs
                .iter()
                .position(|c| c.shape == shape)
                .expect("entry found above");
            self.programs.swap_remove(stale);
        }
        let (trojan, spy) = self.build_programs(plan);
        let barrier_parties = [&trojan, &spy]
            .into_iter()
            .filter(|program| {
                program
                    .ops()
                    .iter()
                    .any(|op| matches!(op, Op::Barrier { .. }))
            })
            .count()
            .max(1);
        if self.programs.len() >= PROGRAM_CACHE_SHAPES {
            let oldest = self
                .programs
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.tick)
                .map(|(index, _)| index)
                .expect("cache is non-empty at capacity");
            self.programs.swap_remove(oldest);
        }
        let cached = CachedPrograms {
            shape,
            trojan: Arc::new(trojan),
            spy: Arc::new(spy),
            barrier_parties,
            tick: self.program_tick,
        };
        let programs = (
            Arc::clone(&cached.trojan),
            Arc::clone(&cached.spy),
            barrier_parties,
        );
        self.programs.push(cached);
        programs
    }

    /// Runs one round on the reused engine with a fully determined seed.
    fn run_with_seed(&mut self, plan: &TransmissionPlan, seed: u64) -> Result<Observation> {
        // lint: warm-path
        // Reset the engine *before* resolving the programs: the reset
        // releases the engine's `Arc<Program>` references, which is what
        // lets `programs_for` patch the cached pair in place.
        let noise = self.profile.noise_for(plan.mechanism);
        match &mut self.engine {
            Some(engine) => engine.reset(noise, seed),
            slot => {
                slot.get_or_insert_with(|| Engine::new(noise, seed));
            }
        }
        let (trojan, spy, barrier_parties) = self.programs_for(plan);
        let engine = self.engine.as_mut().expect("engine initialised above");
        if let Some(capacity) = self.trace_capacity {
            engine.enable_trace(capacity);
        }
        // Setting the (shape-invariant, cached) party count before the
        // spawns also disables the engine's per-spawn op scan that would
        // otherwise rederive it every round.
        engine.set_barrier_parties(barrier_parties);
        let spy_pid = engine.spawn_shared(spy);
        let _trojan_pid = engine.spawn_shared(trojan);
        engine.run_in_place()?;
        // Order the Spy's windows by slot through the reused scratch buffer;
        // only the returned Observation allocates.
        self.measure_scratch.clear();
        self.measure_scratch
            .extend_from_slice(engine.measurements_of(spy_pid));
        self.measure_scratch.sort_unstable_by_key(|m| m.slot);
        Ok(Observation {
            latencies: self
                .measure_scratch
                .iter()
                .map(Measurement::elapsed)
                // lint: allow(warm-path-alloc) — the Observation is the round's one output value
                .collect(),
            elapsed: engine.end_time(),
        })
    }
    // lint: end-warm-path
}

impl ChannelBackend for SimBackend {
    fn transmit(&mut self, plan: &TransmissionPlan) -> Result<Observation> {
        let seed = self
            .seed
            .wrapping_add(plan.seed)
            .wrapping_add(self.runs.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.runs += 1;
        self.run_with_seed(plan, seed)
    }

    fn transmit_round(&mut self, plan: &TransmissionPlan, round_index: u64) -> Result<Observation> {
        self.runs += 1;
        self.run_with_seed(
            plan,
            round_seed(self.seed, round_index).wrapping_add(plan.seed),
        )
    }

    fn transmit_batch(&mut self, plans: &[TransmissionPlan]) -> Result<Vec<Observation>> {
        // Round-indexed seeding: round `i` of a fresh backend's first batch
        // is bit-identical to
        // `SimBackend::new(profile, round_seed(seed, i)).transmit(&plans[i])`
        // and to what any parallel executor worker computes for the same
        // index. Consecutive batches on one backend continue from the rounds
        // already run, so repeating a batch samples fresh noise instead of
        // silently replaying the previous batch's seeds.
        let base = self.runs;
        plans
            .iter()
            .enumerate()
            .map(|(index, plan)| self.transmit_round(plan, base + index as u64))
            .collect()
    }

    fn name(&self) -> &str {
        "mes-sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChannelConfig;
    use crate::protocol;
    use mes_types::{BitString, Micros, Scenario};

    fn observe(mechanism: Mechanism, bits: &str) -> Observation {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, mechanism).unwrap();
        let wire = BitString::from_str01(bits).unwrap();
        let plan = protocol::encode(&wire, &config, &profile).unwrap();
        let mut backend = SimBackend::new(profile, 99);
        backend.transmit(&plan).unwrap()
    }

    #[test]
    fn every_local_mechanism_produces_one_latency_per_bit() {
        for mechanism in Scenario::Local.mechanisms() {
            let obs = observe(mechanism, "10101100");
            assert_eq!(obs.len(), 8, "{mechanism}");
            assert!(!obs.is_empty());
            assert!(obs.elapsed > Nanos::ZERO);
        }
    }

    #[test]
    fn ones_take_longer_than_zeros_for_every_mechanism() {
        for mechanism in Scenario::Local.mechanisms() {
            let obs = observe(mechanism, "10");
            assert!(
                obs.latencies[0] > obs.latencies[1] + Micros::new(20).to_nanos(),
                "{mechanism}: {:?}",
                obs.latencies
            );
        }
    }

    #[test]
    fn sim_backend_is_reproducible_for_equal_seeds() {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        let wire = BitString::from_str01("1010011").unwrap();
        let plan = protocol::encode(&wire, &config, &profile).unwrap();
        let mut a = SimBackend::new(profile.clone(), 7);
        let mut b = SimBackend::new(profile, 7);
        assert_eq!(a.transmit(&plan).unwrap(), b.transmit(&plan).unwrap());
        assert_eq!(a.runs(), 1);
        assert_eq!(a.name(), "mes-sim");
    }

    #[test]
    fn consecutive_batches_advance_the_round_base() {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        let wire = BitString::from_str01("10100110").unwrap();
        let plan = protocol::encode(&wire, &config, &profile).unwrap();
        let plans = vec![plan; 3];

        let mut backend = SimBackend::new(profile.clone(), 5);
        let first = backend.transmit_batch(&plans).unwrap();
        let second = backend.transmit_batch(&plans).unwrap();
        assert_ne!(first, second, "repeating a batch must sample fresh noise");
        assert_eq!(backend.runs(), 6);

        // The first batch on a fresh backend stays equal to round-seeded
        // fresh backends (the determinism contract).
        for (index, observation) in first.iter().enumerate() {
            let mut fresh = SimBackend::new(profile.clone(), round_seed(5, index as u64));
            assert_eq!(&fresh.transmit(&plans[index]).unwrap(), observation);
        }
    }

    #[test]
    fn consecutive_rounds_differ_but_stay_decodable() {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Flock).unwrap();
        let wire = BitString::from_str01("110010").unwrap();
        let plan = protocol::encode(&wire, &config, &profile).unwrap();
        let mut backend = SimBackend::new(profile, 3);
        let first = backend.transmit(&plan).unwrap();
        let second = backend.transmit(&plan).unwrap();
        assert_ne!(
            first.latencies, second.latencies,
            "noise must differ across rounds"
        );
        assert_eq!(backend.runs(), 2);
    }

    #[test]
    fn cross_vm_file_lock_still_works_in_the_sim() {
        let profile = ScenarioProfile::cross_vm();
        let config =
            ChannelConfig::paper_defaults(Scenario::CrossVm, Mechanism::FileLockEx).unwrap();
        let wire = BitString::from_str01("101").unwrap();
        let plan = protocol::encode(&wire, &config, &profile).unwrap();
        let mut backend = SimBackend::new(profile, 1);
        let obs = backend.transmit(&plan).unwrap();
        assert_eq!(obs.len(), 3);
        assert!(obs.latencies[0] > obs.latencies[1]);
    }

    #[test]
    fn same_shape_plans_patch_in_place_and_stay_bit_identical() {
        // Run plan A (warming the program cache), then plan B of the same
        // shape but different durations on the same backend: B's programs
        // are produced by in-place patching, and the round must be
        // bit-identical to B on a backend that compiled B from scratch.
        let profile = ScenarioProfile::local();
        let wire = mes_types::BitString::from_str01("1010011010").unwrap();
        for mechanism in Scenario::Local.mechanisms() {
            let timing_near = mes_scenario::paper_timeset(Scenario::Local, mechanism).unwrap();
            let timing_far = match timing_near {
                mes_types::ChannelTiming::Cooperation { tw0, ti } => {
                    mes_types::ChannelTiming::cooperation(tw0 + Micros::new(10), ti)
                }
                mes_types::ChannelTiming::Contention { tt1, tt0 } => {
                    mes_types::ChannelTiming::contention(tt1 + Micros::new(40), tt0)
                }
            };
            let plan_a = crate::protocol::encode(
                &wire,
                &crate::config::ChannelConfig::new(mechanism, timing_near).unwrap(),
                &profile,
            )
            .unwrap();
            let plan_b = crate::protocol::encode(
                &wire,
                &crate::config::ChannelConfig::new(mechanism, timing_far).unwrap(),
                &profile,
            )
            .unwrap();
            assert_eq!(
                plan_a.shape_fingerprint(),
                plan_b.shape_fingerprint(),
                "{mechanism}: same wire bits must share a shape"
            );
            assert_ne!(plan_a.fingerprint(), plan_b.fingerprint(), "{mechanism}");

            let mut patched = SimBackend::new(profile.clone(), 7);
            patched.transmit_round(&plan_a, 0).unwrap();
            let via_patch = patched.transmit_round(&plan_b, 1).unwrap();

            let mut fresh = SimBackend::new(profile.clone(), 7);
            let via_build = fresh.transmit_round(&plan_b, 1).unwrap();
            assert_eq!(
                via_patch, via_build,
                "{mechanism}: patched programs must execute bit-identically"
            );

            // And the patched pair is op-identical to a fresh compilation.
            let (expect_trojan, expect_spy) = patched.build_programs(&plan_b);
            let cached = patched
                .programs
                .iter()
                .find(|c| c.shape == plan_b.shape_fingerprint())
                .unwrap();
            assert_eq!(cached.trojan.ops(), expect_trojan.ops(), "{mechanism}");
            assert_eq!(cached.spy.ops(), expect_spy.ops(), "{mechanism}");
        }
    }

    #[test]
    fn shape_change_recompiles_correctly() {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Flock).unwrap();
        let a =
            protocol::encode(&BitString::from_str01("1100").unwrap(), &config, &profile).unwrap();
        let b =
            protocol::encode(&BitString::from_str01("0011").unwrap(), &config, &profile).unwrap();
        assert_ne!(a.shape_fingerprint(), b.shape_fingerprint());

        let mut backend = SimBackend::new(profile.clone(), 5);
        backend.transmit_round(&a, 0).unwrap();
        let switched = backend.transmit_round(&b, 1).unwrap();
        let fresh = SimBackend::new(profile, 5).transmit_round(&b, 1).unwrap();
        assert_eq!(switched, fresh);
    }

    #[test]
    fn interleaved_shapes_stay_resident_and_bit_identical() {
        // Alternating between two shapes must keep BOTH pairs cached (the
        // old single-slot cache recompiled on every switch) and stay
        // bit-identical to fresh per-round backends.
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Flock).unwrap();
        let a =
            protocol::encode(&BitString::from_str01("1100").unwrap(), &config, &profile).unwrap();
        let b =
            protocol::encode(&BitString::from_str01("0011").unwrap(), &config, &profile).unwrap();
        assert_ne!(a.shape_fingerprint(), b.shape_fingerprint());

        let mut backend = SimBackend::new(profile.clone(), 5);
        for round in 0..6u64 {
            let plan = if round % 2 == 0 { &a } else { &b };
            let interleaved = backend.transmit_round(plan, round).unwrap();
            let fresh = SimBackend::new(profile.clone(), 5)
                .transmit_round(plan, round)
                .unwrap();
            assert_eq!(interleaved, fresh, "round {round}");
        }
        assert_eq!(
            backend.programs.len(),
            2,
            "both shapes must stay resident across interleaved traffic"
        );
    }

    #[test]
    fn program_cache_evicts_the_least_recently_used_shape() {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        let mut backend = SimBackend::new(profile.clone(), 9);
        // Payload length is part of the shape, so each length is a shape.
        let mut first_shape = None;
        for length in 1..=(PROGRAM_CACHE_SHAPES + 2) {
            let wire = BitString::from_str01(&"10".repeat(length)).unwrap();
            let plan = protocol::encode(&wire, &config, &profile).unwrap();
            first_shape.get_or_insert(plan.shape_fingerprint());
            backend.transmit_round(&plan, length as u64).unwrap();
            assert!(backend.programs.len() <= PROGRAM_CACHE_SHAPES);
        }
        assert_eq!(backend.programs.len(), PROGRAM_CACHE_SHAPES);
        let first_shape = first_shape.unwrap();
        assert!(
            !backend.programs.iter().any(|c| c.shape == first_shape),
            "the oldest shape must have been evicted"
        );
    }

    #[test]
    fn build_programs_have_expected_shape() {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
        let wire = BitString::from_str01("10").unwrap();
        let plan = protocol::encode(&wire, &config, &profile).unwrap();
        let backend = SimBackend::new(profile, 1).with_trace(16);
        let (trojan, spy) = backend.build_programs(&plan);
        assert!(trojan.len() >= 2 + 2 * wire.len());
        assert!(spy.len() > 3 * wire.len());
        assert_eq!(backend.profile().scenario(), Scenario::Local);
    }
}
