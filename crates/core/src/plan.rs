//! Transmission plans: the mechanism-independent description of what the
//! Trojan does for each transmitted slot.
//!
//! Every MES-Attack boils down to a sequence of per-slot decisions by the
//! Trojan: occupy the critical resource for a while, stay away from it, or
//! satisfy the synchronization condition after a delay. A
//! [`TransmissionPlan`] captures that sequence plus the coordination
//! parameters, and a backend (simulated or real) turns it into actual lock
//! and signal operations while the Spy measures its constraint times.

use crate::config::ChannelConfig;
use mes_types::{Fnv64, Mechanism, Micros};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// What the Trojan does during one transmitted slot (bit or symbol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotAction {
    /// Contention channels, logical `1`: enter the critical section and hold
    /// the resource for the given time; the Spy's acquisition blocks.
    Occupy(Micros),
    /// Contention channels, logical `0`: sleep away from the resource for the
    /// given time; the Spy acquires immediately.
    Idle(Micros),
    /// Cooperation channels (and the semaphore's resource production): wait
    /// for the given time, then satisfy the Spy's wait condition.
    SignalAfter(Micros),
}

impl SlotAction {
    /// The nominal duration the Trojan spends on this slot.
    pub fn duration(&self) -> Micros {
        match *self {
            SlotAction::Occupy(d) | SlotAction::Idle(d) | SlotAction::SignalAfter(d) => d,
        }
    }

    /// Whether the action releases the Spy by signalling (as opposed to the
    /// Spy acquiring a contended resource).
    pub fn is_signal(&self) -> bool {
        matches!(self, SlotAction::SignalAfter(_))
    }

    /// The action's kind, ignoring its duration — the per-slot unit of a
    /// plan's *shape* (see [`TransmissionPlan::shape_fingerprint`]).
    fn kind_tag(&self) -> u8 {
        match self {
            SlotAction::Occupy(_) => 0,
            SlotAction::Idle(_) => 1,
            SlotAction::SignalAfter(_) => 2,
        }
    }
}

/// A complete, mechanism-annotated plan for one transmission round.
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub struct TransmissionPlan {
    /// The MESM carrying the transmission.
    pub mechanism: Mechanism,
    /// Per-slot Trojan actions, in transmission order.
    pub actions: Vec<SlotAction>,
    /// The Spy's delay into each contention slot before it attempts to
    /// acquire the resource.
    pub spy_offset: Micros,
    /// Whether a fine-grained inter-slot barrier keeps the two processes
    /// aligned (contention channels only; cooperation channels are
    /// self-synchronising).
    pub inter_bit_sync: bool,
    /// Extra per-slot busy time on the Trojan side representing the protocol
    /// processing the paper's calibration attributes to each bit.
    pub trojan_slot_work: Micros,
    /// Semaphore channels: resources provisioned before the round starts
    /// (Tables II/III of the paper). Zero for every other mechanism.
    pub provisioned_resources: u32,
    /// RNG seed for the backend run.
    pub seed: u64,
}

impl TransmissionPlan {
    /// Creates a plan from per-slot actions and a channel configuration.
    pub fn new(actions: Vec<SlotAction>, config: &ChannelConfig) -> Self {
        TransmissionPlan {
            mechanism: config.mechanism,
            actions,
            spy_offset: config.spy_offset,
            inter_bit_sync: config.inter_bit_sync,
            trojan_slot_work: Micros::ZERO,
            provisioned_resources: 0,
            seed: config.seed,
        }
    }

    /// Sets the per-slot protocol work (builder style).
    pub fn with_slot_work(mut self, work: Micros) -> Self {
        self.trojan_slot_work = work;
        self
    }

    /// Sets the pre-provisioned semaphore resources (builder style).
    pub fn with_provisioned_resources(mut self, resources: u32) -> Self {
        self.provisioned_resources = resources;
        self
    }

    /// Overrides the seed (used when repeating a plan across runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of slots in the plan.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the plan has no slots.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The plan's structural fingerprint, covering every field that
    /// influences execution (actions with their durations, timing, sync
    /// flags, seed). Equal plans always fingerprint equally; this is the
    /// exact-plan cache key of the experiment layer, computed without
    /// allocating.
    pub fn fingerprint(&self) -> u64 {
        mes_types::fingerprint_of(self)
    }

    /// The plan's *shape* fingerprint: everything that determines the
    /// compiled Trojan/Spy program **structure**, deliberately excluding
    /// every duration (slot times, spy offset, per-slot work) and the seed.
    ///
    /// Two plans with equal shapes compile to op-for-op identical programs
    /// up to the durations carried inside the ops, which is what lets
    /// `SimBackend` patch a cached program pair in place instead of
    /// recompiling when a duration sweep moves to its next point. Covered:
    /// the mechanism, the per-slot action kinds (in order), the inter-bit
    /// sync flag, the provisioned semaphore resources (they size the created
    /// kernel object) and whether any per-slot protocol work exists at all
    /// (zero work emits no `Compute` op).
    pub fn shape_fingerprint(&self) -> u64 {
        let mut hasher = Fnv64::new();
        self.mechanism.hash(&mut hasher);
        self.inter_bit_sync.hash(&mut hasher);
        self.provisioned_resources.hash(&mut hasher);
        (self.trojan_slot_work > Micros::ZERO).hash(&mut hasher);
        (self.actions.len() as u64).hash(&mut hasher);
        for action in &self.actions {
            hasher.write_u8(action.kind_tag());
        }
        hasher.finish()
    }

    /// Sum of the nominal slot durations — a lower bound on the transmission
    /// time.
    pub fn nominal_duration(&self) -> Micros {
        self.actions
            .iter()
            .map(SlotAction::duration)
            .sum::<Micros>()
            + self.trojan_slot_work * self.actions.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_types::{ChannelTiming, Scenario};

    fn config() -> ChannelConfig {
        ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Flock).unwrap()
    }

    #[test]
    fn slot_action_accessors() {
        assert_eq!(
            SlotAction::Occupy(Micros::new(160)).duration(),
            Micros::new(160)
        );
        assert_eq!(
            SlotAction::Idle(Micros::new(60)).duration(),
            Micros::new(60)
        );
        assert!(SlotAction::SignalAfter(Micros::new(15)).is_signal());
        assert!(!SlotAction::Occupy(Micros::new(1)).is_signal());
    }

    #[test]
    fn plan_inherits_config_parameters() {
        let cfg = config();
        let plan = TransmissionPlan::new(vec![SlotAction::Idle(Micros::new(60))], &cfg);
        assert_eq!(plan.mechanism, Mechanism::Flock);
        assert_eq!(plan.spy_offset, cfg.spy_offset);
        assert!(plan.inter_bit_sync);
        assert_eq!(plan.seed, cfg.seed);
        assert_eq!(plan.provisioned_resources, 0);
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_empty());
    }

    #[test]
    fn nominal_duration_includes_slot_work() {
        let cfg = config();
        let plan = TransmissionPlan::new(
            vec![
                SlotAction::Occupy(Micros::new(160)),
                SlotAction::Idle(Micros::new(60)),
            ],
            &cfg,
        )
        .with_slot_work(Micros::new(20));
        assert_eq!(plan.nominal_duration(), Micros::new(160 + 60 + 40));
    }

    #[test]
    fn shape_fingerprint_ignores_durations_but_not_structure() {
        let cfg = config();
        let base = TransmissionPlan::new(
            vec![
                SlotAction::Occupy(Micros::new(160)),
                SlotAction::Idle(Micros::new(60)),
            ],
            &cfg,
        );
        // Same kinds, different durations, different seed: same shape,
        // different exact fingerprint.
        let stretched = TransmissionPlan::new(
            vec![
                SlotAction::Occupy(Micros::new(320)),
                SlotAction::Idle(Micros::new(90)),
            ],
            &cfg,
        )
        .with_seed(base.seed ^ 1);
        assert_eq!(base.shape_fingerprint(), stretched.shape_fingerprint());
        assert_ne!(base.fingerprint(), stretched.fingerprint());

        // Flipping an action kind, the sync flag, the provisioned resources
        // or the existence of slot work all change the shape.
        let flipped = TransmissionPlan::new(
            vec![
                SlotAction::Idle(Micros::new(160)),
                SlotAction::Idle(Micros::new(60)),
            ],
            &cfg,
        );
        assert_ne!(base.shape_fingerprint(), flipped.shape_fingerprint());
        let mut unsynced = base.clone();
        unsynced.inter_bit_sync = false;
        assert_ne!(base.shape_fingerprint(), unsynced.shape_fingerprint());
        let provisioned = base.clone().with_provisioned_resources(3);
        assert_ne!(base.shape_fingerprint(), provisioned.shape_fingerprint());
        let worked = base.clone().with_slot_work(Micros::new(5));
        assert_ne!(base.shape_fingerprint(), worked.shape_fingerprint());
        // ... but the *value* of nonzero slot work is a duration, not shape.
        let worked_more = base.clone().with_slot_work(Micros::new(9));
        assert_eq!(worked.shape_fingerprint(), worked_more.shape_fingerprint());
    }

    #[test]
    fn equal_plans_fingerprint_equally() {
        let cfg = config();
        let plan = TransmissionPlan::new(vec![SlotAction::Occupy(Micros::new(160))], &cfg);
        assert_eq!(plan.fingerprint(), plan.clone().fingerprint());
        assert_ne!(
            plan.fingerprint(),
            plan.clone().with_seed(plan.seed ^ 1).fingerprint()
        );
    }

    #[test]
    fn builders_override_fields() {
        let cfg = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Semaphore).unwrap();
        let plan = TransmissionPlan::new(vec![], &cfg)
            .with_provisioned_resources(5)
            .with_seed(11)
            .with_slot_work(Micros::new(3));
        assert_eq!(plan.provisioned_resources, 5);
        assert_eq!(plan.seed, 11);
        assert_eq!(plan.trojan_slot_work, Micros::new(3));
        assert!(plan.is_empty());
        let timing = ChannelTiming::contention(Micros::new(230), Micros::new(100));
        assert_eq!(cfg.timing, timing);
    }
}
