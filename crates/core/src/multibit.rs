//! Multi-bit symbol transmission (Section VI of the paper).
//!
//! Instead of one wait time per bit value, the Trojan and Spy agree on an
//! alphabet of 2^k wait times and move k bits per constraint release. The
//! paper evaluates this on the local Event channel: 2-bit symbols at 15, 65,
//! 115 and 165 µs lift the rate from 13.105 kb/s to ≈ 15.095 kb/s, while
//! 3-bit symbols stop paying off because the long wait times dominate.

use crate::backend::ChannelBackend;
use crate::config::ChannelConfig;
use crate::plan::{SlotAction, TransmissionPlan};
use mes_coding::{SymbolAlphabet, SymbolDecoder};
use mes_scenario::ScenarioProfile;
use mes_stats::{BerReport, ThroughputReport};
use mes_types::{BitString, Mechanism, Nanos, Result};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Result of one multi-bit symbol transmission round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymbolTransmissionReport {
    sent_bits: BitString,
    received_bits: BitString,
    sent_symbols: Vec<usize>,
    received_symbols: Vec<usize>,
    latencies: Vec<Nanos>,
    elapsed: Nanos,
    bits_per_symbol: u8,
}

impl SymbolTransmissionReport {
    /// The bits handed to the encoder.
    pub fn sent_bits(&self) -> &BitString {
        &self.sent_bits
    }

    /// The bits recovered by the Spy (may include zero padding in the last
    /// symbol).
    pub fn received_bits(&self) -> &BitString {
        &self.received_bits
    }

    /// The transmitted symbol values.
    pub fn sent_symbols(&self) -> &[usize] {
        &self.sent_symbols
    }

    /// The symbol values the Spy decoded.
    pub fn received_symbols(&self) -> &[usize] {
        &self.received_symbols
    }

    /// The Spy's raw latencies, one per symbol.
    pub fn latencies(&self) -> &[Nanos] {
        &self.latencies
    }

    /// Bits per symbol used for the round.
    pub fn bits_per_symbol(&self) -> u8 {
        self.bits_per_symbol
    }

    /// Bit error rate over the transmitted bits.
    pub fn ber(&self) -> BerReport {
        let received = self
            .received_bits
            .slice(0, self.sent_bits.len().min(self.received_bits.len()));
        BerReport::compare(&self.sent_bits, &received)
    }

    /// Fraction of symbols decoded incorrectly.
    pub fn symbol_error_rate(&self) -> f64 {
        if self.sent_symbols.is_empty() {
            return 0.0;
        }
        let errors = self
            .sent_symbols
            .iter()
            .zip(self.received_symbols.iter())
            .filter(|(a, b)| a != b)
            .count();
        errors as f64 / self.sent_symbols.len() as f64
    }

    /// Transmission rate in payload bits over elapsed time.
    pub fn throughput(&self) -> ThroughputReport {
        ThroughputReport::new(self.sent_bits.len() as u64, self.elapsed)
    }

    /// Total elapsed time.
    pub fn elapsed(&self) -> Nanos {
        self.elapsed
    }
}

/// A multi-bit symbol channel over a cooperation mechanism.
#[derive(Debug, Clone)]
pub struct SymbolChannel {
    alphabet: SymbolAlphabet,
    mechanism: Mechanism,
    profile: Arc<ScenarioProfile>,
    seed: u64,
    /// Number of known calibration symbols (one full sweep of the alphabet)
    /// prepended so the Spy can estimate the protocol-overhead offset.
    calibration_sweeps: usize,
}

impl SymbolChannel {
    /// Creates a symbol channel on a cooperation mechanism.
    ///
    /// # Errors
    ///
    /// Returns an error if the mechanism is not cooperation-based (symbols
    /// need the Trojan to control the release time directly) or is not
    /// available in the profile's scenario.
    pub fn new(
        alphabet: SymbolAlphabet,
        mechanism: Mechanism,
        profile: impl Into<Arc<ScenarioProfile>>,
        seed: u64,
    ) -> Result<Self> {
        let profile = profile.into();
        profile.require(mechanism)?;
        if !mechanism.is_cooperation_based() {
            return Err(mes_types::MesError::InvalidConfig {
                reason: format!(
                    "multi-bit symbols require a cooperation mechanism, {mechanism} is contention-based"
                ),
            });
        }
        Ok(SymbolChannel {
            alphabet,
            mechanism,
            profile,
            seed,
            calibration_sweeps: 1,
        })
    }

    /// The paper's Section VI setup: 2-bit symbols on the local Event channel.
    ///
    /// # Errors
    ///
    /// Propagates [`SymbolChannel::new`] errors (none for this combination).
    pub fn paper_section_six(profile: impl Into<Arc<ScenarioProfile>>, seed: u64) -> Result<Self> {
        SymbolChannel::new(
            SymbolAlphabet::paper_two_bit(),
            Mechanism::Event,
            profile,
            seed,
        )
    }

    /// The alphabet in use.
    pub fn alphabet(&self) -> &SymbolAlphabet {
        &self.alphabet
    }

    /// Builds the transmission plan for a bit payload: calibration symbols
    /// (one per alphabet entry) followed by the payload symbols.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty payload.
    pub fn plan(&self, payload: &BitString) -> Result<(Vec<usize>, TransmissionPlan)> {
        let symbols = self.alphabet.encode(payload)?;
        let mut all_symbols: Vec<usize> = Vec::new();
        for _ in 0..self.calibration_sweeps {
            all_symbols.extend(0..self.alphabet.symbol_count());
        }
        all_symbols.extend(symbols.iter().copied());
        let actions: Vec<SlotAction> = all_symbols
            .iter()
            .map(|&s| SlotAction::SignalAfter(self.alphabet.duration_of(s)))
            .collect();
        let config = ChannelConfig::new(
            self.mechanism,
            mes_types::ChannelTiming::cooperation(
                self.alphabet.duration_of(0),
                self.alphabet.duration_of(self.alphabet.symbol_count() - 1)
                    - self.alphabet.duration_of(0),
            ),
        )?
        .with_seed(self.seed);
        let overhead = self.profile.protocol_overhead(self.mechanism);
        let estimate = crate::protocol::estimated_backend_overhead(
            &self.profile.noise_for(self.mechanism),
            self.mechanism,
        );
        let plan = TransmissionPlan::new(actions, &config)
            .with_slot_work(overhead.saturating_sub(estimate));
        Ok((symbols, plan))
    }

    /// Transmits a payload as symbols and decodes the Spy's latencies.
    ///
    /// # Errors
    ///
    /// Returns an error if the plan cannot be built or the backend fails.
    pub fn transmit(
        &self,
        payload: &BitString,
        backend: &mut dyn ChannelBackend,
    ) -> Result<SymbolTransmissionReport> {
        let (sent_symbols, plan) = self.plan(payload)?;
        let observation = backend.transmit(&plan)?;
        self.recover(payload, &sent_symbols, &observation)
    }

    /// Transmits one round per payload as a single batch (see
    /// [`ChannelBackend::transmit_batch`]) and decodes every round, in
    /// payload order.
    ///
    /// # Errors
    ///
    /// Returns an error if any plan cannot be built, the backend fails, or a
    /// round observed fewer latencies than it has symbols.
    pub fn transmit_many(
        &self,
        payloads: &[BitString],
        backend: &mut dyn ChannelBackend,
    ) -> Result<Vec<SymbolTransmissionReport>> {
        let mut sent = Vec::with_capacity(payloads.len());
        let mut plans = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let (symbols, plan) = self.plan(payload)?;
            sent.push(symbols);
            plans.push(plan);
        }
        let observations = backend.transmit_batch(&plans)?;
        payloads
            .iter()
            .zip(sent.iter())
            .zip(observations.iter())
            .map(|((payload, symbols), observation)| self.recover(payload, symbols, observation))
            .collect()
    }

    /// Decodes one round's observation against the symbols that were sent.
    /// Exposed separately so batched executions can reuse observations.
    ///
    /// # Errors
    ///
    /// Returns [`mes_types::MesError::FrameRecovery`] if the observation has
    /// fewer latencies than calibration + payload symbols.
    pub fn recover(
        &self,
        payload: &BitString,
        sent_symbols: &[usize],
        observation: &crate::backend::Observation,
    ) -> Result<SymbolTransmissionReport> {
        let calibration_count = self.calibration_sweeps * self.alphabet.symbol_count();
        if observation.latencies.len() < calibration_count + sent_symbols.len() {
            return Err(mes_types::MesError::FrameRecovery {
                reason: format!(
                    "observed {} latencies for {} symbols",
                    observation.latencies.len(),
                    calibration_count + sent_symbols.len()
                ),
            });
        }

        // Estimate the per-symbol protocol offset from the known calibration
        // symbols (0, 1, …, N-1 in order).
        let mut offset_sum = 0i128;
        for sweep in 0..self.calibration_sweeps {
            for value in 0..self.alphabet.symbol_count() {
                let index = sweep * self.alphabet.symbol_count() + value;
                let observed = observation.latencies[index].as_u64() as i128;
                let nominal = self.alphabet.duration_of(value).to_nanos().as_u64() as i128;
                offset_sum += observed - nominal;
            }
        }
        let offset = (offset_sum / calibration_count as i128).max(0) as u64;
        let decoder = SymbolDecoder::new(self.alphabet.clone(), Nanos::new(offset));

        let payload_latencies = &observation.latencies[calibration_count..];
        let received_symbols: Vec<usize> = payload_latencies
            .iter()
            .map(|&l| decoder.decode(l))
            .collect();
        let received_bits = self.alphabet.decode_symbols(&received_symbols);

        Ok(SymbolTransmissionReport {
            sent_bits: payload.clone(),
            received_bits,
            sent_symbols: sent_symbols.to_vec(),
            received_symbols,
            latencies: payload_latencies.to_vec(),
            elapsed: observation.elapsed,
            bits_per_symbol: self.alphabet.bits_per_symbol(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use mes_coding::BitSource;
    use mes_types::Micros;

    #[test]
    fn two_bit_symbols_roundtrip_locally() {
        let profile = ScenarioProfile::local();
        let channel = SymbolChannel::paper_section_six(profile.clone(), 5).unwrap();
        let mut backend = SimBackend::new(profile, 5);
        let payload = BitSource::new(17).random_bits(200);
        let report = channel.transmit(&payload, &mut backend).unwrap();
        // Symbol decisions have two boundaries instead of one, so the error
        // rate sits a few times above the binary channel's ~0.5%.
        assert!(
            report.ber().ber_percent() < 6.0,
            "BER {}",
            report.ber().ber_percent()
        );
        assert!(report.symbol_error_rate() < 0.08);
        assert_eq!(report.bits_per_symbol(), 2);
        assert_eq!(report.sent_symbols().len(), 100);
        assert_eq!(report.received_symbols().len(), 100);
        assert_eq!(report.latencies().len(), 100);
        assert!(report.elapsed() > Nanos::ZERO);
    }

    #[test]
    fn two_bit_symbols_are_faster_than_one_bit() {
        let profile = ScenarioProfile::local();
        let payload = BitSource::new(3).random_bits(400);

        let one_bit = SymbolChannel::new(
            SymbolAlphabet::evenly_spaced(1, Micros::new(15), Micros::new(65)).unwrap(),
            Mechanism::Event,
            profile.clone(),
            1,
        )
        .unwrap();
        let two_bit = SymbolChannel::paper_section_six(profile.clone(), 1).unwrap();

        let mut backend = SimBackend::new(profile, 1);
        let slow = one_bit.transmit(&payload, &mut backend).unwrap();
        let fast = two_bit.transmit(&payload, &mut backend).unwrap();
        assert!(
            fast.throughput().kilobits_per_second() > slow.throughput().kilobits_per_second(),
            "2-bit {:.3} kb/s should beat 1-bit {:.3} kb/s",
            fast.throughput().kilobits_per_second(),
            slow.throughput().kilobits_per_second()
        );
    }

    #[test]
    fn contention_mechanisms_are_rejected() {
        let profile = ScenarioProfile::local();
        let err = SymbolChannel::new(
            SymbolAlphabet::paper_two_bit(),
            Mechanism::Flock,
            profile,
            1,
        );
        assert!(err.is_err());
    }

    #[test]
    fn cross_vm_symbol_channel_is_unavailable() {
        let profile = ScenarioProfile::cross_vm();
        assert!(SymbolChannel::paper_section_six(profile, 1).is_err());
    }

    #[test]
    fn empty_payload_is_rejected() {
        let profile = ScenarioProfile::local();
        let channel = SymbolChannel::paper_section_six(profile.clone(), 1).unwrap();
        assert!(channel.plan(&BitString::new()).is_err());
        assert_eq!(channel.alphabet().symbol_count(), 4);
    }
}
