//! `mes-scenario` — deployment profiles for the three scenarios the paper
//! evaluates: local, cross-sandbox and cross-VM.
//!
//! A [`ScenarioProfile`] bundles everything that changes when the Trojan and
//! Spy move apart:
//!
//! * the [`NoiseModel`] of the path between them (sandboxes lengthen every
//!   syscall, VMs add virtualization-exit latency and jitter);
//! * the *session* each process runs in, which is what makes ordinary kernel
//!   objects invisible across VMs (Section V.C.3 of the paper);
//! * which mechanisms are usable at all;
//! * the calibration constants fitted from the paper's own tables
//!   ([`calibration`]), so the regenerated tables land near the published
//!   numbers on any machine.
//!
//! # Examples
//!
//! ```
//! use mes_scenario::ScenarioProfile;
//! use mes_types::{Mechanism, Scenario};
//!
//! let local = ScenarioProfile::local();
//! assert!(local.supports(Mechanism::Event));
//!
//! let cross_vm = ScenarioProfile::cross_vm();
//! assert!(!cross_vm.supports(Mechanism::Event));
//! assert!(cross_vm.supports(Mechanism::FileLockEx));
//! assert_ne!(cross_vm.trojan_session(), cross_vm.spy_session());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;

use mes_sim::{NoiseModel, SessionId};
use mes_types::{ChannelTiming, Mechanism, MesError, Micros, Result, Scenario};
use serde::{Deserialize, Serialize};

pub use calibration::{
    paper_ber_percent, paper_timeset, paper_timeset_grid, paper_tr_kbps, protocol_overhead,
};

/// Everything the channel layer needs to know about where the Trojan and the
/// Spy run.
///
/// `Hash` is structural (noise-model floats are hashed by bit pattern) and
/// feeds the experiment cache's profile fingerprint; equal profiles always
/// fingerprint equally, and any parameter tweak changes the fingerprint.
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub struct ScenarioProfile {
    scenario: Scenario,
    noise: NoiseModel,
    trojan_session: SessionId,
    spy_session: SessionId,
    /// Extra one-way latency added to every cross-boundary wake-up, on top
    /// of the local wait-wakeup latency (µs). Models the longer paths the
    /// paper attributes to sandbox escapes and inter-VM transitions.
    boundary_latency: Micros,
}

impl ScenarioProfile {
    /// The local scenario: both processes on the same machine and session.
    pub fn local() -> Self {
        ScenarioProfile {
            scenario: Scenario::Local,
            noise: NoiseModel::calibrated_local(),
            trojan_session: SessionId::HOST,
            spy_session: SessionId::HOST,
            boundary_latency: Micros::ZERO,
        }
    }

    /// The cross-sandbox scenario: the Trojan runs inside Firejail/Sandboxie.
    /// The sandbox shares the kernel object namespace with the host but
    /// lengthens and jitters every syscall.
    pub fn cross_sandbox() -> Self {
        ScenarioProfile {
            scenario: Scenario::CrossSandbox,
            noise: NoiseModel::calibrated_local().scaled(1.4, 1.1),
            trojan_session: SessionId::HOST,
            spy_session: SessionId::HOST,
            boundary_latency: Micros::new(3),
        }
    }

    /// The cross-VM scenario: Trojan and Spy run in two different virtual
    /// machines. Only file-backed mechanisms still refer to a shared
    /// resource; everything else is namespaced per session.
    pub fn cross_vm() -> Self {
        ScenarioProfile {
            scenario: Scenario::CrossVm,
            noise: NoiseModel::calibrated_local().scaled(1.9, 1.2),
            trojan_session: SessionId::new(1),
            spy_session: SessionId::new(2),
            boundary_latency: Micros::new(8),
        }
    }

    /// Builds the profile for a scenario.
    pub fn for_scenario(scenario: Scenario) -> Self {
        match scenario {
            Scenario::Local => ScenarioProfile::local(),
            Scenario::CrossSandbox => ScenarioProfile::cross_sandbox(),
            Scenario::CrossVm => ScenarioProfile::cross_vm(),
        }
    }

    /// The scenario this profile describes.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The session the Trojan process runs in.
    pub fn trojan_session(&self) -> SessionId {
        self.trojan_session
    }

    /// The session the Spy process runs in.
    pub fn spy_session(&self) -> SessionId {
        self.spy_session
    }

    /// Extra one-way latency across the isolation boundary.
    pub fn boundary_latency(&self) -> Micros {
        self.boundary_latency
    }

    /// Whether `mechanism` can carry data in this scenario.
    pub fn supports(&self, mechanism: Mechanism) -> bool {
        self.scenario.supports(mechanism)
    }

    /// Validates that `mechanism` works here.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::MechanismUnavailable`] when it does not (e.g.
    /// `Event` across VMs).
    pub fn require(&self, mechanism: Mechanism) -> Result<()> {
        if self.supports(mechanism) {
            Ok(())
        } else {
            Err(MesError::MechanismUnavailable {
                mechanism,
                scenario: self.scenario,
            })
        }
    }

    /// The noise model a channel built on `mechanism` experiences in this
    /// scenario. The Linux-only `flock` channel additionally gets the ≈58 µs
    /// scheduler sleep floor the paper measured.
    pub fn noise_for(&self, mechanism: Mechanism) -> NoiseModel {
        let mut noise = self.noise.clone();
        if mechanism == Mechanism::Flock {
            noise = noise.with_min_sleep(Micros::new(58).to_nanos());
        }
        noise
    }

    /// Replaces the noise model (mainly for ablation experiments).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// The base noise model of the scenario (before per-mechanism tweaks).
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The paper's recommended timing parameters for `mechanism` in this
    /// scenario (the "Timeset" rows of Tables IV–VI).
    ///
    /// # Errors
    ///
    /// Returns [`MesError::MechanismUnavailable`] when the paper does not
    /// evaluate the combination (non-file mechanisms across VMs).
    pub fn paper_timeset(&self, mechanism: Mechanism) -> Result<ChannelTiming> {
        calibration::paper_timeset(self.scenario, mechanism)
    }

    /// The fitted per-bit protocol overhead for `mechanism` in this scenario.
    pub fn protocol_overhead(&self, mechanism: Mechanism) -> Micros {
        calibration::protocol_overhead(self.scenario, mechanism)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_profile_shares_a_session() {
        let local = ScenarioProfile::local();
        assert_eq!(local.trojan_session(), local.spy_session());
        assert_eq!(local.scenario(), Scenario::Local);
        assert_eq!(local.boundary_latency(), Micros::ZERO);
        assert!(local.require(Mechanism::Semaphore).is_ok());
    }

    #[test]
    fn cross_vm_profile_separates_sessions_and_mechanisms() {
        let vm = ScenarioProfile::cross_vm();
        assert_ne!(vm.trojan_session(), vm.spy_session());
        assert!(vm.require(Mechanism::Event).is_err());
        assert!(vm.require(Mechanism::Flock).is_ok());
        assert!(vm.paper_timeset(Mechanism::Mutex).is_err());
        assert!(vm.paper_timeset(Mechanism::FileLockEx).is_ok());
    }

    #[test]
    fn sandbox_profile_is_noisier_than_local() {
        let local = ScenarioProfile::local();
        let sandbox = ScenarioProfile::cross_sandbox();
        assert!(sandbox.noise().costs.wait_call.mean_ns > local.noise().costs.wait_call.mean_ns);
        assert!(sandbox.boundary_latency() > Micros::ZERO);
    }

    #[test]
    fn for_scenario_dispatches() {
        for scenario in Scenario::ALL {
            assert_eq!(ScenarioProfile::for_scenario(scenario).scenario(), scenario);
        }
    }

    #[test]
    fn flock_noise_gets_the_linux_sleep_floor() {
        let local = ScenarioProfile::local();
        let flock_noise = local.noise_for(Mechanism::Flock);
        let event_noise = local.noise_for(Mechanism::Event);
        assert!(flock_noise.min_sleep_ns >= 58_000.0);
        assert_eq!(event_noise.min_sleep_ns, 0.0);
    }

    #[test]
    fn with_noise_overrides_model() {
        let quiet = ScenarioProfile::local().with_noise(NoiseModel::noiseless());
        assert_eq!(quiet.noise(), &NoiseModel::noiseless());
    }
}
