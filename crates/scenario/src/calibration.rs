//! Calibration constants fitted from the paper's own evaluation tables.
//!
//! The paper ran on an Intel i5-7400 (Ubuntu 16.04 / Windows 10); this
//! reproduction runs on a simulator. To keep the regenerated tables
//! comparable we fit one constant per (scenario, mechanism): the per-bit
//! *protocol overhead* — the time a bit costs on top of its programmed
//! constraint duration (receiver loop, syscall entry/exit, timestamping,
//! inter-bit synchronization). The fit comes straight from the published
//! numbers: `overhead = 1/TR − mean(symbol durations)`.
//!
//! The paper's Timeset / BER / TR values themselves are also recorded here so
//! the harness can print a paper-vs-measured comparison for every row
//! (EXPERIMENTS.md).

use mes_types::{ChannelTiming, Mechanism, MesError, Micros, Result, Scenario};

/// The paper's recommended timing parameters ("Timeset" rows of Tables IV–VI).
///
/// # Errors
///
/// Returns [`MesError::MechanismUnavailable`] for combinations the paper does
/// not evaluate (non-file mechanisms across VMs).
pub fn paper_timeset(scenario: Scenario, mechanism: Mechanism) -> Result<ChannelTiming> {
    use Mechanism::*;
    let us = Micros::new;
    let timing = match scenario {
        Scenario::Local => match mechanism {
            Flock => ChannelTiming::contention(us(160), us(60)),
            FileLockEx => ChannelTiming::contention(us(150), us(50)),
            Mutex => ChannelTiming::contention(us(140), us(60)),
            Semaphore => ChannelTiming::contention(us(230), us(100)),
            Event => ChannelTiming::cooperation(us(15), us(65)),
            Timer => ChannelTiming::cooperation(us(15), us(75)),
        },
        Scenario::CrossSandbox => match mechanism {
            Flock => ChannelTiming::contention(us(170), us(60)),
            FileLockEx => ChannelTiming::contention(us(170), us(60)),
            Mutex => ChannelTiming::contention(us(150), us(60)),
            Semaphore => ChannelTiming::contention(us(240), us(100)),
            Event => ChannelTiming::cooperation(us(15), us(70)),
            Timer => ChannelTiming::cooperation(us(15), us(85)),
        },
        Scenario::CrossVm => match mechanism {
            Flock => ChannelTiming::contention(us(200), us(70)),
            FileLockEx => ChannelTiming::contention(us(190), us(70)),
            other => {
                return Err(MesError::MechanismUnavailable {
                    mechanism: other,
                    scenario: Scenario::CrossVm,
                })
            }
        },
    };
    Ok(timing)
}

/// The full evaluation grid of a scenario: every mechanism the paper
/// measures there, paired with its recommended Timeset, in the paper's table
/// order. This is the unit the batched execution pipeline consumes — a table
/// run compiles one plan per grid row and executes them as a single batch
/// instead of looping mechanism by mechanism.
pub fn paper_timeset_grid(scenario: Scenario) -> Vec<(Mechanism, ChannelTiming)> {
    scenario
        .mechanisms()
        .into_iter()
        .map(|mechanism| {
            let timing = paper_timeset(scenario, mechanism)
                .expect("scenario.mechanisms() only lists evaluated combinations");
            (mechanism, timing)
        })
        .collect()
}

/// Per-bit protocol overhead fitted from the paper's TR numbers, in
/// microseconds (see the module docs for the derivation). For combinations
/// the paper does not report, a conservative default is returned so ablation
/// experiments can still run.
pub fn protocol_overhead(scenario: Scenario, mechanism: Mechanism) -> Micros {
    use Mechanism::*;
    let tenths = match scenario {
        Scenario::Local => match mechanism {
            Flock => 292,
            FileLockEx => 302,
            Mutex => 314,
            Semaphore => 573,
            Event => 288,
            Timer => 331,
        },
        Scenario::CrossSandbox => match mechanism {
            Flock => 290,
            FileLockEx => 243,
            Mutex => 357,
            Semaphore => 605,
            Event => 308,
            Timer => 381,
        },
        Scenario::CrossVm => match mechanism {
            Flock => 347,
            FileLockEx => 226,
            // Not evaluated by the paper; assume the sandbox overhead plus
            // the extra VM path.
            Mutex => 420,
            Semaphore => 680,
            Event => 380,
            Timer => 450,
        },
    };
    // Stored in tenths of a microsecond to keep the table readable.
    Micros::new(tenths / 10)
}

/// The BER the paper reports for a (scenario, mechanism) pair, in percent.
pub fn paper_ber_percent(scenario: Scenario, mechanism: Mechanism) -> Option<f64> {
    use Mechanism::*;
    let value = match scenario {
        Scenario::Local => match mechanism {
            Flock => 0.615,
            FileLockEx => 0.758,
            Mutex => 0.759,
            Semaphore => 0.741,
            Event => 0.554,
            Timer => 0.600,
        },
        Scenario::CrossSandbox => match mechanism {
            Flock => 0.642,
            FileLockEx => 0.700,
            Mutex => 0.701,
            Semaphore => 0.731,
            Event => 0.583,
            Timer => 0.610,
        },
        Scenario::CrossVm => match mechanism {
            Flock => 0.832,
            FileLockEx => 0.713,
            _ => return None,
        },
    };
    Some(value)
}

/// The transmission rate the paper reports for a (scenario, mechanism) pair,
/// in kb/s.
pub fn paper_tr_kbps(scenario: Scenario, mechanism: Mechanism) -> Option<f64> {
    use Mechanism::*;
    let value = match scenario {
        Scenario::Local => match mechanism {
            Flock => 7.182,
            FileLockEx => 7.678,
            Mutex => 7.612,
            Semaphore => 4.498,
            Event => 13.105,
            Timer => 11.683,
        },
        Scenario::CrossSandbox => match mechanism {
            Flock => 6.946,
            FileLockEx => 7.181,
            Mutex => 7.109,
            Semaphore => 4.338,
            Event => 12.383,
            Timer => 10.458,
        },
        Scenario::CrossVm => match mechanism {
            Flock => 5.893,
            FileLockEx => 6.552,
            _ => return None,
        },
    };
    Some(value)
}

/// The paper's headline aggregate rates per scenario (abstract / conclusion):
/// 13.105 kb/s local, 12.383 kb/s cross-sandbox, 6.552 kb/s cross-VM.
pub fn paper_headline_tr_kbps(scenario: Scenario) -> f64 {
    match scenario {
        Scenario::Local => 13.105,
        Scenario::CrossSandbox => 12.383,
        Scenario::CrossVm => 6.552,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timesets_match_the_paper_tables() {
        let flock = paper_timeset(Scenario::Local, Mechanism::Flock).unwrap();
        assert_eq!(
            flock,
            ChannelTiming::contention(Micros::new(160), Micros::new(60))
        );
        let event = paper_timeset(Scenario::CrossSandbox, Mechanism::Event).unwrap();
        assert_eq!(
            event,
            ChannelTiming::cooperation(Micros::new(15), Micros::new(70))
        );
        let vm = paper_timeset(Scenario::CrossVm, Mechanism::FileLockEx).unwrap();
        assert_eq!(
            vm,
            ChannelTiming::contention(Micros::new(190), Micros::new(70))
        );
        assert!(paper_timeset(Scenario::CrossVm, Mechanism::Event).is_err());
    }

    #[test]
    fn every_supported_combination_has_a_timeset_and_references() {
        for scenario in Scenario::ALL {
            for mechanism in scenario.mechanisms() {
                assert!(
                    paper_timeset(scenario, mechanism).is_ok(),
                    "{scenario} {mechanism}"
                );
                assert!(paper_ber_percent(scenario, mechanism).is_some());
                assert!(paper_tr_kbps(scenario, mechanism).is_some());
                assert!(protocol_overhead(scenario, mechanism) > Micros::ZERO);
            }
        }
    }

    #[test]
    fn timeset_grid_covers_each_scenario_in_table_order() {
        for scenario in Scenario::ALL {
            let grid = paper_timeset_grid(scenario);
            assert_eq!(grid.len(), scenario.mechanisms().len());
            for (mechanism, timing) in grid {
                assert_eq!(timing, paper_timeset(scenario, mechanism).unwrap());
            }
        }
        assert_eq!(paper_timeset_grid(Scenario::CrossVm).len(), 2);
    }

    #[test]
    fn unsupported_cross_vm_combinations_have_no_reference_numbers() {
        assert!(paper_ber_percent(Scenario::CrossVm, Mechanism::Event).is_none());
        assert!(paper_tr_kbps(Scenario::CrossVm, Mechanism::Mutex).is_none());
    }

    #[test]
    fn fitted_overheads_reproduce_the_paper_rates() {
        // overhead was fitted as 1/TR - mean symbol time; check the round trip
        // stays within 1.5 us for every published row.
        for scenario in Scenario::ALL {
            for mechanism in scenario.mechanisms() {
                let timing = paper_timeset(scenario, mechanism).unwrap();
                let overhead = protocol_overhead(scenario, mechanism);
                let mean_bit_us = timing.mean_symbol_duration().as_f64() + overhead.as_f64();
                let predicted_tr = 1_000.0 / mean_bit_us; // kb/s
                let paper_tr = paper_tr_kbps(scenario, mechanism).unwrap();
                let error = (predicted_tr - paper_tr).abs();
                assert!(
                    error < 0.35,
                    "{scenario}/{mechanism}: predicted {predicted_tr:.3} vs paper {paper_tr:.3}"
                );
            }
        }
    }

    #[test]
    fn headline_rates_match_the_abstract() {
        assert_eq!(paper_headline_tr_kbps(Scenario::Local), 13.105);
        assert_eq!(paper_headline_tr_kbps(Scenario::CrossSandbox), 12.383);
        assert_eq!(paper_headline_tr_kbps(Scenario::CrossVm), 6.552);
    }

    #[test]
    fn semaphore_overhead_reflects_its_extra_instructions() {
        // Section V.C.1: semaphore needs 6 lock-path instructions vs 3.
        for scenario in [Scenario::Local, Scenario::CrossSandbox] {
            assert!(
                protocol_overhead(scenario, Mechanism::Semaphore)
                    > protocol_overhead(scenario, Mechanism::Flock)
            );
        }
    }
}
