//! Seeded random number generation and the distribution samplers used by the
//! noise model.
//!
//! Distribution sampling (normal, log-normal, exponential, Bernoulli) is
//! implemented here on top of [`rand`] so the workspace does not need
//! `rand_distr`; the simulator only needs a handful of samplers and keeping
//! them local makes the noise model easy to audit.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulator's deterministic random number generator.
///
/// Every run of the engine is seeded, so experiments are reproducible
/// bit-for-bit: the same seed, programs and noise model always produce the
/// same timestamps.
///
/// # Examples
///
/// ```
/// use mes_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    cached_gaussian: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            cached_gaussian: None,
        }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform_01(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform sample in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(low <= high, "uniform range must be ordered");
        if low == high {
            low
        } else {
            low + self.uniform_01() * (high - low)
        }
    }

    /// Uniform integer sample in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.inner.gen_range(0..n)
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform_01() < p
        }
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(cached) = self.cached_gaussian.take() {
            return cached;
        }
        // Box–Muller needs u1 strictly positive.
        let mut u1 = self.uniform_01();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = self.uniform_01();
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * std::f64::consts::PI * u2;
        self.cached_gaussian = Some(radius * angle.sin());
        radius * angle.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if std_dev <= 0.0 {
            mean
        } else {
            mean + std_dev * self.standard_normal()
        }
    }

    /// Normal sample truncated below at zero — used for operation costs,
    /// which can never be negative.
    pub fn normal_non_negative(&mut self, mean: f64, std_dev: f64) -> f64 {
        self.normal(mean, std_dev).max(0.0)
    }

    /// Exponential sample with the given mean (returns 0 for non-positive
    /// means).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let mut u = self.uniform_01();
        if u <= f64::MIN_POSITIVE {
            u = f64::MIN_POSITIVE;
        }
        -mean * u.ln()
    }

    /// Log-normal sample parameterised by the mean and standard deviation of
    /// the underlying normal distribution.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SimRng::seed_from(7);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(rng.uniform(3.0, 3.0), 3.0);
    }

    #[test]
    fn below_handles_zero() {
        let mut rng = SimRng::seed_from(7);
        assert_eq!(rng.below(0), 0);
        for _ in 0..100 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SimRng::seed_from(7);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-1.0));
        assert!(rng.bernoulli(2.0));
    }

    #[test]
    fn normal_mean_is_close() {
        let mut rng = SimRng::seed_from(99);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.normal(10.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn normal_zero_std_dev_is_deterministic() {
        let mut rng = SimRng::seed_from(99);
        assert_eq!(rng.normal(5.0, 0.0), 5.0);
        assert_eq!(rng.normal_non_negative(-3.0, 0.0), 0.0);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(5);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(8.0)).sum::<f64>() / n as f64;
        assert!((mean - 8.0).abs() < 0.3, "sample mean {mean}");
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-1.0), 0.0);
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            assert!(rng.log_normal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn bernoulli_probability_is_close() {
        let mut rng = SimRng::seed_from(3);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.25)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.01, "estimated p {p}");
    }
}
