//! Execution traces: an optional, bounded record of what the engine did.
//!
//! Traces are what the proof-of-concept figure (Fig. 8 of the paper) is made
//! of, and they are invaluable when debugging a protocol that deadlocks or
//! drifts. Tracing is off by default because sweeps execute tens of millions
//! of ops.

use mes_types::{Nanos, ProcessId};
use serde::{Deserialize, Serialize};

/// What happened at a traced instant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// The process started executing an op (rendered with its index).
    OpExecuted {
        /// Index of the op within the process's program.
        op_index: usize,
        /// Compact description of the op.
        description: String,
    },
    /// The process blocked on shared state.
    Blocked {
        /// Human-readable reason.
        reason: String,
    },
    /// The process was woken.
    Woken,
    /// The process finished its program.
    Terminated,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: Nanos,
    /// Process the event belongs to.
    pub process: ProcessId,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded in-memory trace.
///
/// # Examples
///
/// ```
/// use mes_sim::{Trace, TraceEvent, TraceKind};
/// use mes_types::{Nanos, ProcessId};
///
/// let mut trace = Trace::bounded(2);
/// for i in 0..5 {
///     trace.record(TraceEvent {
///         time: Nanos::new(i),
///         process: ProcessId::new(1),
///         kind: TraceKind::Woken,
///     });
/// }
/// assert_eq!(trace.events().len(), 2); // only the most recent survive
/// assert_eq!(trace.dropped(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Trace {
    /// A disabled trace that records nothing.
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            capacity: 0,
            dropped: 0,
            enabled: false,
        }
    }

    /// A trace that keeps at most the last `capacity` events.
    pub fn bounded(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (dropping the oldest if the buffer is full).
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            if self.capacity == 0 {
                self.dropped += 1;
                return;
            }
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// How many events were discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events belonging to one process.
    pub fn for_process(&self, process: ProcessId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.process == process)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(t: u64, pid: u64) -> TraceEvent {
        TraceEvent {
            time: Nanos::new(t),
            process: ProcessId::new(pid),
            kind: TraceKind::Woken,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace = Trace::disabled();
        trace.record(event(1, 1));
        assert!(trace.events().is_empty());
        assert!(!trace.is_enabled());
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn bounded_trace_keeps_latest() {
        let mut trace = Trace::bounded(3);
        for t in 0..10 {
            trace.record(event(t, 1));
        }
        assert_eq!(trace.events().len(), 3);
        assert_eq!(trace.events()[0].time, Nanos::new(7));
        assert_eq!(trace.dropped(), 7);
    }

    #[test]
    fn per_process_filtering() {
        let mut trace = Trace::bounded(10);
        trace.record(event(1, 1));
        trace.record(event(2, 2));
        trace.record(event(3, 1));
        assert_eq!(trace.for_process(ProcessId::new(1)).len(), 2);
        assert_eq!(trace.for_process(ProcessId::new(2)).len(), 1);
        assert_eq!(trace.for_process(ProcessId::new(3)).len(), 0);
    }

    #[test]
    fn zero_capacity_enabled_trace_only_counts() {
        let mut trace = Trace::bounded(0);
        trace.record(event(1, 1));
        trace.record(event(2, 1));
        assert!(trace.events().is_empty());
        assert_eq!(trace.dropped(), 2);
    }
}
