//! Slot arenas: allocation-recycling storage for per-round engine state.
//!
//! A simulated round needs process tables, kernel objects, namespace
//! entries, i-nodes and measurement buffers — all short-lived, all rebuilt
//! for the next round. Allocating them per round is what made
//! `Engine::reset` only *mostly* cheap: clearing a `Vec<ProcessState>` keeps
//! the vector's allocation but drops every hash table, string and buffer the
//! states own. A [`Slab`] keeps the dead values instead: freeing is a cursor
//! rewind ([`Slab::rewind`]), and the next round's allocations reinitialise
//! the retired values in place, reusing their heap blocks. After one warm-up
//! round of a given shape, a slab-backed engine round performs **zero** heap
//! allocations (asserted by the `alloc_regression` integration test).

/// A bump/slab allocator over owned values.
///
/// Values are handed out in index order by [`Slab::alloc`]. [`Slab::rewind`]
/// retires every live value without dropping it; subsequent `alloc` calls
/// recycle the retired values (oldest first) through the caller's `recycle`
/// closure, which must reinitialise the value while reusing its internal
/// allocations (clear a map, rewrite a string in place, …). Only when no
/// retired value is available does `alloc` fall back to the `fresh` closure
/// and actually allocate.
///
/// # Examples
///
/// ```
/// use mes_sim::arena::Slab;
///
/// let mut names: Slab<String> = Slab::new();
/// let (index, name) = names.alloc(|| String::from("trojan"), |_| unreachable!());
/// assert_eq!((index, name.as_str()), (0, "trojan"));
///
/// names.rewind();
/// assert!(names.is_empty());
/// // The retired String is recycled: its buffer is rewritten, not reallocated.
/// let (index, name) = names.alloc(
///     || unreachable!("a retired slot exists"),
///     |slot| {
///         slot.clear();
///         slot.push_str("spy");
///     },
/// );
/// assert_eq!((index, name.as_str()), (0, "spy"));
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<T>,
    live: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub const fn new() -> Self {
        Slab {
            slots: Vec::new(),
            live: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no values are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots held (live values plus retired values awaiting reuse).
    pub fn retained(&self) -> usize {
        self.slots.len()
    }

    /// Retires every live value without dropping it; the values (and their
    /// heap allocations) are recycled by subsequent [`Slab::alloc`] calls.
    pub fn rewind(&mut self) {
        self.live = 0;
    }

    /// Drops every value, retired ones included.
    pub fn purge(&mut self) {
        self.slots.clear();
        self.live = 0;
    }

    /// Allocates the next value and returns its index alongside it.
    ///
    /// Recycles the oldest retired value via `recycle` when one exists;
    /// otherwise constructs a new slot with `fresh`.
    pub fn alloc(
        &mut self,
        fresh: impl FnOnce() -> T,
        recycle: impl FnOnce(&mut T),
    ) -> (usize, &mut T) {
        let index = self.live;
        if index < self.slots.len() {
            recycle(&mut self.slots[index]);
        } else {
            self.slots.push(fresh());
        }
        self.live += 1;
        (index, &mut self.slots[index])
    }

    /// The live value at `index`, if it exists.
    pub fn get(&self, index: usize) -> Option<&T> {
        (index < self.live).then(|| &self.slots[index])
    }

    /// Mutable access to the live value at `index`, if it exists.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        (index < self.live).then(|| &mut self.slots[index])
    }

    /// Iterates over the live values.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.slots[..self.live].iter()
    }

    /// Iterates mutably over the live values.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.slots[..self.live].iter_mut()
    }

    /// The live values as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.slots[..self.live]
    }
}

impl<T> std::ops::Index<usize> for Slab<T> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        assert!(index < self.live, "slab index {index} out of live range");
        &self.slots[index]
    }
}

impl<T> std::ops::IndexMut<usize> for Slab<T> {
    fn index_mut(&mut self, index: usize) -> &mut T {
        assert!(index < self.live, "slab index {index} out of live range");
        &mut self.slots[index]
    }
}

impl<'a, T> IntoIterator for &'a Slab<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_grows_then_recycles() {
        let mut slab: Slab<Vec<u32>> = Slab::new();
        let (a, v) = slab.alloc(Vec::new, |_| unreachable!());
        v.extend([1, 2, 3]);
        let (b, _) = slab.alloc(Vec::new, |_| unreachable!());
        assert_eq!((a, b), (0, 1));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.retained(), 2);

        slab.rewind();
        assert_eq!(slab.len(), 0);
        assert_eq!(slab.retained(), 2, "retired slots are kept");

        // The recycled slot still owns the old buffer until reinitialised.
        let (index, v) = slab.alloc(|| unreachable!(), Vec::clear);
        assert_eq!(index, 0);
        assert!(v.is_empty());
        assert!(v.capacity() >= 3, "recycling must keep the allocation");
    }

    #[test]
    fn accessors_only_expose_live_values() {
        let mut slab: Slab<u8> = Slab::new();
        slab.alloc(|| 7, |_| ());
        slab.alloc(|| 9, |_| ());
        slab.rewind();
        slab.alloc(|| unreachable!(), |slot| *slot = 1);
        assert_eq!(slab.get(0), Some(&1));
        assert_eq!(slab.get(1), None);
        assert_eq!(slab.iter().copied().collect::<Vec<_>>(), vec![1]);
        assert_eq!(slab.as_slice(), &[1]);
        *slab.get_mut(0).unwrap() = 4;
        assert_eq!(slab[0], 4);
        slab[0] = 5;
        for value in &slab {
            assert_eq!(*value, 5);
        }
    }

    #[test]
    fn purge_drops_retired_slots() {
        let mut slab: Slab<String> = Slab::new();
        slab.alloc(|| "x".into(), |_| ());
        slab.purge();
        assert_eq!(slab.retained(), 0);
        let (index, value) = slab.alloc(|| "fresh".into(), |_| unreachable!());
        assert_eq!((index, value.as_str()), (0, "fresh"));
    }

    #[test]
    #[should_panic(expected = "out of live range")]
    fn indexing_a_retired_slot_panics() {
        let mut slab: Slab<u8> = Slab::new();
        slab.alloc(|| 1, |_| ());
        slab.rewind();
        let _ = slab[0];
    }
}
