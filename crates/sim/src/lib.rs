//! `mes-sim` — a deterministic discrete-event simulator of the OS
//! process-management layer attacked by *MES-Attacks* (DAC 2023).
//!
//! The paper builds covert channels out of mutual-exclusion and
//! synchronization mechanisms (MESMs): Windows kernel objects reached through
//! per-process handle tables (Fig. 4 of the paper) and Linux `flock` locks
//! reached through the fd-table → file-table → i-node chain (Fig. 5). The
//! original evaluation ran on Windows 10 / Ubuntu 16.04 on an Intel i5-7400;
//! this crate reproduces the *behaviour* of that layer — blocking, FIFO
//! hand-off, sleep/wakeup latency, scheduler noise — as a seeded,
//! reproducible simulation so every figure and table of the paper can be
//! regenerated on any machine.
//!
//! The simulator executes *op programs*: flat lists of [`Op`]s (lock, unlock,
//! wait, signal, sleep, timestamp, …) compiled by the channel layer
//! (`mes-core`). Each simulated process runs its program on its own virtual
//! core; shared state (kernel objects, file locks, barriers) serialises them
//! exactly the way the real kernel would.
//!
//! # Examples
//!
//! Two processes hand a single bit across an Event object: the spy measures
//! how long it waited.
//!
//! ```
//! use mes_sim::{Engine, NoiseModel, ObjectKind, Op, Program};
//! use mes_types::{HandleId, Micros};
//!
//! let spy = Program::new("spy")
//!     .op(Op::CreateObject {
//!         name: "evt".into(),
//!         kind: ObjectKind::event_auto_reset(),
//!         handle: HandleId::new(1),
//!     })
//!     .op(Op::TimestampStart { slot: 0 })
//!     .op(Op::WaitForSingleObject { handle: HandleId::new(1) })
//!     .op(Op::TimestampEnd { slot: 0 });
//!
//! let trojan = Program::new("trojan")
//!     .op(Op::OpenObject { name: "evt".into(), handle: HandleId::new(1) })
//!     .op(Op::SleepFor { duration: Micros::new(80).to_nanos() })
//!     .op(Op::SetEvent { handle: HandleId::new(1) });
//!
//! let mut engine = Engine::new(NoiseModel::noiseless(), 7);
//! let spy_pid = engine.spawn(spy);
//! let _trojan_pid = engine.spawn(trojan);
//! let outcome = engine.run()?;
//!
//! let wait = outcome.measurements(spy_pid)[0].elapsed();
//! assert!(wait >= Micros::new(80).to_nanos());
//! # Ok::<(), mes_types::MesError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod engine;
pub mod fs;
pub mod kernel;
pub mod noise;
pub mod ops;
pub mod patch;
pub mod process;
pub mod rng;
pub mod trace;

pub use engine::{Engine, SimOutcome};
pub use fs::{FileSystem, LockRequestOutcome};
pub use kernel::namespace::SessionId;
pub use kernel::object::{KernelObject, ObjectKind};
pub use noise::{CostClass, NoiseModel, Preemption};
pub use ops::Op;
pub use patch::ProgramPatcher;
pub use process::{Measurement, ProcessName, Program};
pub use rng::SimRng;
pub use trace::{Trace, TraceEvent, TraceKind};
