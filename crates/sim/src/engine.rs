//! The discrete-event engine that executes op programs against the simulated
//! kernel.
//!
//! Every spawned process runs on its own virtual core: it advances its own
//! local clock through process-local ops (sleeps, busy work, timestamps) and
//! synchronises with the rest of the system whenever it touches shared state
//! (kernel objects, file locks, barriers). The engine serialises shared-state
//! operations in global time order, which is what makes lock hand-off, event
//! signalling and blocking behave like the real kernel the paper exploits.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use crate::arena::Slab;
use crate::fs::{Fairness, FileSystem, LockRequestOutcome};
use crate::kernel::namespace::{Namespace, Visibility};
use crate::kernel::object::KernelObject;
use crate::noise::NoiseModel;
use crate::ops::Op;
use crate::process::{BlockReason, Measurement, ProcessState, Program, RunState};
use crate::rng::SimRng;
use crate::trace::{Trace, TraceEvent, TraceKind};
use mes_types::{MesError, Nanos, ObjectId, ProcessId, Result};

/// What a queued event does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    /// A process becomes runnable.
    ProcessReady(ProcessId),
    /// An armed waitable timer reaches its due time.
    TimerFire(ObjectId),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct QueuedEvent {
    time: Nanos,
    seq: u64,
    kind: EventKind,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: Vec<ProcessId>,
}

/// The result of a finished simulation.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    measurements: HashMap<ProcessId, Vec<Measurement>>,
    names: HashMap<ProcessId, String>,
    end_time: Nanos,
    trace: Trace,
    executed_ops: u64,
}

impl SimOutcome {
    /// The measurement windows recorded by `process`, in program order.
    pub fn measurements(&self, process: ProcessId) -> &[Measurement] {
        self.measurements
            .get(&process)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The measured durations recorded by `process`, ordered by slot.
    pub fn durations(&self, process: ProcessId) -> Vec<Nanos> {
        let mut windows: Vec<Measurement> = self.measurements(process).to_vec();
        windows.sort_by_key(|m| m.slot);
        windows.iter().map(Measurement::elapsed).collect()
    }

    /// The virtual time at which the last process terminated.
    pub fn end_time(&self) -> Nanos {
        self.end_time
    }

    /// The (optional) execution trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The name a process was spawned with.
    pub fn process_name(&self, process: ProcessId) -> Option<&str> {
        self.names.get(&process).map(String::as_str)
    }

    /// Total number of ops executed across all processes.
    pub fn executed_ops(&self) -> u64 {
        self.executed_ops
    }
}

/// The discrete-event simulator.
///
/// # Examples
///
/// A Trojan holds a file lock for 300 µs; the Spy measures how long its own
/// lock attempt is blocked.
///
/// ```
/// use mes_sim::{Engine, NoiseModel, Op, Program};
/// use mes_types::{FdId, Micros};
///
/// let trojan = Program::new("trojan")
///     .op(Op::OpenFile { path: "/shared".into(), fd: FdId::new(1) })
///     .op(Op::FlockExclusive { fd: FdId::new(1) })
///     .op(Op::SleepFor { duration: Micros::new(300).to_nanos() })
///     .op(Op::FlockUnlock { fd: FdId::new(1) });
///
/// let spy = Program::new("spy")
///     .op(Op::OpenFile { path: "/shared".into(), fd: FdId::new(0) })
///     .op(Op::Compute { duration: Micros::new(10).to_nanos() })
///     .op(Op::TimestampStart { slot: 0 })
///     .op(Op::FlockExclusive { fd: FdId::new(0) })
///     .op(Op::FlockUnlock { fd: FdId::new(0) })
///     .op(Op::TimestampEnd { slot: 0 });
///
/// let mut engine = Engine::new(NoiseModel::noiseless(), 1);
/// engine.spawn(trojan);
/// let spy_pid = engine.spawn(spy);
/// let outcome = engine.run()?;
/// assert!(outcome.durations(spy_pid)[0] >= Micros::new(280).to_nanos());
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    noise: NoiseModel,
    rng: SimRng,
    /// Process arena: resets retire the states, spawns recycle them with
    /// their hash tables and measurement buffers intact.
    processes: Slab<ProcessState>,
    /// Kernel-object arena: `CreateObject` recycles retired objects, reusing
    /// their name buffers and wait queues.
    objects: Slab<KernelObject>,
    namespace: Namespace,
    fs: FileSystem,
    /// Barrier map: entries persist across resets (only their arrival lists
    /// are cleared), so warm rounds never reallocate a barrier.
    barriers: HashMap<u32, BarrierState>,
    barrier_parties: Option<usize>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
    trace: Trace,
    wake_granted: HashSet<ProcessId>,
    executed_ops: u64,
    /// Scratch for processes woken by one `FlockUnlock`, reused every slot.
    woken_scratch: Vec<ProcessId>,
    /// Scratch for processes released by one opening barrier.
    barrier_scratch: Vec<ProcessId>,
    /// Empty placeholder program installed into retired process slots on
    /// reset, so the engine never pins a caller's `Arc<Program>` across
    /// rounds (required for in-place program patching via `Arc::get_mut`).
    idle_program: Arc<Program>,
    /// Live processes whose program contains a barrier op, counted as they
    /// spawn and zeroed on reset — the default barrier party count. Callers
    /// that already know the count (backends cache it per compiled program
    /// pair) call [`Engine::set_barrier_parties`] *before* spawning and skip
    /// the per-spawn op scan entirely.
    barrier_capable: usize,
}

impl Engine {
    /// Creates an engine with the given noise model and RNG seed.
    pub fn new(noise: NoiseModel, seed: u64) -> Self {
        Engine {
            noise,
            rng: SimRng::seed_from(seed),
            processes: Slab::new(),
            objects: Slab::new(),
            namespace: Namespace::new(),
            fs: FileSystem::new(),
            barriers: HashMap::new(),
            barrier_parties: None,
            queue: BinaryHeap::new(),
            seq: 0,
            trace: Trace::disabled(),
            wake_granted: HashSet::new(),
            executed_ops: 0,
            woken_scratch: Vec::new(),
            barrier_scratch: Vec::new(),
            idle_program: Arc::new(Program::new("idle")),
            barrier_capable: 0,
        }
    }

    /// Clears all simulation state and re-seeds the engine, reusing the
    /// existing allocations (process table, object table, event queue, …).
    ///
    /// A reset engine is observably identical to `Engine::new(noise, seed)`:
    /// process and object ids restart from the same values, the filesystem
    /// and namespace are empty, and the RNG stream is reproduced from the
    /// seed alone. The reset itself is a *cursor rewind*: process and object
    /// slots, namespace entries, i-nodes and barrier arrival lists are
    /// retired rather than dropped, and the next round's spawns and ops
    /// recycle them in place — after one warm-up round of a given plan
    /// shape, an entire reset→spawn→run cycle performs zero heap
    /// allocations. Hot sweep loops rely on this to run millions of rounds
    /// without touching the allocator. The file-lock hand-off discipline set
    /// via [`Engine::set_fairness`] is preserved; tracing is disabled
    /// (re-enable it per round if needed).
    pub fn reset(&mut self, noise: NoiseModel, seed: u64) {
        self.noise = noise;
        self.rng = SimRng::seed_from(seed);
        // Release the round's program references before retiring the slots:
        // a reset engine holds no caller `Arc<Program>`, so backends may
        // re-acquire unique ownership (`Arc::get_mut`) and patch cached
        // programs in place between rounds. Retired slots always hold the
        // placeholder, so releasing the live ones is sufficient.
        let idle = Arc::clone(&self.idle_program);
        for state in self.processes.iter_mut() {
            state.park_program(&idle);
        }
        self.processes.rewind();
        self.objects.rewind();
        self.namespace.clear();
        self.fs.reset();
        // lint: allow(map-iteration) — order-independent: every arrival list is cleared
        for barrier in self.barriers.values_mut() {
            barrier.arrived.clear();
        }
        self.barrier_parties = None;
        self.barrier_capable = 0;
        self.queue.clear();
        self.seq = 0;
        self.trace = Trace::disabled();
        self.wake_granted.clear();
        self.executed_ops = 0;
    }

    /// Switches the file-lock hand-off discipline (fair FIFO by default).
    pub fn set_fairness(&mut self, fairness: Fairness) {
        self.fs = FileSystem::with_fairness(fairness);
    }

    /// Overrides the number of processes that must reach a barrier before it
    /// opens. By default every process whose program contains a barrier op
    /// participates. Calling this *before* spawning also skips the per-spawn
    /// op scan that maintains the default count — round loops that know the
    /// count up front (it is a plan-shape invariant) set it right after
    /// [`Engine::reset`].
    pub fn set_barrier_parties(&mut self, parties: usize) {
        self.barrier_parties = Some(parties);
    }

    /// Enables execution tracing, keeping at most `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::bounded(capacity);
    }

    /// Read access to the simulated filesystem (mainly for tests).
    pub fn filesystem(&self) -> &FileSystem {
        &self.fs
    }

    /// Spawns a process executing `program`; it becomes runnable at time 0.
    pub fn spawn(&mut self, program: Program) -> ProcessId {
        self.spawn_shared(Arc::new(program))
    }

    /// Spawns a process executing a shared program; it becomes runnable at
    /// time 0.
    ///
    /// Backends that run the same compiled program over many rounds hold the
    /// program in an [`Arc`] and respawn it after every [`Engine::reset`]:
    /// the spawn then costs a reference-count bump and a recycled process
    /// slot — no clone of the op list, no fresh tables.
    pub fn spawn_shared(&mut self, program: Arc<Program>) -> ProcessId {
        // Maintain the default barrier party count incrementally. When the
        // caller already fixed the count (set_barrier_parties before the
        // spawns, as the sweep backends do from their per-shape caches), the
        // default is dead and the op scan is skipped — that scan used to run
        // over every program on every round of a hot sweep.
        if self.barrier_parties.is_none()
            && program
                .ops()
                .iter()
                .any(|op| matches!(op, Op::Barrier { .. }))
        {
            self.barrier_capable += 1;
        }
        let pid = ProcessId::new(self.processes.len() as u64 + 1);
        self.processes.alloc(
            || ProcessState::new(pid, Arc::clone(&program)),
            |state| state.recycle(pid, Arc::clone(&program)),
        );
        self.push_event(Nanos::ZERO, EventKind::ProcessReady(pid));
        pid
    }

    fn push_event(&mut self, time: Nanos, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn proc_index(&self, pid: ProcessId) -> usize {
        pid.as_usize() - 1
    }

    fn record_trace(&mut self, time: Nanos, process: ProcessId, kind: TraceKind) {
        if self.trace.is_enabled() {
            self.trace.record(TraceEvent {
                time,
                process,
                kind,
            });
        }
    }

    fn wake(&mut self, pid: ProcessId, at: Nanos, granted: bool) {
        let index = self.proc_index(pid);
        self.processes[index].run_state = RunState::Runnable;
        if granted {
            self.wake_granted.insert(pid);
        }
        self.record_trace(at, pid, TraceKind::Woken);
        self.push_event(at, EventKind::ProcessReady(pid));
    }

    /// Runs the simulation to completion and materializes a [`SimOutcome`]
    /// snapshot (cloning measurements and names out of the engine).
    ///
    /// Hot round loops that cannot afford the snapshot allocations use
    /// [`Engine::run_in_place`] and read results through
    /// [`Engine::measurements_of`] / [`Engine::end_time`] instead.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run_in_place`].
    pub fn run(&mut self) -> Result<SimOutcome> {
        self.run_in_place()?;
        Ok(SimOutcome {
            measurements: self
                .processes
                .iter()
                .map(|p| (p.id, p.measurements.clone()))
                .collect(),
            names: self
                .processes
                .iter()
                .map(|p| (p.id, p.program.name().as_str().to_string()))
                .collect(),
            end_time: self.end_time(),
            trace: std::mem::take(&mut self.trace),
            executed_ops: self.executed_ops,
        })
    }

    /// Runs the simulation to completion, leaving the results inside the
    /// engine — the allocation-free half of [`Engine::run`]. Read the
    /// results with [`Engine::measurements_of`], [`Engine::end_time`] and
    /// [`Engine::executed_ops`]; they stay valid until the next reset.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] if a program performs an invalid
    /// operation (unknown handle, unlock without holding, opening an object
    /// that is not visible from its session, …) or if the system deadlocks
    /// with blocked processes and no pending events.
    pub fn run_in_place(&mut self) -> Result<()> {
        // lint: warm-path
        if self.barrier_parties.is_none() {
            // The counter was maintained by the spawns; this replaces what
            // used to be a rescan of every program's full op list here, on
            // every round after every reset.
            self.barrier_parties = Some(self.barrier_capable.max(1));
        }
        while let Some(Reverse(event)) = self.queue.pop() {
            match event.kind {
                EventKind::TimerFire(object) => self.handle_timer_fire(object, event.time)?,
                EventKind::ProcessReady(pid) => {
                    let index = self.proc_index(pid);
                    if self.processes[index].is_terminated() {
                        continue;
                    }
                    self.processes[index].local_time =
                        self.processes[index].local_time.max(event.time);
                    self.run_process(pid)?;
                }
            }
        }
        // Every event has drained; any process still blocked means deadlock.
        if let Some(stuck) = self.processes.iter().find(|p| !p.is_terminated()) {
            return Err(MesError::Simulation {
                // lint: allow(warm-path-alloc) — deadlock error path: the round is already lost
                reason: format!(
                    "deadlock: process {} ({}) never terminated (pc={}, state={:?})",
                    stuck.id,
                    stuck.program.name(),
                    stuck.pc,
                    stuck.run_state
                ),
            });
        }
        Ok(())
    }
    // lint: end-warm-path

    /// The virtual time at which the last process terminated (the current
    /// maximum of the per-process clocks while a run is in progress).
    pub fn end_time(&self) -> Nanos {
        self.processes
            .iter()
            .map(|p| p.local_time)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// The measurement windows recorded so far by `process`, in program
    /// order — borrow-only access for the zero-allocation round path.
    pub fn measurements_of(&self, process: ProcessId) -> &[Measurement] {
        self.processes
            .get(process.as_usize().wrapping_sub(1))
            .map(|p| p.measurements.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of ops executed since the last reset.
    pub fn executed_ops(&self) -> u64 {
        self.executed_ops
    }

    fn handle_timer_fire(&mut self, object: ObjectId, now: Nanos) -> Result<()> {
        let obj = self
            .objects
            .get_mut(object.as_usize())
            .ok_or_else(|| MesError::Simulation {
                reason: format!("timer fire for unknown object {object}"),
            })?;
        if obj.fire_timer_if_due(now) {
            // Synchronization-timer semantics: hand the signal to the head
            // waiter (consuming it), exactly like an auto-reset event.
            if let Some(pid) = obj.dequeue_waiter() {
                obj.acquire(pid);
                let latency = self.noise.sample_wait_wakeup(&mut self.rng);
                self.wake(pid, now + latency, true);
            }
        }
        Ok(())
    }

    /// Executes ops of `pid` until it blocks, must yield for global ordering,
    /// or terminates.
    fn run_process(&mut self, pid: ProcessId) -> Result<()> {
        // lint: warm-path
        // Hold the program through a cheap Arc clone so ops can be executed
        // by reference — the hot loop never clones an op (ops with owned
        // strings used to be cloned once per execution).
        let program = Arc::clone(&self.processes[self.proc_index(pid)].program);
        loop {
            let index = self.proc_index(pid);
            let Some(op) = program.ops().get(self.processes[index].pc) else {
                self.processes[index].run_state = RunState::Terminated;
                let t = self.processes[index].local_time;
                self.record_trace(t, pid, TraceKind::Terminated);
                return Ok(());
            };

            // Shared-state ops must respect global time order: if another
            // event is pending earlier than our local clock, yield.
            if op.is_shared() {
                let local_time = self.processes[index].local_time;
                if let Some(Reverse(next)) = self.queue.peek() {
                    if next.time < local_time {
                        self.push_event(local_time, EventKind::ProcessReady(pid));
                        return Ok(());
                    }
                }
            }

            // Charge the op's base cost.
            if let Some(class) = op.cost_class() {
                let cost = self.noise.sample_cost(class, &mut self.rng);
                self.processes[index].local_time += cost;
            }
            self.executed_ops += 1;
            if self.trace.is_enabled() {
                let t = self.processes[index].local_time;
                let pc = self.processes[index].pc;
                self.record_trace(
                    t,
                    pid,
                    TraceKind::OpExecuted {
                        op_index: pc,
                        // lint: allow(warm-path-alloc) — trace is opt-in and off on measured rounds
                        description: format!("{op:?}"),
                    },
                );
            }

            let proceed = self.execute_op(pid, op)?;
            if !proceed {
                return Ok(());
            }
        }
    }
    // lint: end-warm-path

    /// Executes a single op. Returns `false` if the process blocked (the
    /// caller must stop running it).
    fn execute_op(&mut self, pid: ProcessId, op: &Op) -> Result<bool> {
        let index = self.proc_index(pid);
        match op {
            Op::SleepFor { duration } => {
                let actual = self.noise.sample_sleep(*duration, &mut self.rng);
                self.processes[index].local_time += actual;
                self.processes[index].pc += 1;
            }
            Op::Compute { duration } => {
                let disturbance = self.noise.sample_disturbance(*duration, &mut self.rng);
                self.processes[index].local_time += *duration + disturbance;
                self.processes[index].pc += 1;
            }
            Op::TimestampStart { slot } => {
                let now = self.processes[index].local_time;
                self.processes[index].open_windows.insert(*slot, now);
                self.processes[index].pc += 1;
            }
            Op::TimestampEnd { slot } => {
                let now = self.processes[index].local_time;
                let start = self.processes[index]
                    .open_windows
                    .remove(slot)
                    .ok_or_else(|| MesError::Simulation {
                        reason: format!("TimestampEnd for slot {slot} without a matching start"),
                    })?;
                self.processes[index].measurements.push(Measurement {
                    slot: *slot,
                    start,
                    end: now,
                });
                self.processes[index].pc += 1;
            }
            Op::CreateObject { name, kind, handle } => {
                let (slot, _) = self.objects.alloc(
                    || KernelObject::new(name.as_str(), *kind),
                    |object| object.reinit(name, *kind),
                );
                let object_id = ObjectId::new(slot as u64);
                let session = self.processes[index].program.session();
                self.namespace
                    .register(name, object_id, session, Visibility::Session)?;
                self.processes[index]
                    .handle_table
                    .bind(*handle, object_id)?;
                self.processes[index].pc += 1;
            }
            Op::OpenObject { name, handle } => {
                let session = self.processes[index].program.session();
                let object_id = self.namespace.lookup(name, session)?;
                self.objects[object_id.as_usize()].add_reference();
                self.processes[index]
                    .handle_table
                    .bind(*handle, object_id)?;
                self.processes[index].pc += 1;
            }
            Op::SetEvent { handle } => {
                let object_id = self.processes[index].handle_table.resolve(*handle)?;
                self.objects[object_id.as_usize()].set_event()?;
                self.wake_object_waiters(object_id, pid)?;
                let idx = self.proc_index(pid);
                self.processes[idx].pc += 1;
            }
            Op::ResetEvent { handle } => {
                let object_id = self.processes[index].handle_table.resolve(*handle)?;
                self.objects[object_id.as_usize()].reset_event()?;
                self.processes[index].pc += 1;
            }
            Op::ReleaseMutex { handle } => {
                let object_id = self.processes[index].handle_table.resolve(*handle)?;
                self.objects[object_id.as_usize()].release_mutex(pid)?;
                self.wake_object_waiters(object_id, pid)?;
                let idx = self.proc_index(pid);
                self.processes[idx].pc += 1;
            }
            Op::ReleaseSemaphore { handle, count } => {
                let object_id = self.processes[index].handle_table.resolve(*handle)?;
                self.objects[object_id.as_usize()].release_semaphore(*count)?;
                self.wake_object_waiters(object_id, pid)?;
                let idx = self.proc_index(pid);
                self.processes[idx].pc += 1;
            }
            Op::SetTimer { handle, due } => {
                let object_id = self.processes[index].handle_table.resolve(*handle)?;
                let now = self.processes[index].local_time;
                let due_at = now + *due;
                self.objects[object_id.as_usize()].arm_timer(due_at)?;
                self.push_event(due_at, EventKind::TimerFire(object_id));
                self.processes[index].pc += 1;
            }
            Op::WaitForSingleObject { handle } => {
                let object_id = self.processes[index].handle_table.resolve(*handle)?;
                if self.wake_granted.remove(&pid) {
                    self.processes[index].pc += 1;
                } else {
                    let interference = self.noise.sample_open_interference(&mut self.rng);
                    self.processes[index].local_time += interference;
                    let signaled = self.objects[object_id.as_usize()].is_signaled_for(pid);
                    if signaled {
                        self.objects[object_id.as_usize()].acquire(pid);
                        self.processes[index].pc += 1;
                    } else {
                        self.objects[object_id.as_usize()].enqueue_waiter(pid);
                        self.processes[index].run_state =
                            RunState::Blocked(BlockReason::Object(object_id));
                        if self.trace.is_enabled() {
                            let t = self.processes[index].local_time;
                            self.record_trace(
                                t,
                                pid,
                                TraceKind::Blocked {
                                    reason: format!("wait on {object_id}"),
                                },
                            );
                        }
                        return Ok(false);
                    }
                }
            }
            Op::OpenFile { path, fd } => {
                let file = self.fs.open(path, pid);
                self.processes[index].fd_table.insert(*fd, file);
                self.processes[index].pc += 1;
            }
            Op::FlockExclusive { fd } => {
                let file = *self.processes[index].fd_table.get(fd).ok_or_else(|| {
                    MesError::Simulation {
                        reason: format!("descriptor {fd} is not open"),
                    }
                })?;
                if self.wake_granted.remove(&pid) {
                    self.processes[index].pc += 1;
                } else {
                    let interference = self.noise.sample_open_interference(&mut self.rng);
                    self.processes[index].local_time += interference;
                    match self.fs.lock_exclusive(file, pid)? {
                        LockRequestOutcome::Granted | LockRequestOutcome::AlreadyHeld => {
                            self.processes[index].pc += 1;
                        }
                        LockRequestOutcome::Blocked => {
                            let inode = self.fs.inode_of(file)?;
                            self.processes[index].run_state =
                                RunState::Blocked(BlockReason::FileLock(inode));
                            if self.trace.is_enabled() {
                                let t = self.processes[index].local_time;
                                self.record_trace(
                                    t,
                                    pid,
                                    TraceKind::Blocked {
                                        reason: format!("flock on {inode}"),
                                    },
                                );
                            }
                            return Ok(false);
                        }
                    }
                }
            }
            Op::FlockUnlock { fd } => {
                let file = *self.processes[index].fd_table.get(fd).ok_or_else(|| {
                    MesError::Simulation {
                        reason: format!("descriptor {fd} is not open"),
                    }
                })?;
                let mut woken = std::mem::take(&mut self.woken_scratch);
                if let Err(error) = self.fs.unlock_into(file, pid, &mut woken) {
                    self.woken_scratch = woken;
                    return Err(error);
                }
                let granted = self.fs.fairness() == Fairness::Fair;
                let now = self.processes[index].local_time;
                for &waiter in &woken {
                    let latency = self.noise.sample_wait_wakeup(&mut self.rng);
                    self.wake(waiter, now + latency, granted);
                }
                woken.clear();
                self.woken_scratch = woken;
                let idx = self.proc_index(pid);
                self.processes[idx].pc += 1;
            }
            Op::Barrier { id } => {
                if self.wake_granted.remove(&pid) {
                    self.processes[index].pc += 1;
                } else {
                    let parties = self.barrier_parties.unwrap_or(1);
                    let mut released = std::mem::take(&mut self.barrier_scratch);
                    released.clear();
                    let entry = self.barriers.entry(*id).or_default();
                    entry.arrived.push(pid);
                    let opened = entry.arrived.len() >= parties;
                    if opened {
                        // Drain into the scratch buffer so the barrier keeps
                        // its arrival list's allocation for the next round.
                        released.append(&mut entry.arrived);
                    }
                    if opened {
                        let now = self.processes[index].local_time;
                        for &other in &released {
                            if other != pid {
                                let latency = self.noise.sample_wait_wakeup(&mut self.rng);
                                self.wake(other, now + latency, true);
                            }
                        }
                        released.clear();
                        self.barrier_scratch = released;
                        self.processes[index].pc += 1;
                    } else {
                        self.barrier_scratch = released;
                        self.processes[index].run_state =
                            RunState::Blocked(BlockReason::Barrier(*id));
                        if self.trace.is_enabled() {
                            let t = self.processes[index].local_time;
                            self.record_trace(
                                t,
                                pid,
                                TraceKind::Blocked {
                                    reason: format!("barrier {id}"),
                                },
                            );
                        }
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    /// After an object was signalled/released, hand it to parked waiters in
    /// FIFO order for as long as it stays signalled.
    fn wake_object_waiters(&mut self, object_id: ObjectId, waker: ProcessId) -> Result<()> {
        let now = self.processes[self.proc_index(waker)].local_time;
        loop {
            let obj = &mut self.objects[object_id.as_usize()];
            if obj.waiter_count() == 0 {
                break;
            }
            let Some(waiter) = obj.dequeue_waiter() else {
                break;
            };
            if obj.is_signaled_for(waiter) {
                obj.acquire(waiter);
                let latency = self.noise.sample_wait_wakeup(&mut self.rng);
                self.wake(waiter, now + latency, true);
            } else {
                // Not signalled for this waiter (e.g. semaphore exhausted):
                // put it back at the head, preserving FIFO order, and stop.
                obj.requeue_waiter_front(waiter);
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::namespace::SessionId;
    use crate::kernel::object::ObjectKind;
    use mes_types::{FdId, HandleId, Micros};

    fn noiseless_engine() -> Engine {
        Engine::new(NoiseModel::noiseless(), 42)
    }

    #[test]
    fn event_wait_measures_trojan_delay() {
        let spy = Program::new("spy")
            .op(Op::CreateObject {
                name: "evt".into(),
                kind: ObjectKind::event_auto_reset(),
                handle: HandleId::new(1),
            })
            .op(Op::TimestampStart { slot: 0 })
            .op(Op::WaitForSingleObject {
                handle: HandleId::new(1),
            })
            .op(Op::TimestampEnd { slot: 0 });
        let trojan = Program::new("trojan")
            .op(Op::Compute {
                duration: Nanos::new(100),
            })
            .op(Op::OpenObject {
                name: "evt".into(),
                handle: HandleId::new(8),
            })
            .op(Op::SleepFor {
                duration: Micros::new(80).to_nanos(),
            })
            .op(Op::SetEvent {
                handle: HandleId::new(8),
            });

        let mut engine = noiseless_engine();
        let spy_pid = engine.spawn(spy);
        engine.spawn(trojan);
        let outcome = engine.run().unwrap();
        let waits = outcome.durations(spy_pid);
        assert_eq!(waits.len(), 1);
        assert!(waits[0] >= Micros::new(80).to_nanos());
        assert!(waits[0] < Micros::new(82).to_nanos());
    }

    #[test]
    fn signaled_event_does_not_block() {
        let spy = Program::new("spy")
            .op(Op::CreateObject {
                name: "evt".into(),
                kind: ObjectKind::Event {
                    manual_reset: false,
                    initially_signaled: true,
                },
                handle: HandleId::new(1),
            })
            .op(Op::TimestampStart { slot: 0 })
            .op(Op::WaitForSingleObject {
                handle: HandleId::new(1),
            })
            .op(Op::TimestampEnd { slot: 0 });
        let mut engine = noiseless_engine();
        let spy_pid = engine.spawn(spy);
        let outcome = engine.run().unwrap();
        assert_eq!(outcome.durations(spy_pid)[0], Nanos::ZERO);
    }

    #[test]
    fn flock_contention_blocks_until_unlock() {
        let trojan = Program::new("trojan")
            .op(Op::OpenFile {
                path: "/f".into(),
                fd: FdId::new(1),
            })
            .op(Op::FlockExclusive { fd: FdId::new(1) })
            .op(Op::SleepFor {
                duration: Micros::new(160).to_nanos(),
            })
            .op(Op::FlockUnlock { fd: FdId::new(1) });
        let spy = Program::new("spy")
            .op(Op::OpenFile {
                path: "/f".into(),
                fd: FdId::new(0),
            })
            .op(Op::Compute {
                duration: Micros::new(5).to_nanos(),
            })
            .op(Op::TimestampStart { slot: 0 })
            .op(Op::FlockExclusive { fd: FdId::new(0) })
            .op(Op::FlockUnlock { fd: FdId::new(0) })
            .op(Op::TimestampEnd { slot: 0 });
        let mut engine = noiseless_engine();
        engine.spawn(trojan);
        let spy_pid = engine.spawn(spy);
        let outcome = engine.run().unwrap();
        let blocked = outcome.durations(spy_pid)[0];
        assert!(blocked >= Micros::new(150).to_nanos(), "blocked {blocked}");
        assert!(blocked <= Micros::new(165).to_nanos(), "blocked {blocked}");
    }

    #[test]
    fn uncontended_flock_is_fast() {
        let spy = Program::new("spy")
            .op(Op::OpenFile {
                path: "/f".into(),
                fd: FdId::new(0),
            })
            .op(Op::TimestampStart { slot: 0 })
            .op(Op::FlockExclusive { fd: FdId::new(0) })
            .op(Op::FlockUnlock { fd: FdId::new(0) })
            .op(Op::TimestampEnd { slot: 0 });
        let mut engine = noiseless_engine();
        let spy_pid = engine.spawn(spy);
        let outcome = engine.run().unwrap();
        assert_eq!(outcome.durations(spy_pid)[0], Nanos::ZERO);
    }

    #[test]
    fn semaphore_wait_blocks_until_release() {
        let spy = Program::new("spy")
            .op(Op::CreateObject {
                name: "sem".into(),
                kind: ObjectKind::semaphore(0, 8),
                handle: HandleId::new(1),
            })
            .op(Op::TimestampStart { slot: 0 })
            .op(Op::WaitForSingleObject {
                handle: HandleId::new(1),
            })
            .op(Op::TimestampEnd { slot: 0 });
        let trojan = Program::new("trojan")
            .op(Op::Compute {
                duration: Nanos::new(10),
            })
            .op(Op::OpenObject {
                name: "sem".into(),
                handle: HandleId::new(2),
            })
            .op(Op::SleepFor {
                duration: Micros::new(230).to_nanos(),
            })
            .op(Op::ReleaseSemaphore {
                handle: HandleId::new(2),
                count: 1,
            });
        let mut engine = noiseless_engine();
        let spy_pid = engine.spawn(spy);
        engine.spawn(trojan);
        let outcome = engine.run().unwrap();
        assert!(outcome.durations(spy_pid)[0] >= Micros::new(230).to_nanos());
    }

    #[test]
    fn timer_wakes_waiter_at_due_time() {
        let spy = Program::new("spy")
            .op(Op::CreateObject {
                name: "tmr".into(),
                kind: ObjectKind::Timer,
                handle: HandleId::new(1),
            })
            .op(Op::TimestampStart { slot: 0 })
            .op(Op::WaitForSingleObject {
                handle: HandleId::new(1),
            })
            .op(Op::TimestampEnd { slot: 0 });
        let trojan = Program::new("trojan")
            .op(Op::Compute {
                duration: Nanos::new(10),
            })
            .op(Op::OpenObject {
                name: "tmr".into(),
                handle: HandleId::new(3),
            })
            .op(Op::SleepFor {
                duration: Micros::new(40).to_nanos(),
            })
            .op(Op::SetTimer {
                handle: HandleId::new(3),
                due: Micros::new(5).to_nanos(),
            });
        let mut engine = noiseless_engine();
        let spy_pid = engine.spawn(spy);
        engine.spawn(trojan);
        let outcome = engine.run().unwrap();
        let wait = outcome.durations(spy_pid)[0];
        assert!(wait >= Micros::new(45).to_nanos(), "wait {wait}");
        assert!(wait <= Micros::new(47).to_nanos(), "wait {wait}");
    }

    #[test]
    fn mutex_contention_hand_off() {
        let trojan = Program::new("trojan")
            .op(Op::CreateObject {
                name: "mtx".into(),
                kind: ObjectKind::Mutex,
                handle: HandleId::new(1),
            })
            .op(Op::WaitForSingleObject {
                handle: HandleId::new(1),
            })
            .op(Op::SleepFor {
                duration: Micros::new(140).to_nanos(),
            })
            .op(Op::ReleaseMutex {
                handle: HandleId::new(1),
            });
        let spy = Program::new("spy")
            .op(Op::Compute {
                duration: Micros::new(2).to_nanos(),
            })
            .op(Op::OpenObject {
                name: "mtx".into(),
                handle: HandleId::new(4),
            })
            .op(Op::TimestampStart { slot: 0 })
            .op(Op::WaitForSingleObject {
                handle: HandleId::new(4),
            })
            .op(Op::ReleaseMutex {
                handle: HandleId::new(4),
            })
            .op(Op::TimestampEnd { slot: 0 });
        let mut engine = noiseless_engine();
        engine.spawn(trojan);
        let spy_pid = engine.spawn(spy);
        let outcome = engine.run().unwrap();
        let wait = outcome.durations(spy_pid)[0];
        assert!(wait >= Micros::new(130).to_nanos(), "wait {wait}");
    }

    #[test]
    fn barrier_synchronises_two_processes() {
        let a = Program::new("a")
            .op(Op::SleepFor {
                duration: Micros::new(100).to_nanos(),
            })
            .op(Op::Barrier { id: 1 })
            .op(Op::TimestampStart { slot: 0 })
            .op(Op::TimestampEnd { slot: 0 });
        let b = Program::new("b")
            .op(Op::Barrier { id: 1 })
            .op(Op::TimestampStart { slot: 0 })
            .op(Op::TimestampEnd { slot: 0 });
        let mut engine = noiseless_engine();
        let a_pid = engine.spawn(a);
        let b_pid = engine.spawn(b);
        let outcome = engine.run().unwrap();
        // Both reach their timestamps only after the barrier, i.e. at >= 100us.
        let a_start = outcome.measurements(a_pid)[0].start;
        let b_start = outcome.measurements(b_pid)[0].start;
        assert!(a_start >= Micros::new(100).to_nanos());
        assert!(b_start >= Micros::new(100).to_nanos());
    }

    #[test]
    fn cross_session_open_fails() {
        let creator = Program::new("creator")
            .in_session(SessionId::new(1))
            .op(Op::CreateObject {
                name: "evt".into(),
                kind: ObjectKind::event_auto_reset(),
                handle: HandleId::new(1),
            });
        let opener = Program::new("opener")
            .in_session(SessionId::new(2))
            .op(Op::Compute {
                duration: Micros::new(1).to_nanos(),
            })
            .op(Op::OpenObject {
                name: "evt".into(),
                handle: HandleId::new(1),
            });
        let mut engine = noiseless_engine();
        engine.spawn(creator);
        engine.spawn(opener);
        assert!(engine.run().is_err());
    }

    #[test]
    fn deadlock_is_detected() {
        let waiter = Program::new("waiter")
            .op(Op::CreateObject {
                name: "evt".into(),
                kind: ObjectKind::event_auto_reset(),
                handle: HandleId::new(1),
            })
            .op(Op::WaitForSingleObject {
                handle: HandleId::new(1),
            });
        let mut engine = noiseless_engine();
        engine.spawn(waiter);
        let err = engine.run().unwrap_err();
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn unknown_handle_is_an_error() {
        let bad = Program::new("bad").op(Op::SetEvent {
            handle: HandleId::new(9),
        });
        let mut engine = noiseless_engine();
        engine.spawn(bad);
        assert!(engine.run().is_err());
    }

    #[test]
    fn mismatched_timestamp_end_is_an_error() {
        let bad = Program::new("bad").op(Op::TimestampEnd { slot: 3 });
        let mut engine = noiseless_engine();
        engine.spawn(bad);
        assert!(engine.run().is_err());
    }

    #[test]
    fn trace_records_ops_when_enabled() {
        let p = Program::new("p")
            .op(Op::Compute {
                duration: Nanos::new(5),
            })
            .op(Op::TimestampStart { slot: 0 })
            .op(Op::TimestampEnd { slot: 0 });
        let mut engine = noiseless_engine();
        engine.enable_trace(64);
        let pid = engine.spawn(p);
        let outcome = engine.run().unwrap();
        assert!(!outcome.trace().events().is_empty());
        assert!(outcome.trace().for_process(pid).len() >= 3);
        assert_eq!(outcome.process_name(pid), Some("p"));
        assert!(outcome.executed_ops() >= 3);
    }

    #[test]
    fn durations_are_ordered_by_slot() {
        let p = Program::new("p")
            .op(Op::TimestampStart { slot: 1 })
            .op(Op::Compute {
                duration: Nanos::new(500),
            })
            .op(Op::TimestampEnd { slot: 1 })
            .op(Op::TimestampStart { slot: 0 })
            .op(Op::Compute {
                duration: Nanos::new(100),
            })
            .op(Op::TimestampEnd { slot: 0 });
        let mut engine = noiseless_engine();
        let pid = engine.spawn(p);
        let outcome = engine.run().unwrap();
        let durations = outcome.durations(pid);
        assert_eq!(durations, vec![Nanos::new(100), Nanos::new(500)]);
    }

    #[test]
    fn reset_engine_is_identical_to_fresh_engine() {
        fn flock_round(engine: &mut Engine) -> Vec<Nanos> {
            let trojan = Program::new("trojan")
                .op(Op::OpenFile {
                    path: "/f".into(),
                    fd: FdId::new(1),
                })
                .op(Op::FlockExclusive { fd: FdId::new(1) })
                .op(Op::SleepFor {
                    duration: Micros::new(120).to_nanos(),
                })
                .op(Op::FlockUnlock { fd: FdId::new(1) });
            let spy = Program::new("spy")
                .op(Op::OpenFile {
                    path: "/f".into(),
                    fd: FdId::new(0),
                })
                .op(Op::CreateObject {
                    name: "evt".into(),
                    kind: ObjectKind::event_auto_reset(),
                    handle: HandleId::new(1),
                })
                .op(Op::Compute {
                    duration: Micros::new(5).to_nanos(),
                })
                .op(Op::TimestampStart { slot: 0 })
                .op(Op::FlockExclusive { fd: FdId::new(0) })
                .op(Op::FlockUnlock { fd: FdId::new(0) })
                .op(Op::TimestampEnd { slot: 0 });
            engine.spawn(trojan);
            let spy_pid = engine.spawn(spy);
            engine.run().unwrap().durations(spy_pid)
        }

        // A noisy model so the RNG stream matters.
        let noise = NoiseModel::default();
        let mut fresh = Engine::new(noise.clone(), 77);
        let expected = flock_round(&mut fresh);

        let mut reused = Engine::new(noise.clone(), 1234);
        flock_round(&mut reused); // dirty every table
        reused.reset(noise, 77);
        assert_eq!(flock_round(&mut reused), expected);
        // 4 trojan ops + 7 spy ops, with the spy's blocked FlockExclusive
        // charged again when it re-executes after wake-up.
        assert_eq!(reused.executed_ops, 12);
    }

    #[test]
    fn reset_releases_shared_program_references() {
        let mut program = Arc::new(Program::new("p").op(Op::Compute {
            duration: Nanos::new(5),
        }));
        let mut engine = noiseless_engine();
        engine.spawn_shared(Arc::clone(&program));
        engine.run_in_place().unwrap();
        assert_eq!(
            Arc::strong_count(&program),
            2,
            "the engine holds the program while the round's state is live"
        );
        engine.reset(NoiseModel::noiseless(), 1);
        assert!(
            Arc::get_mut(&mut program).is_some(),
            "a reset engine must not pin the program: in-place patching \
             relies on re-acquiring unique ownership between rounds"
        );
        // And the engine still runs correctly after the release.
        engine.spawn_shared(Arc::clone(&program));
        engine.run_in_place().unwrap();
        assert_eq!(engine.executed_ops(), 1);
    }

    #[test]
    fn unfair_mode_lets_holder_reacquire() {
        use crate::fs::Fairness;
        // Trojan: lock, sleep, unlock, immediately lock again, hold long.
        let trojan = Program::new("trojan")
            .op(Op::OpenFile {
                path: "/f".into(),
                fd: FdId::new(1),
            })
            .op(Op::FlockExclusive { fd: FdId::new(1) })
            .op(Op::SleepFor {
                duration: Micros::new(50).to_nanos(),
            })
            .op(Op::FlockUnlock { fd: FdId::new(1) })
            .op(Op::FlockExclusive { fd: FdId::new(1) })
            .op(Op::SleepFor {
                duration: Micros::new(200).to_nanos(),
            })
            .op(Op::FlockUnlock { fd: FdId::new(1) });
        let spy = Program::new("spy")
            .op(Op::OpenFile {
                path: "/f".into(),
                fd: FdId::new(0),
            })
            .op(Op::Compute {
                duration: Micros::new(5).to_nanos(),
            })
            .op(Op::TimestampStart { slot: 0 })
            .op(Op::FlockExclusive { fd: FdId::new(0) })
            .op(Op::FlockUnlock { fd: FdId::new(0) })
            .op(Op::TimestampEnd { slot: 0 });
        let mut engine = noiseless_engine();
        engine.set_fairness(Fairness::Unfair);
        engine.spawn(trojan);
        let spy_pid = engine.spawn(spy);
        let outcome = engine.run().unwrap();
        // Under unfair hand-off the trojan re-acquires before the spy wakes,
        // so the spy is blocked across both holds (~250us), not just the first.
        let blocked = outcome.durations(spy_pid)[0];
        assert!(blocked >= Micros::new(240).to_nanos(), "blocked {blocked}");
    }
}
