//! Simulated processes, their programs and the measurements they record.

use crate::kernel::namespace::SessionId;
use crate::ops::Op;
use mes_types::{Nanos, ProcessId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Human-readable name of a simulated process (e.g. `"trojan"`, `"spy"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcessName(String);

impl ProcessName {
    /// Creates a process name.
    pub fn new(name: impl Into<String>) -> Self {
        ProcessName(name.into())
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ProcessName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ProcessName {
    fn from(s: &str) -> Self {
        ProcessName::new(s)
    }
}

/// A program to be executed by one simulated process: a name, the session it
/// runs in (VM / sandbox modelling) and a flat list of ops.
///
/// # Examples
///
/// ```
/// use mes_sim::{Op, Program, SessionId};
/// use mes_types::Micros;
///
/// let program = Program::new("trojan")
///     .in_session(SessionId::new(1))
///     .op(Op::SleepFor { duration: Micros::new(10).to_nanos() })
///     .op(Op::Compute { duration: Micros::new(1).to_nanos() });
/// assert_eq!(program.ops().len(), 2);
/// assert_eq!(program.session(), SessionId::new(1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    name: ProcessName,
    session: SessionId,
    ops: Vec<Op>,
}

impl Program {
    /// Creates an empty program running in the default session 0.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: ProcessName::new(name),
            session: SessionId::default(),
            ops: Vec::new(),
        }
    }

    /// Places the process in a session (VM or sandbox boundary modelling).
    pub fn in_session(mut self, session: SessionId) -> Self {
        self.session = session;
        self
    }

    /// Appends one op (builder style).
    pub fn op(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Appends many ops (builder style).
    pub fn ops_extend<I: IntoIterator<Item = Op>>(mut self, ops: I) -> Self {
        self.ops.extend(ops);
        self
    }

    /// Appends one op in place.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// The process name.
    pub fn name(&self) -> &ProcessName {
        &self.name
    }

    /// The session the process runs in.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The ops of the program.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Mutable access to the ops for the in-place duration patcher
    /// (see [`crate::patch::ProgramPatcher`]).
    pub(crate) fn ops_mut(&mut self) -> &mut [Op] {
        &mut self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// One closed measurement window recorded by `TimestampStart`/`TimestampEnd`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Measurement {
    /// The slot (usually the bit index) the window belongs to.
    pub slot: u32,
    /// Virtual time at `TimestampStart`.
    pub start: Nanos,
    /// Virtual time at `TimestampEnd`.
    pub end: Nanos,
}

impl Measurement {
    /// The measured duration.
    pub fn elapsed(&self) -> Nanos {
        self.end.saturating_sub(self.start)
    }
}

/// Execution state of a simulated process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum RunState {
    /// Ready or running; the scheduler will execute its next op.
    Runnable,
    /// Blocked on shared state (lock, object wait, barrier).
    Blocked(BlockReason),
    /// Finished executing its program.
    Terminated,
}

/// Why a process is blocked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum BlockReason {
    /// Waiting for a kernel object to become signalled.
    Object(mes_types::ObjectId),
    /// Waiting for an advisory file lock.
    FileLock(mes_types::InodeId),
    /// Waiting at an inter-bit synchronization barrier.
    Barrier(u32),
}

/// Internal per-process bookkeeping used by the engine.
///
/// States live in the engine's process [`Slab`](crate::arena::Slab): resets
/// retire them with their hash tables and buffers intact, and
/// [`ProcessState::recycle`] reinitialises a retired state for the next
/// round's process without allocating. Programs are shared via [`Arc`], so
/// re-running a cached program costs a reference-count bump, not a clone of
/// its op list.
#[derive(Debug, Clone)]
pub(crate) struct ProcessState {
    pub(crate) id: ProcessId,
    pub(crate) program: Arc<Program>,
    pub(crate) pc: usize,
    pub(crate) local_time: Nanos,
    pub(crate) run_state: RunState,
    pub(crate) handle_table: crate::kernel::handles::HandleTable,
    pub(crate) fd_table: HashMap<mes_types::FdId, mes_types::FileId>,
    pub(crate) open_windows: HashMap<u32, Nanos>,
    pub(crate) measurements: Vec<Measurement>,
}

impl ProcessState {
    pub(crate) fn new(id: ProcessId, program: Arc<Program>) -> Self {
        ProcessState {
            id,
            program,
            pc: 0,
            local_time: Nanos::ZERO,
            run_state: RunState::Runnable,
            handle_table: crate::kernel::handles::HandleTable::new(),
            fd_table: HashMap::new(),
            open_windows: HashMap::new(),
            measurements: Vec::new(),
        }
    }

    /// Replaces the program reference with a shared placeholder so the real
    /// program's `Arc` strong count drops back to its external holders.
    ///
    /// Called on every retired state by `Engine::reset`: without it, retired
    /// slots would pin the previous round's programs alive and
    /// `Arc::get_mut`-based in-place duration patching (the shape-keyed
    /// program cache) could never re-acquire unique ownership.
    pub(crate) fn park_program(&mut self, placeholder: &Arc<Program>) {
        self.program = Arc::clone(placeholder);
    }

    /// Reinitialises a retired state for a new process, keeping the capacity
    /// of every table and buffer it owns.
    pub(crate) fn recycle(&mut self, id: ProcessId, program: Arc<Program>) {
        self.id = id;
        self.program = program;
        self.pc = 0;
        self.local_time = Nanos::ZERO;
        self.run_state = RunState::Runnable;
        self.handle_table.clear();
        self.fd_table.clear();
        self.open_windows.clear();
        self.measurements.clear();
    }

    pub(crate) fn is_terminated(&self) -> bool {
        matches!(self.run_state, RunState::Terminated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_types::Micros;

    #[test]
    fn program_builder_accumulates_ops() {
        let program = Program::new("spy")
            .op(Op::TimestampStart { slot: 0 })
            .ops_extend([
                Op::SleepFor {
                    duration: Micros::new(5).to_nanos(),
                },
                Op::TimestampEnd { slot: 0 },
            ]);
        assert_eq!(program.len(), 3);
        assert!(!program.is_empty());
        assert_eq!(program.name().as_str(), "spy");
    }

    #[test]
    fn measurement_elapsed_saturates() {
        let m = Measurement {
            slot: 1,
            start: Nanos::new(100),
            end: Nanos::new(40),
        };
        assert_eq!(m.elapsed(), Nanos::ZERO);
        let ok = Measurement {
            slot: 1,
            start: Nanos::new(40),
            end: Nanos::new(100),
        };
        assert_eq!(ok.elapsed(), Nanos::new(60));
    }

    #[test]
    fn process_state_starts_runnable_at_time_zero() {
        let state = ProcessState::new(ProcessId::new(1), Arc::new(Program::new("p")));
        assert_eq!(state.local_time, Nanos::ZERO);
        assert!(matches!(state.run_state, RunState::Runnable));
        assert!(state.program.ops().is_empty());
        assert!(!state.is_terminated());
    }

    #[test]
    fn recycle_resets_state_and_swaps_program() {
        let mut state = ProcessState::new(
            ProcessId::new(1),
            Arc::new(Program::new("old").op(Op::TimestampStart { slot: 0 })),
        );
        state.pc = 1;
        state.local_time = Nanos::new(50);
        state.run_state = RunState::Terminated;
        state.open_windows.insert(0, Nanos::new(10));
        state.measurements.push(Measurement {
            slot: 0,
            start: Nanos::ZERO,
            end: Nanos::new(10),
        });

        state.recycle(ProcessId::new(2), Arc::new(Program::new("new")));
        assert_eq!(state.id, ProcessId::new(2));
        assert_eq!(state.pc, 0);
        assert_eq!(state.local_time, Nanos::ZERO);
        assert!(matches!(state.run_state, RunState::Runnable));
        assert!(state.open_windows.is_empty());
        assert!(state.measurements.is_empty());
        assert_eq!(state.program.name().as_str(), "new");
    }

    #[test]
    fn process_name_display() {
        assert_eq!(ProcessName::from("trojan").to_string(), "trojan");
    }
}
