//! In-place duration patching of compiled programs.
//!
//! A duration sweep runs the *same program shape* at every point: the op
//! sequence of the Trojan/Spy pair is fixed, only the durations carried
//! inside `SleepFor`/`Compute`/`SetTimer` ops move. Recompiling the pair per
//! point costs two op-list allocations plus every owned string inside the
//! ops; a [`ProgramPatcher`] instead walks the existing op list once,
//! rewrites the duration fields in place and **verifies** every structural
//! field it passes (op kind, handles, descriptors, slots, object kinds), so
//! a shape mismatch can never silently produce a half-patched program — the
//! caller observes the failure via [`ProgramPatcher::finish`] and recompiles.
//!
//! The walk allocates nothing, which is what extends the simulator's
//! zero-allocation guarantee from *fixed-plan* to *fixed-shape* warm
//! batches (see `tests/alloc_regression.rs`).
//!
//! # Examples
//!
//! ```
//! use mes_sim::{Op, Program};
//! use mes_types::{Micros, Nanos};
//!
//! let mut program = Program::new("trojan")
//!     .op(Op::SleepFor { duration: Micros::new(80).to_nanos() })
//!     .op(Op::Compute { duration: Micros::new(10).to_nanos() });
//!
//! let mut patcher = program.patcher();
//! patcher.sleep_for(Micros::new(120).to_nanos());
//! patcher.compute(Micros::new(5).to_nanos());
//! assert!(patcher.finish(), "structure matched, all ops visited");
//! assert_eq!(
//!     program.ops()[0],
//!     Op::SleepFor { duration: Micros::new(120).to_nanos() },
//! );
//! ```

use crate::kernel::object::ObjectKind;
use crate::ops::Op;
use crate::process::Program;
use mes_types::{FdId, HandleId, Nanos};

/// A cursor over a program's ops that overwrites duration fields and
/// verifies structural fields, op by op.
///
/// Obtained from [`Program::patcher`]. The caller replays the program's
/// construction sequence against the patcher; each call advances the cursor
/// by one op. Any mismatch — wrong op kind, wrong handle/descriptor/slot, a
/// shorter or longer op list — latches a failure that
/// [`ProgramPatcher::finish`] reports, leaving the caller to rebuild from
/// scratch (the program may be partially patched at that point, so a failed
/// patch must always be followed by a rebuild).
#[derive(Debug)]
pub struct ProgramPatcher<'a> {
    ops: std::slice::IterMut<'a, Op>,
    matched: bool,
}

impl Program {
    /// Starts an in-place duration patch over this program's ops.
    pub fn patcher(&mut self) -> ProgramPatcher<'_> {
        ProgramPatcher {
            ops: self.ops_mut().iter_mut(),
            matched: true,
        }
    }
}

impl ProgramPatcher<'_> {
    /// Advances to the next op and applies `visit`; latches failure when the
    /// op list is exhausted or `visit` rejects the op.
    fn advance(&mut self, visit: impl FnOnce(&mut Op) -> bool) {
        if !self.matched {
            return;
        }
        self.matched = match self.ops.next() {
            Some(op) => visit(op),
            None => false,
        };
    }

    /// Patches a `SleepFor` op's duration.
    pub fn sleep_for(&mut self, duration: Nanos) {
        self.advance(|op| match op {
            Op::SleepFor { duration: slot } => {
                *slot = duration;
                true
            }
            _ => false,
        });
    }

    /// Patches a `Compute` op's duration.
    pub fn compute(&mut self, duration: Nanos) {
        self.advance(|op| match op {
            Op::Compute { duration: slot } => {
                *slot = duration;
                true
            }
            _ => false,
        });
    }

    /// Patches a `SetTimer` op's due time, verifying its handle.
    pub fn set_timer(&mut self, handle: HandleId, due: Nanos) {
        self.advance(|op| match op {
            Op::SetTimer {
                handle: h,
                due: slot,
            } if *h == handle => {
                *slot = due;
                true
            }
            _ => false,
        });
    }

    /// Verifies a `CreateObject` op's kind and handle (the name is kept: it
    /// depends only on structural inputs, never on durations).
    pub fn create_object(&mut self, kind: ObjectKind, handle: HandleId) {
        self.advance(
            |op| matches!(op, Op::CreateObject { kind: k, handle: h, .. } if *k == kind && *h == handle),
        );
    }

    /// Verifies an `OpenObject` op's handle.
    pub fn open_object(&mut self, handle: HandleId) {
        self.advance(|op| matches!(op, Op::OpenObject { handle: h, .. } if *h == handle));
    }

    /// Verifies an `OpenFile` op's descriptor.
    pub fn open_file(&mut self, fd: FdId) {
        self.advance(|op| matches!(op, Op::OpenFile { fd: f, .. } if *f == fd));
    }

    /// Verifies a `SetEvent` op's handle.
    pub fn set_event(&mut self, handle: HandleId) {
        self.advance(|op| matches!(op, Op::SetEvent { handle: h } if *h == handle));
    }

    /// Verifies a `ReleaseMutex` op's handle.
    pub fn release_mutex(&mut self, handle: HandleId) {
        self.advance(|op| matches!(op, Op::ReleaseMutex { handle: h } if *h == handle));
    }

    /// Verifies a `ReleaseSemaphore` op's handle and count.
    pub fn release_semaphore(&mut self, handle: HandleId, count: u32) {
        self.advance(
            |op| matches!(op, Op::ReleaseSemaphore { handle: h, count: c } if *h == handle && *c == count),
        );
    }

    /// Verifies a `WaitForSingleObject` op's handle.
    pub fn wait_for_single_object(&mut self, handle: HandleId) {
        self.advance(|op| matches!(op, Op::WaitForSingleObject { handle: h } if *h == handle));
    }

    /// Verifies a `FlockExclusive` op's descriptor.
    pub fn flock_exclusive(&mut self, fd: FdId) {
        self.advance(|op| matches!(op, Op::FlockExclusive { fd: f } if *f == fd));
    }

    /// Verifies a `FlockUnlock` op's descriptor.
    pub fn flock_unlock(&mut self, fd: FdId) {
        self.advance(|op| matches!(op, Op::FlockUnlock { fd: f } if *f == fd));
    }

    /// Verifies a `TimestampStart` op's slot.
    pub fn timestamp_start(&mut self, slot: u32) {
        self.advance(|op| matches!(op, Op::TimestampStart { slot: s } if *s == slot));
    }

    /// Verifies a `TimestampEnd` op's slot.
    pub fn timestamp_end(&mut self, slot: u32) {
        self.advance(|op| matches!(op, Op::TimestampEnd { slot: s } if *s == slot));
    }

    /// Verifies a `Barrier` op's id.
    pub fn barrier(&mut self, id: u32) {
        self.advance(|op| matches!(op, Op::Barrier { id: i } if *i == id));
    }

    /// Finishes the patch: `true` iff every op matched its replayed
    /// counterpart **and** the whole op list was visited. On `false` the
    /// program must be considered corrupt (partially patched) and rebuilt.
    pub fn finish(mut self) -> bool {
        self.matched && self.ops.next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_types::Micros;

    fn timed_program() -> Program {
        Program::new("p")
            .op(Op::OpenFile {
                path: "/f".into(),
                fd: FdId::new(1),
            })
            .op(Op::FlockExclusive { fd: FdId::new(1) })
            .op(Op::SleepFor {
                duration: Micros::new(100).to_nanos(),
            })
            .op(Op::FlockUnlock { fd: FdId::new(1) })
    }

    #[test]
    fn matching_replay_patches_durations_in_place() {
        let mut program = timed_program();
        let mut patcher = program.patcher();
        patcher.open_file(FdId::new(1));
        patcher.flock_exclusive(FdId::new(1));
        patcher.sleep_for(Micros::new(250).to_nanos());
        patcher.flock_unlock(FdId::new(1));
        assert!(patcher.finish());
        assert_eq!(
            program.ops()[2],
            Op::SleepFor {
                duration: Micros::new(250).to_nanos()
            }
        );
        // Structural ops untouched.
        assert_eq!(
            program.ops()[0],
            Op::OpenFile {
                path: "/f".into(),
                fd: FdId::new(1)
            }
        );
    }

    #[test]
    fn wrong_op_kind_fails_the_patch() {
        let mut program = timed_program();
        let mut patcher = program.patcher();
        patcher.open_file(FdId::new(1));
        patcher.compute(Nanos::new(5)); // actual op is FlockExclusive
        patcher.flock_unlock(FdId::new(1));
        patcher.sleep_for(Nanos::new(1));
        assert!(!patcher.finish());
    }

    #[test]
    fn wrong_structural_field_fails_the_patch() {
        let mut program = timed_program();
        let mut patcher = program.patcher();
        patcher.open_file(FdId::new(9)); // wrong descriptor
        assert!(!patcher.finish());
    }

    #[test]
    fn unvisited_tail_fails_the_patch() {
        let mut program = timed_program();
        let mut patcher = program.patcher();
        patcher.open_file(FdId::new(1));
        assert!(!patcher.finish(), "three ops were never visited");
    }

    #[test]
    fn replaying_past_the_end_fails_the_patch() {
        let mut program = Program::new("p").op(Op::Barrier { id: 0 });
        let mut patcher = program.patcher();
        patcher.barrier(0);
        patcher.barrier(1);
        assert!(!patcher.finish());
    }

    #[test]
    fn kernel_object_ops_verify_their_fields() {
        let h = HandleId::new(2);
        let mut program = Program::new("p")
            .op(Op::CreateObject {
                name: "sem".into(),
                kind: ObjectKind::semaphore(0, 8),
                handle: h,
            })
            .op(Op::WaitForSingleObject { handle: h })
            .op(Op::ReleaseSemaphore {
                handle: h,
                count: 1,
            })
            .op(Op::SetTimer {
                handle: h,
                due: Nanos::new(10),
            });
        let mut patcher = program.patcher();
        patcher.create_object(ObjectKind::semaphore(0, 8), h);
        patcher.wait_for_single_object(h);
        patcher.release_semaphore(h, 1);
        patcher.set_timer(h, Nanos::new(99));
        assert!(patcher.finish());
        assert_eq!(
            program.ops()[3],
            Op::SetTimer {
                handle: h,
                due: Nanos::new(99)
            }
        );

        // A different object kind (e.g. a resized semaphore) is structural
        // and must fail instead of silently keeping the old size.
        let mut patcher = program.patcher();
        patcher.create_object(ObjectKind::semaphore(0, 9), h);
        assert!(!patcher.finish());
    }
}
