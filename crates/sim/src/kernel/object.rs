//! System-level kernel objects: Event, Mutex, Semaphore and WaitableTimer.
//!
//! The paper's Windows channels are built on exactly these four object kinds
//! plus `WaitForSingleObject`. The state carried here matches the data
//! members the paper calls out in Fig. 4: the signal flag and reset mode of
//! an Event, the owning thread and recursion counter of a Mutex, and the
//! count of a Semaphore.

use mes_types::{MesError, Nanos, ProcessId, Result};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The kind (and initial state) of a kernel object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ObjectKind {
    /// Event object: `signaled` flips with `SetEvent`/`ResetEvent`;
    /// `manual_reset == false` means the event auto-resets after releasing
    /// one waiter (the mode Protocol 2 uses).
    Event {
        /// Whether the event must be reset manually.
        manual_reset: bool,
        /// Whether the event starts signalled.
        initially_signaled: bool,
    },
    /// Mutex object: unowned mutexes are signalled; acquiring sets the owner.
    Mutex,
    /// Semaphore object with an initial and maximum count.
    Semaphore {
        /// Initial count (available resources).
        initial: u32,
        /// Maximum count.
        max: u32,
    },
    /// Waitable timer: signalled once its due time elapses.
    Timer,
}

impl ObjectKind {
    /// Convenience constructor for the auto-reset, initially unsignalled
    /// event used by the paper's Event channel.
    pub fn event_auto_reset() -> Self {
        ObjectKind::Event {
            manual_reset: false,
            initially_signaled: false,
        }
    }

    /// Convenience constructor for a semaphore.
    pub fn semaphore(initial: u32, max: u32) -> Self {
        ObjectKind::Semaphore { initial, max }
    }
}

/// Dynamic state of a kernel object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum ObjectState {
    Event {
        manual_reset: bool,
        signaled: bool,
    },
    Mutex {
        owner: Option<ProcessId>,
        recursion: u32,
    },
    Semaphore {
        count: u32,
        max: u32,
    },
    Timer {
        signaled: bool,
        due: Option<Nanos>,
    },
}

/// A system-level kernel object plus its FIFO wait queue.
///
/// # Examples
///
/// ```
/// use mes_sim::{KernelObject, ObjectKind};
/// use mes_types::ProcessId;
///
/// let mut event = KernelObject::new("evt", ObjectKind::event_auto_reset());
/// assert!(!event.is_signaled_for(ProcessId::new(1)));
/// event.set_event()?;
/// assert!(event.is_signaled_for(ProcessId::new(1)));
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelObject {
    name: String,
    state: ObjectState,
    waiters: VecDeque<ProcessId>,
    usage_count: u32,
}

impl KernelObject {
    fn initial_state(kind: ObjectKind) -> ObjectState {
        match kind {
            ObjectKind::Event {
                manual_reset,
                initially_signaled,
            } => ObjectState::Event {
                manual_reset,
                signaled: initially_signaled,
            },
            ObjectKind::Mutex => ObjectState::Mutex {
                owner: None,
                recursion: 0,
            },
            ObjectKind::Semaphore { initial, max } => ObjectState::Semaphore {
                count: initial.min(max),
                max,
            },
            ObjectKind::Timer => ObjectState::Timer {
                signaled: false,
                due: None,
            },
        }
    }

    /// Creates an object of the given kind.
    pub fn new(name: impl Into<String>, kind: ObjectKind) -> Self {
        KernelObject {
            name: name.into(),
            state: KernelObject::initial_state(kind),
            waiters: VecDeque::new(),
            usage_count: 1,
        }
    }

    /// Reinitialises a recycled object slot in place: the name buffer and
    /// wait queue keep their allocations (engine arena reuse between rounds).
    pub fn reinit(&mut self, name: &str, kind: ObjectKind) {
        self.name.clear();
        self.name.push_str(name);
        self.state = KernelObject::initial_state(kind);
        self.waiters.clear();
        self.usage_count = 1;
    }

    /// Puts a dequeued process back at the *head* of the wait queue — used
    /// when a popped waiter turns out not to be satisfiable (semaphore
    /// exhausted mid-handoff) and FIFO order must be preserved.
    pub fn requeue_waiter_front(&mut self, process: ProcessId) {
        self.waiters.push_front(process);
    }

    /// The object's system-wide name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of handles referring to this object.
    pub fn usage_count(&self) -> u32 {
        self.usage_count
    }

    /// Registers one more handle (an `Open*` call).
    pub fn add_reference(&mut self) {
        self.usage_count += 1;
    }

    /// Whether a wait by `process` would be satisfied right now.
    pub fn is_signaled_for(&self, process: ProcessId) -> bool {
        match &self.state {
            ObjectState::Event { signaled, .. } => *signaled,
            ObjectState::Mutex { owner, .. } => owner.is_none() || *owner == Some(process),
            ObjectState::Semaphore { count, .. } => *count > 0,
            ObjectState::Timer { signaled, .. } => *signaled,
        }
    }

    /// Consumes the signalled state on a successful wait by `process`
    /// (auto-reset events unsignal, mutexes record their owner, semaphores
    /// decrement).
    pub fn acquire(&mut self, process: ProcessId) {
        match &mut self.state {
            ObjectState::Event {
                manual_reset,
                signaled,
            } => {
                if !*manual_reset {
                    *signaled = false;
                }
            }
            ObjectState::Mutex { owner, recursion } => {
                if *owner == Some(process) {
                    *recursion += 1;
                } else {
                    *owner = Some(process);
                    *recursion = 1;
                }
            }
            ObjectState::Semaphore { count, .. } => {
                *count = count.saturating_sub(1);
            }
            // Synchronization (auto-reset) timer semantics: a successful wait
            // consumes the signal until the timer is re-armed.
            ObjectState::Timer { signaled, .. } => {
                *signaled = false;
            }
        }
    }

    /// `SetEvent`: moves an event to the signalled state.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] if the object is not an event.
    pub fn set_event(&mut self) -> Result<()> {
        match &mut self.state {
            ObjectState::Event { signaled, .. } => {
                *signaled = true;
                Ok(())
            }
            _ => Err(MesError::Simulation {
                reason: format!("SetEvent on non-event object {}", self.name),
            }),
        }
    }

    /// `ResetEvent`: moves an event to the non-signalled state.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] if the object is not an event.
    pub fn reset_event(&mut self) -> Result<()> {
        match &mut self.state {
            ObjectState::Event { signaled, .. } => {
                *signaled = false;
                Ok(())
            }
            _ => Err(MesError::Simulation {
                reason: format!("ResetEvent on non-event object {}", self.name),
            }),
        }
    }

    /// `ReleaseMutex`: releases ownership (or decrements recursion).
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] if the object is not a mutex or the
    /// caller does not own it.
    pub fn release_mutex(&mut self, process: ProcessId) -> Result<()> {
        match &mut self.state {
            ObjectState::Mutex { owner, recursion } => {
                if *owner != Some(process) {
                    return Err(MesError::Simulation {
                        reason: format!(
                            "process {process} released mutex {} it does not own",
                            self.name
                        ),
                    });
                }
                *recursion -= 1;
                if *recursion == 0 {
                    *owner = None;
                }
                Ok(())
            }
            _ => Err(MesError::Simulation {
                reason: format!("ReleaseMutex on non-mutex object {}", self.name),
            }),
        }
    }

    /// `ReleaseSemaphore`: adds `count` units, saturating at the maximum.
    ///
    /// Returns the number of units actually added.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] if the object is not a semaphore.
    pub fn release_semaphore(&mut self, count: u32) -> Result<u32> {
        match &mut self.state {
            ObjectState::Semaphore {
                count: current,
                max,
            } => {
                let room = *max - *current;
                let added = count.min(room);
                *current += added;
                Ok(added)
            }
            _ => Err(MesError::Simulation {
                reason: format!("ReleaseSemaphore on non-semaphore object {}", self.name),
            }),
        }
    }

    /// Current semaphore count, if the object is a semaphore.
    pub fn semaphore_count(&self) -> Option<u32> {
        match &self.state {
            ObjectState::Semaphore { count, .. } => Some(*count),
            _ => None,
        }
    }

    /// Arms a waitable timer to fire at absolute virtual time `due_at`.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] if the object is not a timer.
    pub fn arm_timer(&mut self, due_at: Nanos) -> Result<()> {
        match &mut self.state {
            ObjectState::Timer { signaled, due } => {
                *signaled = false;
                *due = Some(due_at);
                Ok(())
            }
            _ => Err(MesError::Simulation {
                reason: format!("SetWaitableTimer on non-timer object {}", self.name),
            }),
        }
    }

    /// Marks an armed timer whose due time has arrived as signalled.
    /// Returns `true` if the timer just fired.
    pub fn fire_timer_if_due(&mut self, now: Nanos) -> bool {
        match &mut self.state {
            ObjectState::Timer { signaled, due } => {
                if let Some(due_at) = *due {
                    if now >= due_at && !*signaled {
                        *signaled = true;
                        *due = None;
                        return true;
                    }
                }
                false
            }
            _ => false,
        }
    }

    /// The pending due time of an armed timer.
    pub fn timer_due(&self) -> Option<Nanos> {
        match &self.state {
            ObjectState::Timer { due, .. } => *due,
            _ => None,
        }
    }

    /// Parks a process on the object's FIFO wait queue.
    pub fn enqueue_waiter(&mut self, process: ProcessId) {
        self.waiters.push_back(process);
    }

    /// Pops the process at the head of the wait queue.
    pub fn dequeue_waiter(&mut self) -> Option<ProcessId> {
        self.waiters.pop_front()
    }

    /// Number of parked waiters.
    pub fn waiter_count(&self) -> usize {
        self.waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P1: ProcessId = ProcessId::new(1);
    const P2: ProcessId = ProcessId::new(2);

    #[test]
    fn auto_reset_event_unsignals_on_acquire() {
        let mut event = KernelObject::new("e", ObjectKind::event_auto_reset());
        assert!(!event.is_signaled_for(P1));
        event.set_event().unwrap();
        assert!(event.is_signaled_for(P1));
        event.acquire(P1);
        assert!(!event.is_signaled_for(P1));
    }

    #[test]
    fn manual_reset_event_stays_signalled() {
        let mut event = KernelObject::new(
            "e",
            ObjectKind::Event {
                manual_reset: true,
                initially_signaled: false,
            },
        );
        event.set_event().unwrap();
        event.acquire(P1);
        assert!(event.is_signaled_for(P2));
        event.reset_event().unwrap();
        assert!(!event.is_signaled_for(P2));
    }

    #[test]
    fn mutex_tracks_owner_and_recursion() {
        let mut mutex = KernelObject::new("m", ObjectKind::Mutex);
        assert!(mutex.is_signaled_for(P1));
        mutex.acquire(P1);
        assert!(!mutex.is_signaled_for(P2));
        assert!(mutex.is_signaled_for(P1), "owner can recursively acquire");
        mutex.acquire(P1);
        mutex.release_mutex(P1).unwrap();
        assert!(!mutex.is_signaled_for(P2), "still held once");
        mutex.release_mutex(P1).unwrap();
        assert!(mutex.is_signaled_for(P2));
    }

    #[test]
    fn mutex_release_by_non_owner_fails() {
        let mut mutex = KernelObject::new("m", ObjectKind::Mutex);
        mutex.acquire(P1);
        assert!(mutex.release_mutex(P2).is_err());
    }

    #[test]
    fn semaphore_count_saturates_at_max() {
        let mut sem = KernelObject::new("s", ObjectKind::semaphore(2, 3));
        assert_eq!(sem.semaphore_count(), Some(2));
        sem.acquire(P1);
        assert_eq!(sem.semaphore_count(), Some(1));
        assert_eq!(sem.release_semaphore(5).unwrap(), 2);
        assert_eq!(sem.semaphore_count(), Some(3));
        assert!(sem.is_signaled_for(P1));
    }

    #[test]
    fn semaphore_zero_blocks_waiters() {
        let mut sem = KernelObject::new("s", ObjectKind::semaphore(0, 4));
        assert!(!sem.is_signaled_for(P1));
        sem.release_semaphore(1).unwrap();
        assert!(sem.is_signaled_for(P1));
    }

    #[test]
    fn timer_fires_only_after_due() {
        let mut timer = KernelObject::new("t", ObjectKind::Timer);
        timer.arm_timer(Nanos::new(1_000)).unwrap();
        assert!(!timer.fire_timer_if_due(Nanos::new(500)));
        assert!(!timer.is_signaled_for(P1));
        assert!(timer.fire_timer_if_due(Nanos::new(1_000)));
        assert!(timer.is_signaled_for(P1));
        assert!(!timer.fire_timer_if_due(Nanos::new(2_000)), "fires once");
    }

    #[test]
    fn wrong_kind_operations_error() {
        let mut mutex = KernelObject::new("m", ObjectKind::Mutex);
        assert!(mutex.set_event().is_err());
        assert!(mutex.reset_event().is_err());
        assert!(mutex.release_semaphore(1).is_err());
        assert!(mutex.arm_timer(Nanos::ZERO).is_err());
        let mut event = KernelObject::new("e", ObjectKind::event_auto_reset());
        assert!(event.release_mutex(P1).is_err());
        assert_eq!(event.semaphore_count(), None);
        assert_eq!(event.timer_due(), None);
    }

    #[test]
    fn wait_queue_is_fifo() {
        let mut event = KernelObject::new("e", ObjectKind::event_auto_reset());
        event.enqueue_waiter(P1);
        event.enqueue_waiter(P2);
        assert_eq!(event.waiter_count(), 2);
        assert_eq!(event.dequeue_waiter(), Some(P1));
        assert_eq!(event.dequeue_waiter(), Some(P2));
        assert_eq!(event.dequeue_waiter(), None);
    }

    #[test]
    fn reinit_recycles_the_slot_in_place() {
        let mut object = KernelObject::new("first-name", ObjectKind::Mutex);
        object.acquire(P1);
        object.enqueue_waiter(P2);
        object.add_reference();

        object.reinit("evt", ObjectKind::event_auto_reset());
        assert_eq!(object.name(), "evt");
        assert_eq!(object.usage_count(), 1);
        assert_eq!(object.waiter_count(), 0);
        assert!(!object.is_signaled_for(P1));
        object.set_event().unwrap();
        assert!(object.is_signaled_for(P1));
    }

    #[test]
    fn requeue_front_preserves_fifo_order() {
        let mut event = KernelObject::new("e", ObjectKind::event_auto_reset());
        event.enqueue_waiter(P1);
        event.enqueue_waiter(P2);
        let head = event.dequeue_waiter().unwrap();
        event.requeue_waiter_front(head);
        assert_eq!(event.dequeue_waiter(), Some(P1));
        assert_eq!(event.dequeue_waiter(), Some(P2));
    }

    #[test]
    fn usage_count_tracks_references() {
        let mut event = KernelObject::new("e", ObjectKind::event_auto_reset());
        assert_eq!(event.usage_count(), 1);
        event.add_reference();
        assert_eq!(event.usage_count(), 2);
        assert_eq!(event.name(), "e");
    }
}
