//! Per-process handle tables (the `_HANDLE_TABLE` of Fig. 4).
//!
//! Handles with the same numeric value in two different processes generally
//! point at *different* kernel objects, and the same object is reached
//! through *different* handle values — the table below is what provides that
//! indirection in the simulator.

use mes_types::{HandleId, MesError, ObjectId, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A process's handle table: local [`HandleId`] → system [`ObjectId`].
///
/// # Examples
///
/// ```
/// use mes_sim::kernel::handles::HandleTable;
/// use mes_types::{HandleId, ObjectId};
///
/// let mut table = HandleTable::new();
/// table.bind(HandleId::new(4), ObjectId::new(17))?;
/// assert_eq!(table.resolve(HandleId::new(4))?, ObjectId::new(17));
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandleTable {
    entries: HashMap<HandleId, ObjectId>,
}

impl HandleTable {
    /// Creates an empty handle table.
    pub fn new() -> Self {
        HandleTable::default()
    }

    /// Binds a local handle to a system object.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] if the handle value is already bound;
    /// programs must pick distinct local handles.
    pub fn bind(&mut self, handle: HandleId, object: ObjectId) -> Result<()> {
        if self.entries.contains_key(&handle) {
            return Err(MesError::Simulation {
                reason: format!("handle {handle} is already bound"),
            });
        }
        self.entries.insert(handle, object);
        Ok(())
    }

    /// Resolves a local handle to the system object it points at.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] for an unbound handle — the simulated
    /// equivalent of passing a garbage `HANDLE` to the kernel.
    pub fn resolve(&self, handle: HandleId) -> Result<ObjectId> {
        self.entries
            .get(&handle)
            .copied()
            .ok_or_else(|| MesError::Simulation {
                reason: format!("handle {handle} is not bound in this process"),
            })
    }

    /// Removes a binding (`CloseHandle`), returning the object it pointed at.
    pub fn unbind(&mut self, handle: HandleId) -> Option<ObjectId> {
        self.entries.remove(&handle)
    }

    /// Removes every binding, retaining the table's allocation (process-slot
    /// recycling between rounds).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of live handles.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_resolve() {
        let mut table = HandleTable::new();
        assert!(table.is_empty());
        table.bind(HandleId::new(8), ObjectId::new(2)).unwrap();
        assert_eq!(table.resolve(HandleId::new(8)).unwrap(), ObjectId::new(2));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn double_bind_is_rejected() {
        let mut table = HandleTable::new();
        table.bind(HandleId::new(8), ObjectId::new(2)).unwrap();
        assert!(table.bind(HandleId::new(8), ObjectId::new(3)).is_err());
    }

    #[test]
    fn resolving_unknown_handle_fails() {
        let table = HandleTable::new();
        assert!(table.resolve(HandleId::new(1)).is_err());
    }

    #[test]
    fn unbind_removes_entry() {
        let mut table = HandleTable::new();
        table.bind(HandleId::new(4), ObjectId::new(9)).unwrap();
        assert_eq!(table.unbind(HandleId::new(4)), Some(ObjectId::new(9)));
        assert_eq!(table.unbind(HandleId::new(4)), None);
        assert!(table.resolve(HandleId::new(4)).is_err());
    }

    #[test]
    fn same_handle_value_in_two_tables_points_at_different_objects() {
        // The property Fig. 4 of the paper illustrates.
        let mut a = HandleTable::new();
        let mut b = HandleTable::new();
        a.bind(HandleId::new(4), ObjectId::new(1)).unwrap();
        b.bind(HandleId::new(4), ObjectId::new(2)).unwrap();
        assert_ne!(
            a.resolve(HandleId::new(4)).unwrap(),
            b.resolve(HandleId::new(4)).unwrap()
        );
    }
}
