//! The simulated kernel: system-level objects, per-process handle tables and
//! the named-object namespace.
//!
//! This module mirrors Fig. 4 of the paper: processes never touch kernel
//! objects directly; they hold handles in a per-process handle table that
//! point at system-level object structures, and two processes communicate by
//! opening the *same* named object.

pub mod handles;
pub mod namespace;
pub mod object;
