//! The named-object namespace and its session-level visibility rules.
//!
//! Locally and across a sandbox the Trojan and Spy can open the same named
//! kernel object. Across virtual machines the paper finds that only
//! *file-backed* objects are shared — ordinary named objects exist per
//! session and never refer to a common resource (Section V.C.3). The
//! [`Namespace`] models that: every object is created in a session, and
//! lookups from another session only succeed for objects registered as
//! globally visible.

use crate::arena::Slab;
use mes_types::{MesError, ObjectId, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies an isolation domain (a VM or the host). Processes in different
/// sessions can only share globally visible (file-backed) objects.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SessionId(u32);

impl SessionId {
    /// The host/default session.
    pub const HOST: SessionId = SessionId(0);

    /// Creates a session identifier.
    pub const fn new(id: u32) -> Self {
        SessionId(id)
    }

    /// Raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session{}", self.0)
    }
}

/// Visibility of a named object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Visibility {
    /// Visible only to processes in the creating session (ordinary kernel
    /// objects: Event, Mutex, Semaphore, Timer).
    Session,
    /// Visible from every session (objects that correspond to a real shared
    /// resource, i.e. files on a host-shared filesystem).
    Global,
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    object: ObjectId,
    session: SessionId,
    visibility: Visibility,
}

/// The kernel's name → object directory with session-aware lookup.
///
/// A round registers a handful of names at most, so entries live in a slot
/// arena scanned linearly: [`Namespace::clear`] is a cursor rewind, and
/// re-registering after a rewind rewrites the retired entries' name buffers
/// in place — no per-round allocation once the arena is warm.
///
/// # Examples
///
/// ```
/// use mes_sim::kernel::namespace::{Namespace, SessionId, Visibility};
/// use mes_types::ObjectId;
///
/// let mut ns = Namespace::new();
/// ns.register("evt", ObjectId::new(1), SessionId::new(1), Visibility::Session)?;
///
/// // Same session: visible.
/// assert!(ns.lookup("evt", SessionId::new(1)).is_ok());
/// // Another VM: invisible — the paper's cross-VM finding.
/// assert!(ns.lookup("evt", SessionId::new(2)).is_err());
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct Namespace {
    entries: Slab<Entry>,
}

impl Namespace {
    /// Creates an empty namespace.
    pub fn new() -> Self {
        Namespace::default()
    }

    /// Retires every entry, retaining the entries' allocations for the next
    /// round (engine arena reuse).
    pub fn clear(&mut self) {
        self.entries.rewind();
    }

    fn find(&self, name: &str) -> Option<&Entry> {
        self.entries.iter().find(|entry| entry.name == name)
    }

    /// Registers a named object created by a process in `session`.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] if the name is already taken.
    pub fn register(
        &mut self,
        name: &str,
        object: ObjectId,
        session: SessionId,
        visibility: Visibility,
    ) -> Result<()> {
        if self.find(name).is_some() {
            return Err(MesError::Simulation {
                reason: format!("object name {name:?} already exists"),
            });
        }
        self.entries.alloc(
            || Entry {
                name: name.to_string(),
                object,
                session,
                visibility,
            },
            |entry| {
                entry.name.clear();
                entry.name.push_str(name);
                entry.object = object;
                entry.session = session;
                entry.visibility = visibility;
            },
        );
        Ok(())
    }

    /// Looks a name up from the point of view of a process in `session`.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] if the name does not exist or is not
    /// visible from `session`.
    pub fn lookup(&self, name: &str, session: SessionId) -> Result<ObjectId> {
        match self.find(name) {
            None => Err(MesError::Simulation {
                reason: format!("object name {name:?} does not exist"),
            }),
            Some(entry) => match entry.visibility {
                Visibility::Global => Ok(entry.object),
                Visibility::Session if entry.session == session => Ok(entry.object),
                Visibility::Session => Err(MesError::Simulation {
                    reason: format!(
                        "object {name:?} exists in {} but is not visible from {session}",
                        entry.session
                    ),
                }),
            },
        }
    }

    /// Whether a name is registered at all (regardless of visibility).
    pub fn contains(&self, name: &str) -> bool {
        self.find(name).is_some()
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the namespace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_objects_are_invisible_across_sessions() {
        let mut ns = Namespace::new();
        ns.register(
            "evt",
            ObjectId::new(1),
            SessionId::new(1),
            Visibility::Session,
        )
        .unwrap();
        assert!(ns.lookup("evt", SessionId::new(1)).is_ok());
        assert!(ns.lookup("evt", SessionId::new(2)).is_err());
        assert!(ns.lookup("evt", SessionId::HOST).is_err());
    }

    #[test]
    fn global_objects_are_visible_everywhere() {
        let mut ns = Namespace::new();
        ns.register(
            "shared-file",
            ObjectId::new(2),
            SessionId::new(1),
            Visibility::Global,
        )
        .unwrap();
        assert_eq!(
            ns.lookup("shared-file", SessionId::new(7)).unwrap(),
            ObjectId::new(2)
        );
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut ns = Namespace::new();
        ns.register("x", ObjectId::new(1), SessionId::HOST, Visibility::Session)
            .unwrap();
        assert!(ns
            .register("x", ObjectId::new(2), SessionId::HOST, Visibility::Session)
            .is_err());
        assert!(ns.contains("x"));
        assert_eq!(ns.len(), 1);
        assert!(!ns.is_empty());
    }

    #[test]
    fn missing_names_error() {
        let ns = Namespace::new();
        assert!(ns.lookup("nope", SessionId::HOST).is_err());
        assert!(!ns.contains("nope"));
    }

    #[test]
    fn clear_rewinds_and_recycles_entries() {
        let mut ns = Namespace::new();
        ns.register(
            "a-long-object-name",
            ObjectId::new(1),
            SessionId::HOST,
            Visibility::Session,
        )
        .unwrap();
        ns.clear();
        assert!(ns.is_empty());
        assert!(!ns.contains("a-long-object-name"));
        // Re-registering after a rewind recycles the retired entry slot.
        ns.register(
            "evt",
            ObjectId::new(2),
            SessionId::new(1),
            Visibility::Global,
        )
        .unwrap();
        assert_eq!(ns.len(), 1);
        assert_eq!(
            ns.lookup("evt", SessionId::new(9)).unwrap(),
            ObjectId::new(2)
        );
        assert!(ns.lookup("a-long-object-name", SessionId::HOST).is_err());
    }

    #[test]
    fn session_display() {
        assert_eq!(SessionId::new(3).to_string(), "session3");
        assert_eq!(SessionId::HOST.as_u32(), 0);
    }
}
