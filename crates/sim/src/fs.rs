//! The simulated filesystem layer behind the `flock` / `LockFileEx` channels.
//!
//! Fig. 5 of the paper explains why `flock` crosses process boundaries: each
//! process has its own file-descriptor table, every `open` creates an
//! independent file-table entry, but all of them point at the *same* i-node,
//! and the lock list lives on the i-node. This module models exactly those
//! three tables plus a FIFO (fair) wait queue per i-node, with an optional
//! "unfair" mode reproducing the failure the paper describes when the
//! current holder can immediately re-acquire the lock.

use crate::arena::Slab;
use mes_types::{FileId, InodeId, MesError, ProcessId, Result};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Outcome of an exclusive-lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockRequestOutcome {
    /// The lock was granted immediately.
    Granted,
    /// Another process holds the lock; the caller was parked on the i-node's
    /// wait queue.
    Blocked,
    /// The caller already holds the lock (re-entrant `flock` is a no-op).
    AlreadyHeld,
}

/// Lock hand-off discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fairness {
    /// FIFO hand-off: the longest-waiting process gets the lock next. The
    /// paper notes MES-Attacks only work in this regime.
    Fair,
    /// Free-for-all: on unlock the resource is simply marked free and every
    /// waiter races for it; the releasing process may immediately re-acquire.
    Unfair,
}

#[derive(Debug, Clone)]
struct Inode {
    path: String,
    /// Exclusive-lock holder, if any.
    holder: Option<ProcessId>,
    /// Processes blocked waiting for the lock, in arrival order.
    waiters: VecDeque<ProcessId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpenFile {
    inode: InodeId,
    opened_by: ProcessId,
}

/// The system-level file table and i-node table (Fig. 5 of the paper).
///
/// A round opens one or two paths, so i-nodes live in a slot arena scanned
/// linearly by path: [`FileSystem::reset`] is a cursor rewind, and the next
/// round's `open` calls rewrite the retired i-nodes' path buffers in place —
/// no per-round allocation once the arena is warm.
///
/// # Examples
///
/// ```
/// use mes_sim::{FileSystem, LockRequestOutcome};
/// use mes_types::ProcessId;
///
/// let mut fs = FileSystem::new();
/// let trojan_file = fs.open("/tmp/file.txt", ProcessId::new(1));
/// let spy_file = fs.open("/tmp/file.txt", ProcessId::new(2));
///
/// // Two independent file-table entries…
/// assert_ne!(trojan_file, spy_file);
/// // …pointing at the same i-node, which is what makes flock a channel.
/// assert_eq!(fs.inode_of(trojan_file)?, fs.inode_of(spy_file)?);
///
/// assert_eq!(fs.lock_exclusive(trojan_file, ProcessId::new(1))?, LockRequestOutcome::Granted);
/// assert_eq!(fs.lock_exclusive(spy_file, ProcessId::new(2))?, LockRequestOutcome::Blocked);
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FileSystem {
    inodes: Slab<Inode>,
    files: Vec<OpenFile>,
    fairness: Fairness,
}

impl Default for FileSystem {
    fn default() -> Self {
        FileSystem::new()
    }
}

impl FileSystem {
    /// Creates an empty filesystem with fair lock hand-off.
    pub fn new() -> Self {
        FileSystem {
            inodes: Slab::new(),
            files: Vec::new(),
            fairness: Fairness::Fair,
        }
    }

    /// Creates a filesystem with the given hand-off discipline.
    pub fn with_fairness(fairness: Fairness) -> Self {
        FileSystem {
            fairness,
            ..FileSystem::new()
        }
    }

    /// The configured hand-off discipline.
    pub fn fairness(&self) -> Fairness {
        self.fairness
    }

    /// Empties every table (i-nodes, open files) while keeping the
    /// allocations and the hand-off discipline — id numbering restarts from
    /// zero, exactly as in a freshly constructed filesystem (engine reuse).
    pub fn reset(&mut self) {
        self.inodes.rewind();
        self.files.clear();
    }

    /// Opens `path` for `process`, creating the i-node on first open, and
    /// returns a fresh file-table entry.
    pub fn open(&mut self, path: &str, process: ProcessId) -> FileId {
        let inode = match self.inodes.iter().position(|inode| inode.path == path) {
            Some(index) => InodeId::new(index as u64),
            None => {
                let (index, _) = self.inodes.alloc(
                    || Inode {
                        path: path.to_string(),
                        holder: None,
                        waiters: VecDeque::new(),
                    },
                    |inode| {
                        inode.path.clear();
                        inode.path.push_str(path);
                        inode.holder = None;
                        inode.waiters.clear();
                    },
                );
                InodeId::new(index as u64)
            }
        };
        let file = FileId::new(self.files.len() as u64);
        self.files.push(OpenFile {
            inode,
            opened_by: process,
        });
        file
    }

    /// The i-node a file-table entry points at.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] for an unknown file id.
    pub fn inode_of(&self, file: FileId) -> Result<InodeId> {
        self.files
            .get(file.as_usize())
            .map(|f| f.inode)
            .ok_or_else(|| MesError::Simulation {
                reason: format!("unknown file table entry {file}"),
            })
    }

    /// Requests the exclusive lock on the i-node behind `file` for `process`.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] for an unknown file id.
    pub fn lock_exclusive(
        &mut self,
        file: FileId,
        process: ProcessId,
    ) -> Result<LockRequestOutcome> {
        let inode_id = self.inode_of(file)?;
        let inode = &mut self.inodes[inode_id.as_usize()];
        match inode.holder {
            None => {
                inode.holder = Some(process);
                Ok(LockRequestOutcome::Granted)
            }
            Some(holder) if holder == process => Ok(LockRequestOutcome::AlreadyHeld),
            Some(_) => {
                inode.waiters.push_back(process);
                Ok(LockRequestOutcome::Blocked)
            }
        }
    }

    /// Releases the lock held by `process` on the i-node behind `file`.
    ///
    /// Under [`Fairness::Fair`] the head waiter (if any) becomes the new
    /// holder and is returned so the engine can wake it. Under
    /// [`Fairness::Unfair`] the lock is simply freed and *all* waiters are
    /// returned; they will race when rescheduled.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] if `process` does not hold the lock.
    pub fn unlock(&mut self, file: FileId, process: ProcessId) -> Result<Vec<ProcessId>> {
        let mut woken = Vec::new();
        self.unlock_into(file, process, &mut woken)?;
        Ok(woken)
    }

    /// [`FileSystem::unlock`] writing the woken processes into a
    /// caller-provided buffer (cleared first) instead of allocating a fresh
    /// vector — the engine's hot unlock path reuses one scratch buffer across
    /// every slot of every round.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] if `process` does not hold the lock.
    pub fn unlock_into(
        &mut self,
        file: FileId,
        process: ProcessId,
        woken: &mut Vec<ProcessId>,
    ) -> Result<()> {
        woken.clear();
        let inode_id = self.inode_of(file)?;
        let inode = &mut self.inodes[inode_id.as_usize()];
        if inode.holder != Some(process) {
            return Err(MesError::Simulation {
                reason: format!("process {process} unlocked {inode_id} it does not hold"),
            });
        }
        match self.fairness {
            Fairness::Fair => {
                let next = inode.waiters.pop_front();
                inode.holder = next;
                woken.extend(next);
            }
            Fairness::Unfair => {
                inode.holder = None;
                woken.extend(inode.waiters.drain(..));
            }
        }
        Ok(())
    }

    /// Retries a lock acquisition for a process that was woken in unfair
    /// mode. Returns `true` if the lock was obtained.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] for an unknown file id.
    pub fn try_reacquire(&mut self, file: FileId, process: ProcessId) -> Result<bool> {
        let inode_id = self.inode_of(file)?;
        let inode = &mut self.inodes[inode_id.as_usize()];
        if inode.holder.is_none() {
            inode.holder = Some(process);
            Ok(true)
        } else if inode.holder == Some(process) {
            Ok(true)
        } else {
            inode.waiters.push_back(process);
            Ok(false)
        }
    }

    fn inode_by_path(&self, path: &str) -> Option<&Inode> {
        self.inodes.iter().find(|inode| inode.path == path)
    }

    /// The current holder of the lock on `path`, if the path exists and is
    /// locked.
    pub fn holder_of(&self, path: &str) -> Option<ProcessId> {
        self.inode_by_path(path).and_then(|inode| inode.holder)
    }

    /// Number of processes waiting on the lock of `path`.
    pub fn waiter_count(&self, path: &str) -> usize {
        self.inode_by_path(path)
            .map(|inode| inode.waiters.len())
            .unwrap_or(0)
    }

    /// The path behind an i-node (mainly for traces and error messages).
    pub fn path_of(&self, inode: InodeId) -> Option<&str> {
        self.inodes.get(inode.as_usize()).map(|i| i.path.as_str())
    }

    /// Number of i-nodes in the filesystem.
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }

    /// Number of open file-table entries.
    pub fn open_file_count(&self) -> usize {
        self.files.len()
    }

    /// The process that opened a file-table entry.
    pub fn opener_of(&self, file: FileId) -> Option<ProcessId> {
        self.files.get(file.as_usize()).map(|f| f.opened_by)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TROJAN: ProcessId = ProcessId::new(1);
    const SPY: ProcessId = ProcessId::new(2);
    const OTHER: ProcessId = ProcessId::new(3);

    #[test]
    fn same_path_shares_an_inode_but_not_a_file_entry() {
        let mut fs = FileSystem::new();
        let a = fs.open("/shared", TROJAN);
        let b = fs.open("/shared", SPY);
        let c = fs.open("/other", SPY);
        assert_ne!(a, b);
        assert_eq!(fs.inode_of(a).unwrap(), fs.inode_of(b).unwrap());
        assert_ne!(fs.inode_of(a).unwrap(), fs.inode_of(c).unwrap());
        assert_eq!(fs.inode_count(), 2);
        assert_eq!(fs.open_file_count(), 3);
        assert_eq!(fs.opener_of(a), Some(TROJAN));
        assert_eq!(fs.path_of(fs.inode_of(c).unwrap()), Some("/other"));
    }

    #[test]
    fn exclusive_lock_blocks_second_process() {
        let mut fs = FileSystem::new();
        let a = fs.open("/f", TROJAN);
        let b = fs.open("/f", SPY);
        assert_eq!(
            fs.lock_exclusive(a, TROJAN).unwrap(),
            LockRequestOutcome::Granted
        );
        assert_eq!(
            fs.lock_exclusive(b, SPY).unwrap(),
            LockRequestOutcome::Blocked
        );
        assert_eq!(fs.holder_of("/f"), Some(TROJAN));
        assert_eq!(fs.waiter_count("/f"), 1);
    }

    #[test]
    fn fair_unlock_hands_off_to_head_waiter() {
        let mut fs = FileSystem::new();
        let a = fs.open("/f", TROJAN);
        let b = fs.open("/f", SPY);
        let c = fs.open("/f", OTHER);
        fs.lock_exclusive(a, TROJAN).unwrap();
        fs.lock_exclusive(b, SPY).unwrap();
        fs.lock_exclusive(c, OTHER).unwrap();
        let woken = fs.unlock(a, TROJAN).unwrap();
        assert_eq!(woken, vec![SPY]);
        assert_eq!(fs.holder_of("/f"), Some(SPY));
        let woken = fs.unlock(b, SPY).unwrap();
        assert_eq!(woken, vec![OTHER]);
        assert_eq!(fs.holder_of("/f"), Some(OTHER));
        assert_eq!(fs.unlock(c, OTHER).unwrap(), vec![]);
        assert_eq!(fs.holder_of("/f"), None);
    }

    #[test]
    fn unfair_unlock_frees_the_lock_and_wakes_everyone() {
        let mut fs = FileSystem::with_fairness(Fairness::Unfair);
        assert_eq!(fs.fairness(), Fairness::Unfair);
        let a = fs.open("/f", TROJAN);
        let b = fs.open("/f", SPY);
        fs.lock_exclusive(a, TROJAN).unwrap();
        fs.lock_exclusive(b, SPY).unwrap();
        let woken = fs.unlock(a, TROJAN).unwrap();
        assert_eq!(woken, vec![SPY]);
        assert_eq!(fs.holder_of("/f"), None);
        // The trojan can immediately steal the lock back before the spy runs,
        // which is the unfair failure mode the paper warns about.
        assert!(fs.try_reacquire(a, TROJAN).unwrap());
        assert!(!fs.try_reacquire(b, SPY).unwrap());
        assert_eq!(fs.holder_of("/f"), Some(TROJAN));
    }

    #[test]
    fn reentrant_lock_is_already_held() {
        let mut fs = FileSystem::new();
        let a = fs.open("/f", TROJAN);
        fs.lock_exclusive(a, TROJAN).unwrap();
        assert_eq!(
            fs.lock_exclusive(a, TROJAN).unwrap(),
            LockRequestOutcome::AlreadyHeld
        );
    }

    #[test]
    fn unlock_without_holding_errors() {
        let mut fs = FileSystem::new();
        let a = fs.open("/f", TROJAN);
        assert!(fs.unlock(a, TROJAN).is_err());
        fs.lock_exclusive(a, TROJAN).unwrap();
        let b = fs.open("/f", SPY);
        assert!(fs.unlock(b, SPY).is_err());
    }

    #[test]
    fn reset_rewinds_ids_and_recycles_inodes() {
        let mut fs = FileSystem::new();
        let a = fs.open("/first-shared-path", TROJAN);
        fs.lock_exclusive(a, TROJAN).unwrap();
        fs.reset();
        assert_eq!(fs.inode_count(), 0);
        assert_eq!(fs.open_file_count(), 0);
        assert_eq!(fs.holder_of("/first-shared-path"), None);
        // Ids restart from zero and the retired i-node slot is recycled.
        let b = fs.open("/other", SPY);
        assert_eq!(b, FileId::new(0));
        assert_eq!(fs.inode_of(b).unwrap(), InodeId::new(0));
        assert_eq!(fs.holder_of("/other"), None);
        assert_eq!(
            fs.lock_exclusive(b, SPY).unwrap(),
            LockRequestOutcome::Granted
        );
    }

    #[test]
    fn unlock_into_reuses_the_caller_buffer() {
        let mut fs = FileSystem::new();
        let a = fs.open("/f", TROJAN);
        let b = fs.open("/f", SPY);
        fs.lock_exclusive(a, TROJAN).unwrap();
        fs.lock_exclusive(b, SPY).unwrap();
        let mut woken = vec![OTHER]; // stale content must be cleared
        fs.unlock_into(a, TROJAN, &mut woken).unwrap();
        assert_eq!(woken, vec![SPY]);
        fs.unlock_into(b, SPY, &mut woken).unwrap();
        assert!(woken.is_empty());
    }

    #[test]
    fn unknown_file_ids_error() {
        let mut fs = FileSystem::new();
        assert!(fs.inode_of(FileId::new(9)).is_err());
        assert!(fs.lock_exclusive(FileId::new(9), TROJAN).is_err());
        assert!(fs.unlock(FileId::new(9), TROJAN).is_err());
        assert!(fs.try_reacquire(FileId::new(9), TROJAN).is_err());
        assert_eq!(fs.holder_of("/missing"), None);
        assert_eq!(fs.waiter_count("/missing"), 0);
    }
}
