//! The noise model: every source of timing variation the paper's channels
//! have to survive.
//!
//! Section V.B and V.C of the paper attribute the channels' bit errors to a
//! handful of OS-level effects: the ~58 µs it takes the Linux scheduler to
//! wake a sleeping process, jitter on every syscall, occasional "system
//! blocks" (preemptions, interrupt handling) whose likelihood grows with how
//! long a process sleeps or holds a resource, and — for *open* shared
//! resources — interference from unrelated processes. [`NoiseModel`] captures
//! each of these as an explicit, documented parameter so experiments can be
//! run noiseless, paper-calibrated or deliberately hostile.

use crate::rng::SimRng;
use mes_types::Nanos;
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// Categories of simulated operations that consume CPU time.
///
/// The scenario profiles assign each class a mean cost and a jitter; the
/// engine samples a cost every time it executes an op of that class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostClass {
    /// Fast kernel-object call: `SetEvent`, `ResetEvent`, `ReleaseMutex`,
    /// `ReleaseSemaphore`, `SetWaitableTimer`, `CreateEvent`, `OpenEvent`.
    KernelObjectCall,
    /// Wait-path entry: `WaitForSingleObject` / semaphore P before blocking.
    WaitCall,
    /// File-lock syscall: `flock` / `LockFileEx` lock and unlock.
    FileLockCall,
    /// Opening a file / creating a descriptor.
    FileOpen,
    /// Reading the clock and storing a timestamp.
    Timestamp,
    /// A loop iteration of "irrelevant instructions" between bits
    /// (Section V.B of the paper).
    LoopIteration,
}

impl CostClass {
    /// All cost classes, useful for exhaustive configuration.
    pub const ALL: [CostClass; 6] = [
        CostClass::KernelObjectCall,
        CostClass::WaitCall,
        CostClass::FileLockCall,
        CostClass::FileOpen,
        CostClass::Timestamp,
        CostClass::LoopIteration,
    ];
}

/// Bit pattern of a float with the two IEEE zeros collapsed into one
/// (`x + 0.0` turns `-0.0` into `+0.0` and leaves every other value
/// untouched), so the structural hashes below stay consistent with the
/// derived `PartialEq`: `-0.0 == 0.0`, so two equal noise models must
/// fingerprint equally — the observation cache keys on that.
fn float_bits(value: f64) -> u64 {
    (value + 0.0).to_bits()
}

/// Mean/σ pair (in nanoseconds) describing the cost of one [`CostClass`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostSpec {
    /// Mean cost in nanoseconds.
    pub mean_ns: f64,
    /// Standard deviation in nanoseconds.
    pub std_dev_ns: f64,
}

impl Hash for CostSpec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        float_bits(self.mean_ns).hash(state);
        float_bits(self.std_dev_ns).hash(state);
    }
}

impl CostSpec {
    /// A fixed, jitter-free cost.
    pub const fn fixed(mean_ns: f64) -> Self {
        CostSpec {
            mean_ns,
            std_dev_ns: 0.0,
        }
    }

    /// A jittery cost.
    pub const fn new(mean_ns: f64, std_dev_ns: f64) -> Self {
        CostSpec {
            mean_ns,
            std_dev_ns,
        }
    }
}

/// Random "system block" model: rare, long scheduling disturbances whose
/// probability grows with the length of the disturbed interval.
///
/// The paper observes exactly this effect: the longer the Trojan sleeps or
/// holds a lock, the more often the system blocks it, which eventually turns
/// into bit errors (Fig. 9(a) for `ti` = 30 µs and Fig. 10 for large `tt1`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Preemption {
    /// Probability per microsecond of interval that a *short* disturbance
    /// (interrupt, timer tick) lands in it.
    pub short_rate_per_us: f64,
    /// Mean duration of a short disturbance in microseconds (exponential).
    pub short_mean_us: f64,
    /// Probability per microsecond of interval that a *long* disturbance
    /// (involuntary preemption, page fault burst) lands in it.
    pub long_rate_per_us: f64,
    /// Minimum duration of a long disturbance in microseconds (uniform).
    pub long_min_us: f64,
    /// Maximum duration of a long disturbance in microseconds (uniform).
    pub long_max_us: f64,
}

impl Hash for Preemption {
    fn hash<H: Hasher>(&self, state: &mut H) {
        float_bits(self.short_rate_per_us).hash(state);
        float_bits(self.short_mean_us).hash(state);
        float_bits(self.long_rate_per_us).hash(state);
        float_bits(self.long_min_us).hash(state);
        float_bits(self.long_max_us).hash(state);
    }
}

impl Preemption {
    /// No disturbances at all.
    pub const fn none() -> Self {
        Preemption {
            short_rate_per_us: 0.0,
            short_mean_us: 0.0,
            long_rate_per_us: 0.0,
            long_min_us: 0.0,
            long_max_us: 0.0,
        }
    }

    /// Samples the extra delay injected into an interval of length
    /// `interval`, in microseconds.
    pub fn sample_extra_us(&self, interval: Nanos, rng: &mut SimRng) -> f64 {
        let us = interval.as_micros_f64();
        let mut extra = 0.0;
        if self.short_rate_per_us > 0.0 && rng.bernoulli((self.short_rate_per_us * us).min(1.0)) {
            extra += rng.exponential(self.short_mean_us);
        }
        if self.long_rate_per_us > 0.0 && rng.bernoulli((self.long_rate_per_us * us).min(1.0)) {
            extra += rng.uniform(self.long_min_us, self.long_max_us);
        }
        extra
    }
}

/// Interference from unrelated processes competing for the same *open*
/// shared resource.
///
/// MES-Attacks deliberately use *closed* resources (objects/files agreed on
/// by the Trojan and Spy alone), which is why their BER stays below 1 %.
/// Enabling this knob reproduces the degradation the paper ascribes to
/// open-resource channels (Section IV.G, advantage ①).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenResourceInterference {
    /// Probability that a given bit period is disturbed by a third process.
    pub contention_probability: f64,
    /// Mean extra occupancy in microseconds when a disturbance happens.
    pub occupancy_mean_us: f64,
}

impl Hash for OpenResourceInterference {
    fn hash<H: Hasher>(&self, state: &mut H) {
        float_bits(self.contention_probability).hash(state);
        float_bits(self.occupancy_mean_us).hash(state);
    }
}

/// All timing-noise parameters of a simulated deployment.
///
/// # Examples
///
/// ```
/// use mes_sim::NoiseModel;
///
/// let quiet = NoiseModel::noiseless();
/// assert_eq!(quiet.sleep_wakeup_latency_ns, 0.0);
///
/// let paper = NoiseModel::calibrated_local();
/// assert!(paper.sleep_wakeup_latency_ns > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Minimum effective sleep duration in nanoseconds: the scheduler cannot
    /// wake a sleeper sooner than this. The paper measures ≈ 58 µs on Linux
    /// (Section V.C.1), which is why the flock channel uses `tt0` = 60 µs;
    /// Windows timers resolve finer, so the Windows profiles use 0.
    pub min_sleep_ns: f64,
    /// Latency added when a sleeping process is woken by the scheduler, in
    /// nanoseconds (on top of the requested duration).
    pub sleep_wakeup_latency_ns: f64,
    /// Jitter (σ) on the sleep wakeup latency, in nanoseconds.
    pub sleep_wakeup_jitter_ns: f64,
    /// Latency between a resource being released/signalled and the blocked
    /// waiter resuming execution, in nanoseconds.
    pub wait_wakeup_latency_ns: f64,
    /// Jitter (σ) on the wait wakeup latency, in nanoseconds.
    pub wait_wakeup_jitter_ns: f64,
    /// Per-class operation costs.
    pub costs: CostTable,
    /// Random long disturbances.
    pub preemption: Preemption,
    /// Optional open-resource interference (ablation knob, off by default).
    pub open_interference: Option<OpenResourceInterference>,
}

/// Operation costs per [`CostClass`].
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub struct CostTable {
    /// Cost of fast kernel-object calls.
    pub kernel_object_call: CostSpec,
    /// Cost of entering a wait.
    pub wait_call: CostSpec,
    /// Cost of file-lock syscalls.
    pub file_lock_call: CostSpec,
    /// Cost of opening a file.
    pub file_open: CostSpec,
    /// Cost of taking a timestamp.
    pub timestamp: CostSpec,
    /// Cost of one loop iteration of irrelevant instructions.
    pub loop_iteration: CostSpec,
}

impl CostTable {
    /// A table where every operation is free (for unit tests).
    pub const fn zero() -> Self {
        CostTable {
            kernel_object_call: CostSpec::fixed(0.0),
            wait_call: CostSpec::fixed(0.0),
            file_lock_call: CostSpec::fixed(0.0),
            file_open: CostSpec::fixed(0.0),
            timestamp: CostSpec::fixed(0.0),
            loop_iteration: CostSpec::fixed(0.0),
        }
    }

    /// Returns the spec for a class.
    pub fn spec(&self, class: CostClass) -> CostSpec {
        match class {
            CostClass::KernelObjectCall => self.kernel_object_call,
            CostClass::WaitCall => self.wait_call,
            CostClass::FileLockCall => self.file_lock_call,
            CostClass::FileOpen => self.file_open,
            CostClass::Timestamp => self.timestamp,
            CostClass::LoopIteration => self.loop_iteration,
        }
    }

    /// Sets the spec for a class (builder style).
    pub fn with_spec(mut self, class: CostClass, spec: CostSpec) -> Self {
        match class {
            CostClass::KernelObjectCall => self.kernel_object_call = spec,
            CostClass::WaitCall => self.wait_call = spec,
            CostClass::FileLockCall => self.file_lock_call = spec,
            CostClass::FileOpen => self.file_open = spec,
            CostClass::Timestamp => self.timestamp = spec,
            CostClass::LoopIteration => self.loop_iteration = spec,
        }
        self
    }
}

/// Structural hash for cache fingerprinting (floats hashed by bit pattern
/// with the two zeros collapsed, so any parameter change — however small —
/// changes the fingerprint while equal models always fingerprint equally).
impl Hash for NoiseModel {
    fn hash<H: Hasher>(&self, state: &mut H) {
        float_bits(self.min_sleep_ns).hash(state);
        float_bits(self.sleep_wakeup_latency_ns).hash(state);
        float_bits(self.sleep_wakeup_jitter_ns).hash(state);
        float_bits(self.wait_wakeup_latency_ns).hash(state);
        float_bits(self.wait_wakeup_jitter_ns).hash(state);
        self.costs.hash(state);
        self.preemption.hash(state);
        self.open_interference.hash(state);
    }
}

impl NoiseModel {
    /// A completely deterministic, zero-overhead model. Useful for unit
    /// tests of protocol logic, where only the programmed delays matter.
    pub const fn noiseless() -> Self {
        NoiseModel {
            min_sleep_ns: 0.0,
            sleep_wakeup_latency_ns: 0.0,
            sleep_wakeup_jitter_ns: 0.0,
            wait_wakeup_latency_ns: 0.0,
            wait_wakeup_jitter_ns: 0.0,
            costs: CostTable::zero(),
            preemption: Preemption::none(),
            open_interference: None,
        }
    }

    /// A model calibrated to the paper's *local* testbed (Intel i5-7400,
    /// Ubuntu 16.04 / Windows 10). The per-mechanism protocol overhead that
    /// completes the calibration lives in `mes-scenario`.
    pub fn calibrated_local() -> Self {
        NoiseModel {
            min_sleep_ns: 0.0,
            sleep_wakeup_latency_ns: 3_000.0,
            sleep_wakeup_jitter_ns: 1_200.0,
            wait_wakeup_latency_ns: 2_500.0,
            wait_wakeup_jitter_ns: 1_000.0,
            costs: CostTable {
                kernel_object_call: CostSpec::new(1_800.0, 350.0),
                wait_call: CostSpec::new(2_000.0, 400.0),
                file_lock_call: CostSpec::new(2_600.0, 500.0),
                file_open: CostSpec::new(4_000.0, 800.0),
                timestamp: CostSpec::new(300.0, 60.0),
                loop_iteration: CostSpec::new(900.0, 200.0),
            },
            preemption: Preemption {
                short_rate_per_us: 0.000_8,
                short_mean_us: 4.0,
                long_rate_per_us: 0.000_25,
                long_min_us: 20.0,
                long_max_us: 190.0,
            },
            open_interference: None,
        }
    }

    /// Scales every latency, cost and disturbance rate by a factor — used by
    /// the sandbox and cross-VM profiles, whose syscall paths are longer and
    /// noisier.
    pub fn scaled(&self, latency_factor: f64, noise_factor: f64) -> NoiseModel {
        let scale_spec = |s: CostSpec| CostSpec {
            mean_ns: s.mean_ns * latency_factor,
            std_dev_ns: s.std_dev_ns * noise_factor,
        };
        NoiseModel {
            min_sleep_ns: self.min_sleep_ns,
            sleep_wakeup_latency_ns: self.sleep_wakeup_latency_ns * latency_factor,
            sleep_wakeup_jitter_ns: self.sleep_wakeup_jitter_ns * noise_factor,
            wait_wakeup_latency_ns: self.wait_wakeup_latency_ns * latency_factor,
            wait_wakeup_jitter_ns: self.wait_wakeup_jitter_ns * noise_factor,
            costs: CostTable {
                kernel_object_call: scale_spec(self.costs.kernel_object_call),
                wait_call: scale_spec(self.costs.wait_call),
                file_lock_call: scale_spec(self.costs.file_lock_call),
                file_open: scale_spec(self.costs.file_open),
                timestamp: scale_spec(self.costs.timestamp),
                loop_iteration: scale_spec(self.costs.loop_iteration),
            },
            preemption: Preemption {
                short_rate_per_us: self.preemption.short_rate_per_us * noise_factor,
                short_mean_us: self.preemption.short_mean_us,
                long_rate_per_us: self.preemption.long_rate_per_us * noise_factor,
                long_min_us: self.preemption.long_min_us,
                long_max_us: self.preemption.long_max_us * noise_factor.max(1.0),
            },
            open_interference: self.open_interference,
        }
    }

    /// Enables open-resource interference (ablation knob).
    pub fn with_open_interference(mut self, interference: OpenResourceInterference) -> Self {
        self.open_interference = Some(interference);
        self
    }

    /// Sets the minimum effective sleep duration (builder style). Used by the
    /// Linux profiles to model the ≈ 58 µs scheduler wakeup floor the paper
    /// reports.
    pub fn with_min_sleep(mut self, min_sleep: Nanos) -> Self {
        self.min_sleep_ns = min_sleep.as_u64() as f64;
        self
    }

    /// Samples the cost of one operation of the given class, in nanoseconds.
    pub fn sample_cost(&self, class: CostClass, rng: &mut SimRng) -> Nanos {
        let spec = self.costs.spec(class);
        Nanos::from_micros_f64(rng.normal_non_negative(spec.mean_ns, spec.std_dev_ns) / 1_000.0)
    }

    /// Samples the total duration of a sleep of nominal length `nominal`,
    /// including wakeup latency, jitter and disturbances.
    pub fn sample_sleep(&self, nominal: Nanos, rng: &mut SimRng) -> Nanos {
        let floored = nominal.max(Nanos::from_micros_f64(self.min_sleep_ns / 1_000.0));
        let wake =
            rng.normal_non_negative(self.sleep_wakeup_latency_ns, self.sleep_wakeup_jitter_ns);
        let extra_us = self.preemption.sample_extra_us(floored, rng);
        floored + Nanos::from_micros_f64(wake / 1_000.0) + Nanos::from_micros_f64(extra_us)
    }

    /// Samples the latency between a wake-up signal and the waiter actually
    /// resuming.
    pub fn sample_wait_wakeup(&self, rng: &mut SimRng) -> Nanos {
        let wake = rng.normal_non_negative(self.wait_wakeup_latency_ns, self.wait_wakeup_jitter_ns);
        Nanos::from_micros_f64(wake / 1_000.0)
    }

    /// Samples disturbance delay for a non-sleep interval (e.g. a lock hold).
    pub fn sample_disturbance(&self, interval: Nanos, rng: &mut SimRng) -> Nanos {
        Nanos::from_micros_f64(self.preemption.sample_extra_us(interval, rng))
    }

    /// Samples extra blocking caused by third-party contention on an open
    /// resource, if the ablation knob is enabled.
    pub fn sample_open_interference(&self, rng: &mut SimRng) -> Nanos {
        match self.open_interference {
            None => Nanos::ZERO,
            Some(model) => {
                if rng.bernoulli(model.contention_probability) {
                    Nanos::from_micros_f64(rng.exponential(model.occupancy_mean_us))
                } else {
                    Nanos::ZERO
                }
            }
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::calibrated_local()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_types::Micros;

    #[test]
    fn noiseless_model_adds_nothing() {
        let model = NoiseModel::noiseless();
        let mut rng = SimRng::seed_from(1);
        let nominal = Micros::new(100).to_nanos();
        assert_eq!(model.sample_sleep(nominal, &mut rng), nominal);
        assert_eq!(model.sample_wait_wakeup(&mut rng), Nanos::ZERO);
        assert_eq!(
            model.sample_cost(CostClass::WaitCall, &mut rng),
            Nanos::ZERO
        );
        assert_eq!(model.sample_disturbance(nominal, &mut rng), Nanos::ZERO);
        assert_eq!(model.sample_open_interference(&mut rng), Nanos::ZERO);
    }

    #[test]
    fn calibrated_sleep_is_longer_than_nominal() {
        let model = NoiseModel::calibrated_local();
        let mut rng = SimRng::seed_from(2);
        let nominal = Micros::new(60).to_nanos();
        let mean: f64 = (0..2_000)
            .map(|_| model.sample_sleep(nominal, &mut rng).as_micros_f64())
            .sum::<f64>()
            / 2_000.0;
        assert!(mean > 60.0, "mean sleep {mean}us should exceed nominal");
        assert!(mean < 80.0, "mean sleep {mean}us unreasonably large");
    }

    #[test]
    fn preemption_rate_grows_with_interval() {
        let model = NoiseModel::calibrated_local();
        let mut rng = SimRng::seed_from(3);
        let count_extra = |nominal_us: u64, rng: &mut SimRng| {
            (0..4_000)
                .filter(|_| {
                    model
                        .preemption
                        .sample_extra_us(Micros::new(nominal_us).to_nanos(), rng)
                        > 0.0
                })
                .count()
        };
        let short = count_extra(20, &mut rng);
        let long = count_extra(300, &mut rng);
        assert!(
            long > short,
            "long intervals must be disturbed more often ({short} vs {long})"
        );
    }

    #[test]
    fn scaling_increases_costs() {
        let base = NoiseModel::calibrated_local();
        let scaled = base.scaled(2.0, 1.5);
        assert!(scaled.costs.wait_call.mean_ns > base.costs.wait_call.mean_ns);
        assert!(scaled.sleep_wakeup_latency_ns > base.sleep_wakeup_latency_ns);
        assert!(scaled.preemption.short_rate_per_us > base.preemption.short_rate_per_us);
    }

    #[test]
    fn open_interference_sometimes_fires() {
        let model = NoiseModel::noiseless().with_open_interference(OpenResourceInterference {
            contention_probability: 0.5,
            occupancy_mean_us: 10.0,
        });
        let mut rng = SimRng::seed_from(4);
        let hits = (0..1_000)
            .filter(|_| model.sample_open_interference(&mut rng) > Nanos::ZERO)
            .count();
        assert!(hits > 300 && hits < 700, "hits {hits}");
    }

    #[test]
    fn min_sleep_floors_short_sleeps() {
        let model = NoiseModel::noiseless().with_min_sleep(Micros::new(58).to_nanos());
        let mut rng = SimRng::seed_from(9);
        let short = model.sample_sleep(Micros::new(15).to_nanos(), &mut rng);
        let long = model.sample_sleep(Micros::new(160).to_nanos(), &mut rng);
        assert_eq!(short, Micros::new(58).to_nanos());
        assert_eq!(long, Micros::new(160).to_nanos());
    }

    #[test]
    fn equal_noise_models_hash_equally_across_signed_zeros() {
        // `-0.0 == 0.0` under the derived PartialEq, so two equal models
        // must produce one fingerprint — otherwise the experiment layer's
        // observation cache would silently miss on profiles whose parameters
        // were computed as a negative zero.
        let mut positive = NoiseModel::noiseless();
        let mut negative = NoiseModel::noiseless();
        positive.sleep_wakeup_jitter_ns = 0.0;
        negative.sleep_wakeup_jitter_ns = -0.0;
        negative.costs.wait_call = CostSpec::new(-0.0, 0.0);
        positive.preemption.long_min_us = 0.0;
        negative.preemption.long_min_us = -0.0;
        assert_eq!(positive, negative);
        assert_eq!(
            mes_types::fingerprint_of(&positive),
            mes_types::fingerprint_of(&negative)
        );
        // Collapsing the zeros must not collapse real differences.
        let mut different = positive.clone();
        different.sleep_wakeup_jitter_ns = 1.0;
        assert_ne!(
            mes_types::fingerprint_of(&positive),
            mes_types::fingerprint_of(&different)
        );
    }

    #[test]
    fn cost_table_accessors_roundtrip() {
        let table = CostTable::zero().with_spec(CostClass::Timestamp, CostSpec::new(5.0, 1.0));
        assert_eq!(table.spec(CostClass::Timestamp), CostSpec::new(5.0, 1.0));
        assert_eq!(table.spec(CostClass::FileOpen), CostSpec::fixed(0.0));
        assert_eq!(CostClass::ALL.len(), 6);
    }
}
