//! The simulator's instruction set: the operations a simulated Trojan or Spy
//! program can execute.
//!
//! Channel protocols (`mes-core`) compile each transmission into a flat list
//! of these ops — the simulated analogue of the C snippets in Protocol 1 and
//! Protocol 2 of the paper.

use crate::kernel::object::ObjectKind;
use crate::noise::CostClass;
use mes_types::{FdId, HandleId, Nanos};
use serde::{Deserialize, Serialize};

/// One operation executed by a simulated process.
///
/// Handles ([`HandleId`]) and descriptors ([`FdId`]) are process-local names
/// chosen by the program builder; the engine resolves them through the
/// process's handle table / fd table, mirroring Fig. 4 and Fig. 5 of the
/// paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    // ----- kernel objects (Windows side of the paper) ------------------
    /// Create a named kernel object in the process's session and bind it to
    /// a local handle (`CreateEvent`, `CreateMutex`, `CreateSemaphore`,
    /// `CreateWaitableTimer`).
    CreateObject {
        /// System-wide object name agreed on by Trojan and Spy.
        name: String,
        /// Kind and initial state of the object.
        kind: ObjectKind,
        /// Local handle to bind in this process's handle table.
        handle: HandleId,
    },
    /// Open an existing named object and bind it to a local handle
    /// (`OpenEvent` and friends).
    OpenObject {
        /// System-wide object name.
        name: String,
        /// Local handle to bind.
        handle: HandleId,
    },
    /// Set an event object to the signalled state (`SetEvent`).
    SetEvent {
        /// Local handle of the event.
        handle: HandleId,
    },
    /// Reset an event object to the non-signalled state (`ResetEvent`).
    ResetEvent {
        /// Local handle of the event.
        handle: HandleId,
    },
    /// Block until the object is signalled (`WaitForSingleObject` with an
    /// infinite timeout, or semaphore P).
    WaitForSingleObject {
        /// Local handle of the object.
        handle: HandleId,
    },
    /// Release a mutex owned by this process (`ReleaseMutex`).
    ReleaseMutex {
        /// Local handle of the mutex.
        handle: HandleId,
    },
    /// Release `count` units of a semaphore (`ReleaseSemaphore` / V).
    ReleaseSemaphore {
        /// Local handle of the semaphore.
        handle: HandleId,
        /// Number of units to release.
        count: u32,
    },
    /// Arm a waitable timer to signal after `due` (`SetWaitableTimer`).
    SetTimer {
        /// Local handle of the timer.
        handle: HandleId,
        /// Relative due time.
        due: Nanos,
    },

    // ----- file locks (Linux side of the paper) -------------------------
    /// Open a file by path and bind it to a local descriptor.
    OpenFile {
        /// Path in the simulated filesystem.
        path: String,
        /// Local descriptor to bind.
        fd: FdId,
    },
    /// Acquire an exclusive advisory lock (`flock(fd, LOCK_EX)` /
    /// `LockFileEx`), blocking while another process holds it.
    FlockExclusive {
        /// Local descriptor of the shared file.
        fd: FdId,
    },
    /// Release the advisory lock (`flock(fd, LOCK_UN)` / `UnlockFileEx`).
    FlockUnlock {
        /// Local descriptor of the shared file.
        fd: FdId,
    },

    // ----- process-local operations -------------------------------------
    /// Sleep for the given nominal duration (the engine adds wakeup latency
    /// and scheduler noise).
    SleepFor {
        /// Nominal sleep duration.
        duration: Nanos,
    },
    /// Busy-work for the given duration ("irrelevant instructions" in the
    /// paper's terminology).
    Compute {
        /// Nominal busy-work duration.
        duration: Nanos,
    },
    /// Record the start of measurement window `slot` (the Spy's
    /// `start_time`).
    TimestampStart {
        /// Measurement slot, usually the bit index.
        slot: u32,
    },
    /// Record the end of measurement window `slot` (the Spy's `end_time`).
    TimestampEnd {
        /// Measurement slot, usually the bit index.
        slot: u32,
    },

    // ----- coordination ---------------------------------------------------
    /// Fine-grained inter-bit synchronization barrier (Section V.B of the
    /// paper): blocks until every participating process has reached the same
    /// barrier id for the current round.
    Barrier {
        /// Barrier identity; processes sharing an id rendezvous together.
        id: u32,
    },
}

impl Op {
    /// The cost class charged for executing this op, if any.
    ///
    /// Process-local waits (`SleepFor`, `Compute`) carry their own explicit
    /// durations and therefore have no class.
    pub fn cost_class(&self) -> Option<CostClass> {
        match self {
            Op::CreateObject { .. }
            | Op::OpenObject { .. }
            | Op::SetEvent { .. }
            | Op::ResetEvent { .. }
            | Op::ReleaseMutex { .. }
            | Op::ReleaseSemaphore { .. }
            | Op::SetTimer { .. } => Some(CostClass::KernelObjectCall),
            Op::WaitForSingleObject { .. } => Some(CostClass::WaitCall),
            Op::FlockExclusive { .. } | Op::FlockUnlock { .. } => Some(CostClass::FileLockCall),
            Op::OpenFile { .. } => Some(CostClass::FileOpen),
            Op::TimestampStart { .. } | Op::TimestampEnd { .. } => Some(CostClass::Timestamp),
            Op::Barrier { .. } => Some(CostClass::LoopIteration),
            Op::SleepFor { .. } | Op::Compute { .. } => None,
        }
    }

    /// Whether the op can block the process on shared state.
    pub fn can_block(&self) -> bool {
        matches!(
            self,
            Op::WaitForSingleObject { .. } | Op::FlockExclusive { .. } | Op::Barrier { .. }
        )
    }

    /// Whether the op touches state shared between processes (and therefore
    /// must be executed in global time order).
    pub fn is_shared(&self) -> bool {
        !matches!(
            self,
            Op::SleepFor { .. }
                | Op::Compute { .. }
                | Op::TimestampStart { .. }
                | Op::TimestampEnd { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_types::Micros;

    #[test]
    fn blocking_ops_are_shared() {
        let ops = [
            Op::WaitForSingleObject {
                handle: HandleId::new(1),
            },
            Op::FlockExclusive { fd: FdId::new(0) },
            Op::Barrier { id: 1 },
        ];
        for op in ops {
            assert!(op.can_block());
            assert!(op.is_shared());
        }
    }

    #[test]
    fn local_ops_have_no_cost_class() {
        assert_eq!(
            Op::SleepFor {
                duration: Micros::new(1).to_nanos()
            }
            .cost_class(),
            None
        );
        assert_eq!(
            Op::Compute {
                duration: Nanos::new(10)
            }
            .cost_class(),
            None
        );
        assert!(!Op::SleepFor {
            duration: Nanos::ZERO
        }
        .is_shared());
    }

    #[test]
    fn cost_classes_match_op_kind() {
        assert_eq!(
            Op::SetEvent {
                handle: HandleId::new(1)
            }
            .cost_class(),
            Some(CostClass::KernelObjectCall)
        );
        assert_eq!(
            Op::WaitForSingleObject {
                handle: HandleId::new(1)
            }
            .cost_class(),
            Some(CostClass::WaitCall)
        );
        assert_eq!(
            Op::FlockExclusive { fd: FdId::new(3) }.cost_class(),
            Some(CostClass::FileLockCall)
        );
        assert_eq!(
            Op::OpenFile {
                path: "f".into(),
                fd: FdId::new(3)
            }
            .cost_class(),
            Some(CostClass::FileOpen)
        );
        assert_eq!(
            Op::TimestampStart { slot: 0 }.cost_class(),
            Some(CostClass::Timestamp)
        );
    }

    #[test]
    fn timestamps_are_local_but_set_event_is_shared() {
        assert!(!Op::TimestampEnd { slot: 2 }.is_shared());
        assert!(Op::SetEvent {
            handle: HandleId::new(4)
        }
        .is_shared());
        assert!(!Op::SetEvent {
            handle: HandleId::new(4)
        }
        .can_block());
    }
}
