//! `mes-coding` — the bit/symbol layer of the MES-Attacks reproduction.
//!
//! The paper's channels carry information purely in *how long* the Spy stays
//! in a constraint state. Everything above that — framing with a
//! synchronization sequence (Section V.B), deciding a threshold between `0`
//! and `1` latencies, packing several bits into one symbol (Section VI), and
//! the optional integrity/error-correction extensions — lives in this crate
//! so it can be reused by both the simulated and the real-host backends.
//!
//! # Examples
//!
//! ```
//! use mes_coding::{Frame, FrameCodec, ThresholdDecoder};
//! use mes_types::{BitString, Micros, Nanos};
//!
//! // The Trojan frames an 8-bit payload behind the paper's "10101010"
//! // synchronization sequence.
//! let codec = FrameCodec::with_default_preamble();
//! let payload = BitString::from_str01("11001010")?;
//! let on_the_wire = codec.encode(&payload);
//!
//! // The Spy sees latencies and thresholds them back into bits.
//! let decoder = ThresholdDecoder::midpoint(Micros::new(20).to_nanos(),
//!                                          Micros::new(80).to_nanos());
//! let latencies: Vec<Nanos> = on_the_wire
//!     .iter()
//!     .map(|bit| if bit.is_one() { Micros::new(80).to_nanos() } else { Micros::new(20).to_nanos() })
//!     .collect();
//! let received = decoder.decode_all(&latencies);
//! let frame: Frame = codec.decode(&received)?;
//! assert_eq!(frame.payload(), &payload);
//! # Ok::<(), mes_types::MesError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod ecc;
pub mod framing;
pub mod source;
pub mod symbols;
pub mod threshold;

pub use crc::{Crc16, Crc8};
pub use ecc::{Hamming74, RepetitionCode};
pub use framing::{Frame, FrameCodec};
pub use source::{BitSource, PayloadSpec};
pub use symbols::{SymbolAlphabet, SymbolDecoder};
pub use threshold::{AdaptiveThreshold, ThresholdDecoder, TwoMeansClassifier};
