//! Latency → bit decision rules.
//!
//! Protocol 1 and Protocol 2 of the paper both end with the same line: the
//! Spy compares `end_time - start_time` against a threshold and emits `1` for
//! a long latency, `0` for a short one. This module provides the fixed
//! midpoint rule the paper uses, an adaptive variant that learns the
//! threshold from the synchronization sequence, and a blind two-means
//! classifier for when the Spy knows nothing about the timing parameters.

use mes_types::{Bit, BitString, MesError, Nanos, Result};
use serde::{Deserialize, Serialize};

/// A fixed-threshold decoder: latency above the threshold decodes as `1`.
///
/// # Examples
///
/// ```
/// use mes_coding::ThresholdDecoder;
/// use mes_types::{Bit, Nanos};
///
/// let decoder = ThresholdDecoder::new(Nanos::new(50_000));
/// assert_eq!(decoder.decode(Nanos::new(80_000)), Bit::One);
/// assert_eq!(decoder.decode(Nanos::new(20_000)), Bit::Zero);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdDecoder {
    threshold: Nanos,
}

impl ThresholdDecoder {
    /// Creates a decoder with an explicit threshold.
    pub fn new(threshold: Nanos) -> Self {
        ThresholdDecoder { threshold }
    }

    /// Creates a decoder whose threshold is the midpoint of the expected `0`
    /// and `1` latencies — the rule the paper's receivers use.
    pub fn midpoint(expected_zero: Nanos, expected_one: Nanos) -> Self {
        let low = expected_zero.min(expected_one);
        let high = expected_zero.max(expected_one);
        ThresholdDecoder {
            threshold: low + (high - low) / 2,
        }
    }

    /// The decision threshold.
    pub fn threshold(&self) -> Nanos {
        self.threshold
    }

    /// Decodes one latency.
    pub fn decode(&self, latency: Nanos) -> Bit {
        if latency > self.threshold {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Decodes a slice of latencies in order.
    pub fn decode_all(&self, latencies: &[Nanos]) -> BitString {
        latencies.iter().map(|&l| self.decode(l)).collect()
    }
}

/// Learns the decision threshold from the latencies of a known preamble.
///
/// The Spy knows the synchronization sequence in advance (Section V.B), so it
/// can average the latencies observed for its `0`s and `1`s and place the
/// threshold halfway between the two — robust to the absolute offset added by
/// sandbox or VM boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveThreshold;

impl AdaptiveThreshold {
    /// Fits a [`ThresholdDecoder`] from preamble latencies.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::FrameRecovery`] if the preamble does not contain
    /// at least one `0` and one `1`, or if fewer latencies than preamble bits
    /// were observed.
    pub fn fit(preamble: &BitString, latencies: &[Nanos]) -> Result<ThresholdDecoder> {
        if latencies.len() < preamble.len() {
            return Err(MesError::FrameRecovery {
                reason: format!(
                    "observed {} latencies for a {}-bit synchronization sequence",
                    latencies.len(),
                    preamble.len()
                ),
            });
        }
        let mut zero_sum = 0u128;
        let mut zero_count = 0u64;
        let mut one_sum = 0u128;
        let mut one_count = 0u64;
        for (bit, latency) in preamble.iter().zip(latencies.iter()) {
            match bit {
                Bit::Zero => {
                    zero_sum += latency.as_u64() as u128;
                    zero_count += 1;
                }
                Bit::One => {
                    one_sum += latency.as_u64() as u128;
                    one_count += 1;
                }
            }
        }
        if zero_count == 0 || one_count == 0 {
            return Err(MesError::FrameRecovery {
                reason: "synchronization sequence must contain both bit values".into(),
            });
        }
        let zero_mean = (zero_sum / zero_count as u128) as u64;
        let one_mean = (one_sum / one_count as u128) as u64;
        Ok(ThresholdDecoder::midpoint(
            Nanos::new(zero_mean),
            Nanos::new(one_mean),
        ))
    }
}

/// Blind 1-D two-means clustering of latencies into a low and a high cluster.
///
/// Useful when the Spy has no prior at all: it observes a window of
/// latencies, clusters them, and derives the threshold from the cluster
/// means.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoMeansClassifier {
    /// Mean of the low-latency cluster (decoded as `0`).
    pub low_mean: Nanos,
    /// Mean of the high-latency cluster (decoded as `1`).
    pub high_mean: Nanos,
    /// Number of Lloyd iterations performed before convergence.
    pub iterations: usize,
}

impl TwoMeansClassifier {
    /// Fits the classifier on a window of latencies.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::FrameRecovery`] if fewer than two distinct
    /// latencies are available.
    pub fn fit(latencies: &[Nanos]) -> Result<Self> {
        let min = latencies.iter().copied().min();
        let max = latencies.iter().copied().max();
        let (Some(mut low), Some(mut high)) = (min, max) else {
            return Err(MesError::FrameRecovery {
                reason: "no latencies to cluster".into(),
            });
        };
        if low == high {
            return Err(MesError::FrameRecovery {
                reason: "latencies are identical; two clusters cannot be separated".into(),
            });
        }
        let mut iterations = 0;
        for _ in 0..64 {
            iterations += 1;
            let midpoint = low + (high.saturating_sub(low)) / 2;
            let mut low_sum = 0u128;
            let mut low_count = 0u64;
            let mut high_sum = 0u128;
            let mut high_count = 0u64;
            for &latency in latencies {
                if latency > midpoint {
                    high_sum += latency.as_u64() as u128;
                    high_count += 1;
                } else {
                    low_sum += latency.as_u64() as u128;
                    low_count += 1;
                }
            }
            if low_count == 0 || high_count == 0 {
                break;
            }
            let new_low = Nanos::new((low_sum / low_count as u128) as u64);
            let new_high = Nanos::new((high_sum / high_count as u128) as u64);
            if new_low == low && new_high == high {
                break;
            }
            low = new_low;
            high = new_high;
        }
        Ok(TwoMeansClassifier {
            low_mean: low,
            high_mean: high,
            iterations,
        })
    }

    /// The decoder induced by the fitted clusters.
    pub fn decoder(&self) -> ThresholdDecoder {
        ThresholdDecoder::midpoint(self.low_mean, self.high_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_types::Micros;
    use proptest::prelude::*;

    fn us(v: u64) -> Nanos {
        Micros::new(v).to_nanos()
    }

    #[test]
    fn midpoint_threshold_is_halfway() {
        let decoder = ThresholdDecoder::midpoint(us(20), us(80));
        assert_eq!(decoder.threshold(), us(50));
        // Order of arguments must not matter.
        let swapped = ThresholdDecoder::midpoint(us(80), us(20));
        assert_eq!(swapped.threshold(), us(50));
    }

    #[test]
    fn decode_all_maps_each_latency() {
        let decoder = ThresholdDecoder::midpoint(us(20), us(80));
        let bits = decoder.decode_all(&[us(81), us(10), us(49), us(51)]);
        assert_eq!(bits.to_string(), "1001");
    }

    #[test]
    fn boundary_latency_decodes_as_zero() {
        let decoder = ThresholdDecoder::new(us(50));
        assert_eq!(decoder.decode(us(50)), Bit::Zero);
        assert_eq!(decoder.decode(Nanos::new(50_001)), Bit::One);
    }

    #[test]
    fn adaptive_threshold_learns_from_preamble() {
        let preamble = BitString::from_str01("10101010").unwrap();
        let latencies: Vec<Nanos> = preamble
            .iter()
            .map(|b| if b.is_one() { us(92) } else { us(31) })
            .collect();
        let decoder = AdaptiveThreshold::fit(&preamble, &latencies).unwrap();
        assert!(decoder.threshold() > us(31));
        assert!(decoder.threshold() < us(92));
        assert_eq!(decoder.decode(us(90)), Bit::One);
        assert_eq!(decoder.decode(us(35)), Bit::Zero);
    }

    #[test]
    fn adaptive_threshold_requires_both_symbols_and_enough_samples() {
        let ones = BitString::from_str01("1111").unwrap();
        let latencies = vec![us(90); 4];
        assert!(AdaptiveThreshold::fit(&ones, &latencies).is_err());
        let preamble = BitString::from_str01("10").unwrap();
        assert!(AdaptiveThreshold::fit(&preamble, &[us(90)]).is_err());
    }

    #[test]
    fn two_means_separates_clusters() {
        let latencies: Vec<Nanos> = (0..50)
            .map(|i| {
                if i % 2 == 0 {
                    us(30 + i % 5)
                } else {
                    us(100 + i % 7)
                }
            })
            .collect();
        let classifier = TwoMeansClassifier::fit(&latencies).unwrap();
        assert!(classifier.low_mean < us(40));
        assert!(classifier.high_mean > us(95));
        let decoder = classifier.decoder();
        assert_eq!(decoder.decode(us(33)), Bit::Zero);
        assert_eq!(decoder.decode(us(101)), Bit::One);
        assert!(classifier.iterations >= 1);
    }

    #[test]
    fn two_means_rejects_degenerate_input() {
        assert!(TwoMeansClassifier::fit(&[]).is_err());
        assert!(TwoMeansClassifier::fit(&[us(10), us(10)]).is_err());
    }

    proptest! {
        #[test]
        fn prop_threshold_decisions_are_monotone(
            threshold_us in 1u64..10_000,
            latency_us in 0u64..20_000,
        ) {
            let decoder = ThresholdDecoder::new(us(threshold_us));
            let bit = decoder.decode(us(latency_us));
            if latency_us > threshold_us {
                prop_assert_eq!(bit, Bit::One);
            } else {
                prop_assert_eq!(bit, Bit::Zero);
            }
        }

        #[test]
        fn prop_adaptive_recovers_separable_clusters(
            zero_us in 10u64..40,
            gap_us in 30u64..200,
        ) {
            let preamble = BitString::from_str01("10101010").unwrap();
            let one_us = zero_us + gap_us;
            let latencies: Vec<Nanos> = preamble
                .iter()
                .map(|b| if b.is_one() { us(one_us) } else { us(zero_us) })
                .collect();
            let decoder = AdaptiveThreshold::fit(&preamble, &latencies).unwrap();
            prop_assert_eq!(decoder.decode(us(one_us)), Bit::One);
            prop_assert_eq!(decoder.decode(us(zero_us)), Bit::Zero);
        }
    }
}
