//! Cyclic redundancy checks for frame integrity.
//!
//! The paper's receivers validate rounds only through the synchronization
//! sequence; appending a short CRC to each round is a natural extension that
//! lets the Spy detect (rather than silently accept) corrupted payloads. Both
//! a CRC-8 (polynomial 0x07) and a CRC-16/CCITT-FALSE are provided.

use mes_types::{Bit, BitString};

/// CRC-8 with polynomial `x^8 + x^2 + x + 1` (0x07), initial value 0.
///
/// # Examples
///
/// ```
/// use mes_coding::Crc8;
///
/// let crc = Crc8::checksum(b"123456789");
/// assert_eq!(crc, 0xF4); // standard check value for CRC-8/SMBUS
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Crc8;

impl Crc8 {
    /// Computes the CRC-8 of a byte slice.
    pub fn checksum(data: &[u8]) -> u8 {
        let mut crc: u8 = 0;
        for &byte in data {
            crc ^= byte;
            for _ in 0..8 {
                if crc & 0x80 != 0 {
                    crc = (crc << 1) ^ 0x07;
                } else {
                    crc <<= 1;
                }
            }
        }
        crc
    }

    /// Computes the CRC-8 over a bitstring (packed to bytes, trailing bits
    /// zero-padded).
    pub fn checksum_bits(bits: &BitString) -> u8 {
        Self::checksum(&pad_to_bytes(bits))
    }

    /// Appends the 8 CRC bits to a payload.
    pub fn append(bits: &BitString) -> BitString {
        let crc = Self::checksum_bits(bits);
        let mut out = bits.clone();
        for shift in (0..8).rev() {
            out.push(Bit::from((crc >> shift) & 1 == 1));
        }
        out
    }

    /// Verifies and strips a trailing CRC-8. Returns the payload if the
    /// checksum matches.
    pub fn verify_and_strip(bits: &BitString) -> Option<BitString> {
        if bits.len() < 8 {
            return None;
        }
        let payload = bits.slice(0, bits.len() - 8);
        let crc_bits = bits.slice(bits.len() - 8, bits.len());
        let mut crc = 0u8;
        for bit in crc_bits.iter() {
            crc = (crc << 1) | u8::from(bit);
        }
        if Self::checksum_bits(&payload) == crc {
            Some(payload)
        } else {
            None
        }
    }
}

/// CRC-16/CCITT-FALSE (polynomial 0x1021, initial value 0xFFFF).
///
/// # Examples
///
/// ```
/// use mes_coding::Crc16;
///
/// assert_eq!(Crc16::checksum(b"123456789"), 0x29B1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Crc16;

impl Crc16 {
    /// Computes the CRC-16/CCITT-FALSE of a byte slice.
    pub fn checksum(data: &[u8]) -> u16 {
        let mut crc: u16 = 0xFFFF;
        for &byte in data {
            crc ^= (byte as u16) << 8;
            for _ in 0..8 {
                if crc & 0x8000 != 0 {
                    crc = (crc << 1) ^ 0x1021;
                } else {
                    crc <<= 1;
                }
            }
        }
        crc
    }

    /// Computes the CRC-16 over a bitstring (packed to bytes, zero-padded).
    pub fn checksum_bits(bits: &BitString) -> u16 {
        Self::checksum(&pad_to_bytes(bits))
    }
}

fn pad_to_bytes(bits: &BitString) -> Vec<u8> {
    let mut padded = bits.clone();
    while !padded.len().is_multiple_of(8) {
        padded.push(Bit::Zero);
    }
    padded.to_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc8_known_vectors() {
        assert_eq!(Crc8::checksum(b""), 0x00);
        assert_eq!(Crc8::checksum(b"123456789"), 0xF4);
        assert_eq!(Crc8::checksum(&[0x00]), 0x00);
        assert_eq!(Crc8::checksum(&[0xFF]), 0xF3);
    }

    #[test]
    fn crc16_known_vectors() {
        assert_eq!(Crc16::checksum(b""), 0xFFFF);
        assert_eq!(Crc16::checksum(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc8_append_verify_roundtrip() {
        let payload = BitString::from_bytes(b"secret");
        let protected = Crc8::append(&payload);
        assert_eq!(protected.len(), payload.len() + 8);
        assert_eq!(Crc8::verify_and_strip(&protected), Some(payload));
    }

    #[test]
    fn crc8_detects_single_bit_flip() {
        let payload = BitString::from_bytes(b"secret");
        let protected = Crc8::append(&payload);
        for position in 0..protected.len() {
            let mut corrupted = BitString::new();
            for (i, bit) in protected.iter().enumerate() {
                corrupted.push(if i == position { bit.flipped() } else { bit });
            }
            assert_eq!(
                Crc8::verify_and_strip(&corrupted),
                None,
                "flip at {position} undetected"
            );
        }
    }

    #[test]
    fn crc8_short_input_fails_verification() {
        assert_eq!(
            Crc8::verify_and_strip(&BitString::from_str01("1010").unwrap()),
            None
        );
    }

    #[test]
    fn bit_and_byte_checksums_agree_on_whole_bytes() {
        let bytes = b"abcdef";
        let bits = BitString::from_bytes(bytes);
        assert_eq!(Crc8::checksum_bits(&bits), Crc8::checksum(bytes));
        assert_eq!(Crc16::checksum_bits(&bits), Crc16::checksum(bytes));
    }

    proptest! {
        #[test]
        fn prop_crc8_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..32)) {
            let payload = BitString::from_bytes(&data);
            let protected = Crc8::append(&payload);
            prop_assert_eq!(Crc8::verify_and_strip(&protected), Some(payload));
        }
    }
}
