//! Forward error correction extensions.
//!
//! The paper keeps BER below 1 % by choosing conservative timing parameters;
//! an alternative the channels naturally support is to spend some of the
//! rate on redundancy instead. Two simple codes are provided: an n-fold
//! repetition code with majority voting, and the classic Hamming(7,4) single
//! error-correcting code.

use mes_types::{Bit, BitString, MesError, Result};
use serde::{Deserialize, Serialize};

/// An n-fold repetition code decoded by majority vote.
///
/// # Examples
///
/// ```
/// use mes_coding::RepetitionCode;
/// use mes_types::BitString;
///
/// let code = RepetitionCode::new(3)?;
/// let payload = BitString::from_str01("101")?;
/// let encoded = code.encode(&payload);
/// assert_eq!(encoded.to_string(), "111000111");
/// assert_eq!(code.decode(&encoded)?, payload);
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepetitionCode {
    repetitions: usize,
}

impl RepetitionCode {
    /// Creates a repetition code.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::InvalidConfig`] unless the repetition count is an
    /// odd number ≥ 3 (even counts cannot break ties).
    pub fn new(repetitions: usize) -> Result<Self> {
        if repetitions < 3 || repetitions.is_multiple_of(2) {
            return Err(MesError::InvalidConfig {
                reason: format!("repetition count must be odd and at least 3, got {repetitions}"),
            });
        }
        Ok(RepetitionCode { repetitions })
    }

    /// The repetition factor.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    /// Code rate (information bits per transmitted bit).
    pub fn rate(&self) -> f64 {
        1.0 / self.repetitions as f64
    }

    /// Encodes by repeating each bit.
    pub fn encode(&self, payload: &BitString) -> BitString {
        let mut out = BitString::with_capacity(payload.len() * self.repetitions);
        for bit in payload.iter() {
            for _ in 0..self.repetitions {
                out.push(bit);
            }
        }
        out
    }

    /// Decodes by majority vote over each group.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::FrameRecovery`] if the received length is not a
    /// multiple of the repetition factor.
    pub fn decode(&self, received: &BitString) -> Result<BitString> {
        if !received.len().is_multiple_of(self.repetitions) {
            return Err(MesError::FrameRecovery {
                reason: format!(
                    "received {} bits, not a multiple of the repetition factor {}",
                    received.len(),
                    self.repetitions
                ),
            });
        }
        let mut out = BitString::with_capacity(received.len() / self.repetitions);
        for group in received.as_slice().chunks(self.repetitions) {
            let ones = group.iter().filter(|b| b.is_one()).count();
            out.push(Bit::from(ones * 2 > self.repetitions));
        }
        Ok(out)
    }
}

/// The Hamming(7,4) code: 4 data bits per 7-bit codeword, corrects any single
/// bit error per codeword.
///
/// # Examples
///
/// ```
/// use mes_coding::Hamming74;
/// use mes_types::BitString;
///
/// let payload = BitString::from_str01("10110100")?;
/// let encoded = Hamming74::encode(&payload);
/// assert_eq!(encoded.len(), 14);
/// assert_eq!(Hamming74::decode(&encoded)?, payload);
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Hamming74;

impl Hamming74 {
    /// Encodes a payload, zero-padding it to a multiple of 4 bits.
    pub fn encode(payload: &BitString) -> BitString {
        let mut padded = payload.clone();
        while !padded.len().is_multiple_of(4) {
            padded.push(Bit::Zero);
        }
        let mut out = BitString::with_capacity(padded.len() / 4 * 7);
        for chunk in padded.as_slice().chunks(4) {
            let d: Vec<u8> = chunk.iter().map(|&b| u8::from(b)).collect();
            // Codeword layout: p1 p2 d1 p3 d2 d3 d4 (positions 1..=7).
            let p1 = d[0] ^ d[1] ^ d[3];
            let p2 = d[0] ^ d[2] ^ d[3];
            let p3 = d[1] ^ d[2] ^ d[3];
            for value in [p1, p2, d[0], p3, d[1], d[2], d[3]] {
                out.push(Bit::from(value == 1));
            }
        }
        out
    }

    /// Decodes a received stream of 7-bit codewords, correcting up to one
    /// flipped bit per codeword.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::FrameRecovery`] if the received length is not a
    /// multiple of 7.
    pub fn decode(received: &BitString) -> Result<BitString> {
        if !received.len().is_multiple_of(7) {
            return Err(MesError::FrameRecovery {
                reason: format!("received {} bits, not a multiple of 7", received.len()),
            });
        }
        let mut out = BitString::with_capacity(received.len() / 7 * 4);
        for chunk in received.as_slice().chunks(7) {
            let mut word: Vec<u8> = chunk.iter().map(|&b| u8::from(b)).collect();
            // Syndrome over positions 1..=7.
            let s1 = word[0] ^ word[2] ^ word[4] ^ word[6];
            let s2 = word[1] ^ word[2] ^ word[5] ^ word[6];
            let s3 = word[3] ^ word[4] ^ word[5] ^ word[6];
            let syndrome = (s3 << 2 | s2 << 1 | s1) as usize;
            if syndrome != 0 {
                word[syndrome - 1] ^= 1;
            }
            for &value in [word[2], word[4], word[5], word[6]].iter() {
                out.push(Bit::from(value == 1));
            }
        }
        Ok(out)
    }

    /// Code rate (information bits per transmitted bit).
    pub fn rate() -> f64 {
        4.0 / 7.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn repetition_code_rejects_even_or_tiny_factors() {
        assert!(RepetitionCode::new(0).is_err());
        assert!(RepetitionCode::new(1).is_err());
        assert!(RepetitionCode::new(2).is_err());
        assert!(RepetitionCode::new(4).is_err());
        let code = RepetitionCode::new(5).unwrap();
        assert_eq!(code.repetitions(), 5);
        assert!((code.rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn repetition_corrects_minority_errors() {
        let code = RepetitionCode::new(3).unwrap();
        let payload = BitString::from_str01("10").unwrap();
        let encoded = code.encode(&payload);
        // Flip one bit in each group.
        let corrupted = BitString::from_str01("110001").unwrap();
        assert_eq!(encoded.to_string(), "111000");
        assert_eq!(code.decode(&corrupted).unwrap(), payload);
    }

    #[test]
    fn repetition_rejects_misaligned_input() {
        let code = RepetitionCode::new(3).unwrap();
        assert!(code
            .decode(&BitString::from_str01("1010").unwrap())
            .is_err());
    }

    #[test]
    fn hamming_corrects_any_single_error_per_codeword() {
        let payload = BitString::from_str01("1011").unwrap();
        let encoded = Hamming74::encode(&payload);
        assert_eq!(encoded.len(), 7);
        for position in 0..7 {
            let mut corrupted = BitString::new();
            for (i, bit) in encoded.iter().enumerate() {
                corrupted.push(if i == position { bit.flipped() } else { bit });
            }
            assert_eq!(
                Hamming74::decode(&corrupted).unwrap(),
                payload,
                "error at {position}"
            );
        }
    }

    #[test]
    fn hamming_pads_and_rejects_bad_lengths() {
        let payload = BitString::from_str01("101").unwrap();
        let encoded = Hamming74::encode(&payload);
        assert_eq!(encoded.len(), 7);
        let decoded = Hamming74::decode(&encoded).unwrap();
        assert_eq!(decoded.slice(0, 3), payload);
        assert_eq!(decoded.get(3), Some(Bit::Zero));
        assert!(Hamming74::decode(&BitString::from_str01("101").unwrap()).is_err());
        assert!(Hamming74::rate() > 0.5);
    }

    proptest! {
        #[test]
        fn prop_repetition_roundtrip(bits in "[01]{1,64}", reps in prop::sample::select(vec![3usize, 5, 7])) {
            let code = RepetitionCode::new(reps).unwrap();
            let payload: BitString = bits.parse().unwrap();
            prop_assert_eq!(code.decode(&code.encode(&payload)).unwrap(), payload);
        }

        #[test]
        fn prop_hamming_roundtrip(bits in "[01]{4,64}") {
            let payload: BitString = bits.parse().unwrap();
            let decoded = Hamming74::decode(&Hamming74::encode(&payload)).unwrap();
            prop_assert_eq!(decoded.slice(0, payload.len()), payload);
        }

        #[test]
        fn prop_hamming_single_error_correction(bits in "[01]{4}", flip in 0usize..7) {
            let payload: BitString = bits.parse().unwrap();
            let encoded = Hamming74::encode(&payload);
            let mut corrupted = BitString::new();
            for (i, bit) in encoded.iter().enumerate() {
                corrupted.push(if i == flip { bit.flipped() } else { bit });
            }
            prop_assert_eq!(Hamming74::decode(&corrupted).unwrap(), payload);
        }
    }
}
