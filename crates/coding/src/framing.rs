//! Frame structure: synchronization sequence + payload.
//!
//! Section V.B of the paper: before the m-bit secret, the Trojan sends an
//! n-bit pre-negotiated "synchronization sequence" (such as `10101010`). The
//! Spy accepts the following m bits as secret data only when the first n
//! received bits match the agreed sequence; otherwise it discards the round.

use mes_types::{Bit, BitString, MesError, Result};
use serde::{Deserialize, Serialize};

/// A decoded frame: the preamble that validated it and the payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    preamble: BitString,
    payload: BitString,
}

impl Frame {
    /// The synchronization sequence the frame was validated against.
    pub fn preamble(&self) -> &BitString {
        &self.preamble
    }

    /// The recovered payload.
    pub fn payload(&self) -> &BitString {
        &self.payload
    }

    /// Consumes the frame and returns the payload.
    pub fn into_payload(self) -> BitString {
        self.payload
    }
}

/// Encoder/decoder for the paper's preamble-prefixed frames.
///
/// # Examples
///
/// ```
/// use mes_coding::FrameCodec;
/// use mes_types::BitString;
///
/// let codec = FrameCodec::with_default_preamble();
/// let payload = BitString::from_bytes(b"k");
/// let wire = codec.encode(&payload);
/// assert_eq!(wire.len(), 8 + payload.len());
/// assert_eq!(codec.decode(&wire)?.payload(), &payload);
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameCodec {
    preamble: BitString,
    /// Number of preamble bit mismatches tolerated before a frame is
    /// rejected (0 reproduces the paper's exact-match rule).
    tolerance: usize,
}

impl FrameCodec {
    /// The paper's example synchronization sequence, `10101010`.
    pub const DEFAULT_PREAMBLE: &'static str = "10101010";

    /// Creates a codec with the paper's default 8-bit `10101010` preamble and
    /// exact matching.
    pub fn with_default_preamble() -> Self {
        FrameCodec {
            preamble: BitString::from_str01(Self::DEFAULT_PREAMBLE)
                .expect("constant literal is valid"),
            tolerance: 0,
        }
    }

    /// Creates a codec with a custom preamble.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::InvalidConfig`] if the preamble is empty.
    pub fn new(preamble: BitString) -> Result<Self> {
        if preamble.is_empty() {
            return Err(MesError::InvalidConfig {
                reason: "frame preamble must not be empty".into(),
            });
        }
        Ok(FrameCodec {
            preamble,
            tolerance: 0,
        })
    }

    /// Allows up to `tolerance` preamble bit errors during validation
    /// (builder style).
    pub fn with_tolerance(mut self, tolerance: usize) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// The configured preamble.
    pub fn preamble(&self) -> &BitString {
        &self.preamble
    }

    /// Length of the preamble in bits.
    pub fn preamble_len(&self) -> usize {
        self.preamble.len()
    }

    /// Prepends the preamble to a payload, producing the on-the-wire bits.
    pub fn encode(&self, payload: &BitString) -> BitString {
        let mut wire = BitString::with_capacity(self.preamble.len() + payload.len());
        wire.extend_from(&self.preamble);
        wire.extend_from(payload);
        wire
    }

    /// Validates the preamble of a received round and extracts the payload.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::FrameRecovery`] if the round is shorter than the
    /// preamble or the preamble does not match within the configured
    /// tolerance — the Spy then discards the round, as in the paper.
    pub fn decode(&self, received: &BitString) -> Result<Frame> {
        if received.len() < self.preamble.len() {
            return Err(MesError::FrameRecovery {
                reason: format!(
                    "received {} bits, shorter than the {}-bit synchronization sequence",
                    received.len(),
                    self.preamble.len()
                ),
            });
        }
        let head = received.slice(0, self.preamble.len());
        let mismatches = head.hamming_distance(&self.preamble);
        if mismatches > self.tolerance {
            return Err(MesError::FrameRecovery {
                reason: format!(
                    "synchronization sequence mismatch: {mismatches} bit(s) differ (tolerance {})",
                    self.tolerance
                ),
            });
        }
        Ok(Frame {
            preamble: head,
            payload: received.slice(self.preamble.len(), received.len()),
        })
    }

    /// Scans a long observation for the first preamble occurrence and returns
    /// the frame starting there, together with the offset at which it was
    /// found. This lets a Spy that started listening mid-round resynchronise.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::FrameRecovery`] if no preamble occurrence exists.
    pub fn scan(&self, received: &BitString) -> Result<(usize, Frame)> {
        let n = self.preamble.len();
        if received.len() < n {
            return Err(MesError::FrameRecovery {
                reason: "observation shorter than the synchronization sequence".into(),
            });
        }
        for offset in 0..=(received.len() - n) {
            let window = received.slice(offset, offset + n);
            if window.hamming_distance(&self.preamble) <= self.tolerance {
                let frame = Frame {
                    preamble: window,
                    payload: received.slice(offset + n, received.len()),
                };
                return Ok((offset, frame));
            }
        }
        Err(MesError::FrameRecovery {
            reason: "synchronization sequence not found in observation".into(),
        })
    }

    /// Splits a payload into fixed-size rounds, each framed separately — the
    /// paper's "agreed number of bits" per round.
    pub fn encode_rounds(&self, payload: &BitString, bits_per_round: usize) -> Vec<BitString> {
        if bits_per_round == 0 {
            return vec![self.encode(payload)];
        }
        let mut rounds = Vec::new();
        let mut index = 0;
        while index < payload.len() {
            let end = (index + bits_per_round).min(payload.len());
            rounds.push(self.encode(&payload.slice(index, end)));
            index = end;
        }
        if rounds.is_empty() {
            rounds.push(self.encode(payload));
        }
        rounds
    }

    /// Decodes a sequence of received rounds, concatenating the payloads of
    /// the rounds whose preamble validated and counting the discarded ones.
    pub fn decode_rounds(&self, rounds: &[BitString]) -> (BitString, usize) {
        let mut payload = BitString::new();
        let mut discarded = 0;
        for round in rounds {
            match self.decode(round) {
                Ok(frame) => payload.extend_from(frame.payload()),
                Err(_) => discarded += 1,
            }
        }
        (payload, discarded)
    }
}

impl Default for FrameCodec {
    fn default() -> Self {
        FrameCodec::with_default_preamble()
    }
}

/// Convenience: builds the alternating preamble of a given length used by the
/// paper (`1010…`).
pub fn alternating_preamble(len: usize) -> BitString {
    (0..len)
        .map(|i| if i % 2 == 0 { Bit::One } else { Bit::Zero })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip() {
        let codec = FrameCodec::with_default_preamble();
        let payload = BitString::from_str01("1100110011").unwrap();
        let wire = codec.encode(&payload);
        let frame = codec.decode(&wire).unwrap();
        assert_eq!(frame.payload(), &payload);
        assert_eq!(frame.preamble().to_string(), "10101010");
        assert_eq!(frame.clone().into_payload(), payload);
    }

    #[test]
    fn corrupted_preamble_is_discarded() {
        let codec = FrameCodec::with_default_preamble();
        let payload = BitString::from_str01("1111").unwrap();
        let mut wire = codec.encode(&payload);
        // Flip the first preamble bit.
        let mut flipped = BitString::new();
        flipped.push(wire.get(0).unwrap().flipped());
        for i in 1..wire.len() {
            flipped.push(wire.get(i).unwrap());
        }
        wire = flipped;
        assert!(codec.decode(&wire).is_err());
        // …unless a tolerance is configured.
        let lenient = FrameCodec::with_default_preamble().with_tolerance(1);
        assert_eq!(lenient.decode(&wire).unwrap().payload(), &payload);
    }

    #[test]
    fn short_rounds_are_rejected() {
        let codec = FrameCodec::with_default_preamble();
        let short = BitString::from_str01("101").unwrap();
        assert!(codec.decode(&short).is_err());
        assert!(codec.scan(&short).is_err());
    }

    #[test]
    fn empty_preamble_is_invalid() {
        assert!(FrameCodec::new(BitString::new()).is_err());
        assert!(FrameCodec::new(BitString::from_str01("1").unwrap()).is_ok());
    }

    #[test]
    fn scan_finds_offset() {
        let codec = FrameCodec::with_default_preamble();
        let payload = BitString::from_str01("0110").unwrap();
        let mut observation = BitString::from_str01("0011").unwrap();
        observation.extend_from(&codec.encode(&payload));
        let (offset, frame) = codec.scan(&observation).unwrap();
        assert_eq!(offset, 4);
        assert_eq!(frame.payload(), &payload);
    }

    #[test]
    fn scan_without_preamble_fails() {
        let codec = FrameCodec::new(BitString::from_str01("1111").unwrap()).unwrap();
        let observation = BitString::from_str01("00000000").unwrap();
        assert!(codec.scan(&observation).is_err());
    }

    #[test]
    fn rounds_split_and_reassemble() {
        let codec = FrameCodec::with_default_preamble();
        let payload = BitString::from_str01("110010101111000011").unwrap();
        let rounds = codec.encode_rounds(&payload, 8);
        assert_eq!(rounds.len(), 3);
        assert_eq!(rounds[0].len(), 16);
        assert_eq!(rounds[2].len(), 8 + 2);
        let (recovered, discarded) = codec.decode_rounds(&rounds);
        assert_eq!(recovered, payload);
        assert_eq!(discarded, 0);
    }

    #[test]
    fn rounds_with_zero_size_use_single_round() {
        let codec = FrameCodec::with_default_preamble();
        let payload = BitString::from_str01("1100").unwrap();
        let rounds = codec.encode_rounds(&payload, 0);
        assert_eq!(rounds.len(), 1);
        let empty_rounds = codec.encode_rounds(&BitString::new(), 8);
        assert_eq!(empty_rounds.len(), 1);
    }

    #[test]
    fn bad_rounds_are_counted() {
        let codec = FrameCodec::with_default_preamble();
        let good = codec.encode(&BitString::from_str01("1010").unwrap());
        let bad = BitString::from_str01("000000001010").unwrap();
        let (payload, discarded) = codec.decode_rounds(&[good, bad]);
        assert_eq!(payload.to_string(), "1010");
        assert_eq!(discarded, 1);
    }

    #[test]
    fn alternating_preamble_helper() {
        assert_eq!(alternating_preamble(6).to_string(), "101010");
        assert_eq!(alternating_preamble(0).len(), 0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_any_payload(payload in "[01]{0,128}") {
            let codec = FrameCodec::with_default_preamble();
            let payload: BitString = payload.parse().unwrap();
            let frame = codec.decode(&codec.encode(&payload)).unwrap();
            prop_assert_eq!(frame.payload(), &payload);
        }

        #[test]
        fn prop_rounds_preserve_payload(payload in "[01]{1,200}", round in 1usize..32) {
            let codec = FrameCodec::with_default_preamble();
            let payload: BitString = payload.parse().unwrap();
            let rounds = codec.encode_rounds(&payload, round);
            let (recovered, discarded) = codec.decode_rounds(&rounds);
            prop_assert_eq!(recovered, payload);
            prop_assert_eq!(discarded, 0);
        }
    }
}
