//! Multi-bit symbol encoding (Section VI of the paper).
//!
//! Instead of two wait times (one per bit value), the Trojan can agree on
//! 2^k distinct wait times and transmit k bits per constraint release. The
//! paper demonstrates 2-bit symbols with `SetEvent` delays of 15, 65, 115 and
//! 165 µs, raising the Event channel from 13.105 kb/s to ≈ 15.095 kb/s, and
//! observes that 3-bit symbols stop paying off because the largest wait times
//! grow too long.

use mes_types::{Bit, BitString, MesError, Micros, Nanos, Result};
use serde::{Deserialize, Serialize};

/// The mapping between k-bit symbols and the wait time that encodes them.
///
/// # Examples
///
/// ```
/// use mes_coding::SymbolAlphabet;
/// use mes_types::{BitString, Micros};
///
/// // The paper's 2-bit alphabet: 15, 65, 115, 165 µs.
/// let alphabet = SymbolAlphabet::evenly_spaced(2, Micros::new(15), Micros::new(50))?;
/// assert_eq!(alphabet.symbol_count(), 4);
/// assert_eq!(alphabet.duration_of(3), Micros::new(165));
///
/// let payload = BitString::from_str01("0111")?;
/// let symbols = alphabet.encode(&payload)?;
/// assert_eq!(symbols, vec![1, 3]);
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolAlphabet {
    bits_per_symbol: u8,
    durations: Vec<Micros>,
}

impl SymbolAlphabet {
    /// Creates an alphabet with explicitly listed durations (one per symbol,
    /// in symbol-value order).
    ///
    /// # Errors
    ///
    /// Returns [`MesError::InvalidConfig`] if the number of durations is not
    /// `2^bits_per_symbol`, if `bits_per_symbol` is 0 or larger than 8, or if
    /// the durations are not strictly increasing.
    pub fn new(bits_per_symbol: u8, durations: Vec<Micros>) -> Result<Self> {
        if bits_per_symbol == 0 || bits_per_symbol > 8 {
            return Err(MesError::InvalidConfig {
                reason: format!("bits_per_symbol must be in 1..=8, got {bits_per_symbol}"),
            });
        }
        let expected = 1usize << bits_per_symbol;
        if durations.len() != expected {
            return Err(MesError::InvalidConfig {
                reason: format!(
                    "{bits_per_symbol}-bit symbols need {expected} durations, got {}",
                    durations.len()
                ),
            });
        }
        if durations.windows(2).any(|w| w[0] >= w[1]) {
            return Err(MesError::InvalidConfig {
                reason: "symbol durations must be strictly increasing".into(),
            });
        }
        Ok(SymbolAlphabet {
            bits_per_symbol,
            durations,
        })
    }

    /// Creates an alphabet whose durations start at `base` and grow by `step`
    /// per symbol — the construction the paper uses (15 µs + n·50 µs).
    ///
    /// # Errors
    ///
    /// Returns [`MesError::InvalidConfig`] for a zero step or an unsupported
    /// symbol width.
    pub fn evenly_spaced(bits_per_symbol: u8, base: Micros, step: Micros) -> Result<Self> {
        if step == Micros::ZERO {
            return Err(MesError::InvalidConfig {
                reason: "symbol spacing must be positive".into(),
            });
        }
        if bits_per_symbol == 0 || bits_per_symbol > 8 {
            return Err(MesError::InvalidConfig {
                reason: format!("bits_per_symbol must be in 1..=8, got {bits_per_symbol}"),
            });
        }
        let count = 1usize << bits_per_symbol;
        let durations = (0..count as u64).map(|i| base + step * i).collect();
        SymbolAlphabet::new(bits_per_symbol, durations)
    }

    /// The paper's exact 2-bit alphabet (15, 65, 115, 165 µs).
    pub fn paper_two_bit() -> Self {
        SymbolAlphabet::evenly_spaced(2, Micros::new(15), Micros::new(50))
            .expect("constants are valid")
    }

    /// Bits carried by each symbol.
    pub fn bits_per_symbol(&self) -> u8 {
        self.bits_per_symbol
    }

    /// Number of distinct symbols.
    pub fn symbol_count(&self) -> usize {
        self.durations.len()
    }

    /// The wait duration that encodes symbol `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the alphabet.
    pub fn duration_of(&self, value: usize) -> Micros {
        self.durations[value]
    }

    /// All durations in symbol order.
    pub fn durations(&self) -> &[Micros] {
        &self.durations
    }

    /// The mean symbol duration, used for throughput estimates.
    pub fn mean_duration(&self) -> Micros {
        let total: u64 = self.durations.iter().map(|d| d.as_u64()).sum();
        Micros::new(total / self.durations.len() as u64)
    }

    /// Encodes a bitstring into symbol values, most-significant bit first.
    /// The payload is zero-padded to a whole number of symbols.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::InvalidConfig`] if the payload is empty.
    pub fn encode(&self, payload: &BitString) -> Result<Vec<usize>> {
        if payload.is_empty() {
            return Err(MesError::InvalidConfig {
                reason: "cannot encode an empty payload".into(),
            });
        }
        let k = self.bits_per_symbol as usize;
        let mut symbols = Vec::with_capacity(payload.len().div_ceil(k));
        let mut index = 0;
        while index < payload.len() {
            let mut value = 0usize;
            for offset in 0..k {
                value <<= 1;
                if let Some(bit) = payload.get(index + offset) {
                    if bit.is_one() {
                        value |= 1;
                    }
                }
            }
            symbols.push(value);
            index += k;
        }
        Ok(symbols)
    }

    /// Decodes symbol values back into bits (most-significant bit first).
    pub fn decode_symbols(&self, symbols: &[usize]) -> BitString {
        let k = self.bits_per_symbol as usize;
        let mut bits = BitString::with_capacity(symbols.len() * k);
        for &symbol in symbols {
            for offset in (0..k).rev() {
                bits.push(Bit::from((symbol >> offset) & 1 == 1));
            }
        }
        bits
    }
}

/// Maps observed latencies back to symbol values by nearest expected latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymbolDecoder {
    alphabet: SymbolAlphabet,
    /// Fixed per-symbol latency offset (protocol overhead) subtracted before
    /// matching, in nanoseconds.
    offset: Nanos,
}

impl SymbolDecoder {
    /// Creates a decoder for an alphabet with a known protocol-overhead
    /// offset (the latency observed on top of the programmed wait).
    pub fn new(alphabet: SymbolAlphabet, offset: Nanos) -> Self {
        SymbolDecoder { alphabet, offset }
    }

    /// The alphabet being decoded.
    pub fn alphabet(&self) -> &SymbolAlphabet {
        &self.alphabet
    }

    /// Decodes one latency to the nearest symbol value.
    pub fn decode(&self, latency: Nanos) -> usize {
        let corrected = latency.saturating_sub(self.offset).as_micros_f64();
        let mut best = 0usize;
        let mut best_distance = f64::INFINITY;
        for (value, duration) in self.alphabet.durations().iter().enumerate() {
            let distance = (corrected - duration.as_f64()).abs();
            if distance < best_distance {
                best_distance = distance;
                best = value;
            }
        }
        best
    }

    /// Decodes a sequence of latencies into bits.
    pub fn decode_all(&self, latencies: &[Nanos]) -> BitString {
        let symbols: Vec<usize> = latencies.iter().map(|&l| self.decode(l)).collect();
        self.alphabet.decode_symbols(&symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_alphabet_matches_section_six() {
        let alphabet = SymbolAlphabet::paper_two_bit();
        assert_eq!(alphabet.bits_per_symbol(), 2);
        assert_eq!(
            alphabet.durations(),
            &[
                Micros::new(15),
                Micros::new(65),
                Micros::new(115),
                Micros::new(165)
            ]
        );
        assert_eq!(alphabet.mean_duration(), Micros::new(90));
    }

    #[test]
    fn invalid_alphabets_are_rejected() {
        assert!(SymbolAlphabet::new(0, vec![]).is_err());
        assert!(SymbolAlphabet::new(9, vec![]).is_err());
        assert!(SymbolAlphabet::new(1, vec![Micros::new(10)]).is_err());
        assert!(SymbolAlphabet::new(1, vec![Micros::new(10), Micros::new(10)]).is_err());
        assert!(SymbolAlphabet::new(1, vec![Micros::new(20), Micros::new(10)]).is_err());
        assert!(SymbolAlphabet::evenly_spaced(2, Micros::new(15), Micros::ZERO).is_err());
        assert!(SymbolAlphabet::evenly_spaced(0, Micros::new(15), Micros::new(50)).is_err());
    }

    #[test]
    fn encode_packs_msb_first() {
        let alphabet = SymbolAlphabet::paper_two_bit();
        let payload = BitString::from_str01("00011011").unwrap();
        assert_eq!(alphabet.encode(&payload).unwrap(), vec![0, 1, 2, 3]);
        assert!(alphabet.encode(&BitString::new()).is_err());
    }

    #[test]
    fn encode_pads_trailing_bits_with_zero() {
        let alphabet = SymbolAlphabet::paper_two_bit();
        let payload = BitString::from_str01("111").unwrap();
        // "11" -> 3, "1<pad 0>" -> 2
        assert_eq!(alphabet.encode(&payload).unwrap(), vec![3, 2]);
    }

    #[test]
    fn decode_symbols_roundtrip() {
        let alphabet = SymbolAlphabet::paper_two_bit();
        let payload = BitString::from_str01("01101100").unwrap();
        let symbols = alphabet.encode(&payload).unwrap();
        assert_eq!(alphabet.decode_symbols(&symbols), payload);
    }

    #[test]
    fn symbol_decoder_picks_nearest_level() {
        let decoder = SymbolDecoder::new(SymbolAlphabet::paper_two_bit(), Nanos::new(0));
        assert_eq!(decoder.decode(Micros::new(17).to_nanos()), 0);
        assert_eq!(decoder.decode(Micros::new(60).to_nanos()), 1);
        assert_eq!(decoder.decode(Micros::new(118).to_nanos()), 2);
        assert_eq!(decoder.decode(Micros::new(400).to_nanos()), 3);
        assert_eq!(decoder.alphabet().symbol_count(), 4);
    }

    #[test]
    fn symbol_decoder_subtracts_protocol_offset() {
        let offset = Micros::new(30).to_nanos();
        let decoder = SymbolDecoder::new(SymbolAlphabet::paper_two_bit(), offset);
        // Observed latency = programmed 65us + 30us overhead.
        assert_eq!(decoder.decode(Micros::new(95).to_nanos()), 1);
    }

    #[test]
    fn decode_all_roundtrips_bits() {
        let alphabet = SymbolAlphabet::paper_two_bit();
        let decoder = SymbolDecoder::new(alphabet.clone(), Nanos::new(0));
        let payload = BitString::from_str01("10110100").unwrap();
        let latencies: Vec<Nanos> = alphabet
            .encode(&payload)
            .unwrap()
            .into_iter()
            .map(|s| alphabet.duration_of(s).to_nanos())
            .collect();
        assert_eq!(decoder.decode_all(&latencies), payload);
    }

    proptest! {
        #[test]
        fn prop_symbol_roundtrip(bits in "[01]{2,64}", k in 1u8..=4) {
            let alphabet = SymbolAlphabet::evenly_spaced(k, Micros::new(15), Micros::new(50)).unwrap();
            let payload: BitString = bits.parse().unwrap();
            let symbols = alphabet.encode(&payload).unwrap();
            let decoded = alphabet.decode_symbols(&symbols);
            // Round-trip is exact up to zero padding.
            prop_assert_eq!(decoded.slice(0, payload.len()), payload.clone());
            for extra in payload.len()..decoded.len() {
                prop_assert_eq!(decoded.get(extra), Some(mes_types::Bit::Zero));
            }
        }

        #[test]
        fn prop_nearest_level_is_exact_on_clean_latencies(k in 1u8..=3, symbol in 0usize..8) {
            let alphabet = SymbolAlphabet::evenly_spaced(k, Micros::new(15), Micros::new(50)).unwrap();
            prop_assume!(symbol < alphabet.symbol_count());
            let decoder = SymbolDecoder::new(alphabet.clone(), Nanos::new(0));
            let latency = alphabet.duration_of(symbol).to_nanos();
            prop_assert_eq!(decoder.decode(latency), symbol);
        }
    }
}
