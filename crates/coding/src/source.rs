//! Deterministic payload generators for experiments.
//!
//! The paper evaluates its channels on long random bitstreams; the
//! [`BitSource`] reproduces that workload deterministically so a BER measured
//! at seed *s* is exactly reproducible.

use mes_types::{Bit, BitString};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded generator of experiment payloads.
///
/// # Examples
///
/// ```
/// use mes_coding::BitSource;
///
/// let mut source = BitSource::new(1234);
/// let a = source.random_bits(64);
/// let b = BitSource::new(1234).random_bits(64);
/// assert_eq!(a, b); // same seed, same payload
/// assert_eq!(a.len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct BitSource {
    rng: StdRng,
}

impl BitSource {
    /// Creates a source from a seed.
    pub fn new(seed: u64) -> Self {
        BitSource {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws `count` independent uniform bits.
    pub fn random_bits(&mut self, count: usize) -> BitString {
        (0..count)
            .map(|_| Bit::from(self.rng.gen::<bool>()))
            .collect()
    }

    /// Draws `count` bits where `1` appears with probability `p_one`.
    pub fn biased_bits(&mut self, count: usize, p_one: f64) -> BitString {
        let p = p_one.clamp(0.0, 1.0);
        (0..count)
            .map(|_| Bit::from(self.rng.gen::<f64>() < p))
            .collect()
    }

    /// The alternating `1010…` pattern of the given length (the paper's
    /// synchronization sequence shape).
    pub fn alternating(count: usize) -> BitString {
        (0..count)
            .map(|i| if i % 2 == 0 { Bit::One } else { Bit::Zero })
            .collect()
    }

    /// The proof-of-concept sequence transmitted in Fig. 8 of the paper.
    pub fn figure8_sequence() -> BitString {
        BitString::from_str01("11010010001100101001").expect("constant literal is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_bits_are_reproducible() {
        let a = BitSource::new(7).random_bits(256);
        let b = BitSource::new(7).random_bits(256);
        let c = BitSource::new(8).random_bits(256);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_bits_are_roughly_balanced() {
        let bits = BitSource::new(99).random_bits(10_000);
        let ones = bits.count_ones();
        assert!(ones > 4_700 && ones < 5_300, "ones {ones}");
    }

    #[test]
    fn biased_bits_respect_probability() {
        let bits = BitSource::new(5).biased_bits(10_000, 0.9);
        assert!(bits.count_ones() > 8_700);
        let none = BitSource::new(5).biased_bits(100, 0.0);
        assert_eq!(none.count_ones(), 0);
        let all = BitSource::new(5).biased_bits(100, 2.0);
        assert_eq!(all.count_ones(), 100);
    }

    #[test]
    fn alternating_pattern() {
        assert_eq!(BitSource::alternating(8).to_string(), "10101010");
        assert_eq!(BitSource::alternating(3).to_string(), "101");
        assert_eq!(BitSource::alternating(0).len(), 0);
    }

    #[test]
    fn figure8_sequence_matches_paper() {
        let seq = BitSource::figure8_sequence();
        assert_eq!(seq.len(), 20);
        assert_eq!(seq.to_string(), "11010010001100101001");
    }
}
