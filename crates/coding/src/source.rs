//! Deterministic payload generators for experiments.
//!
//! The paper evaluates its channels on long random bitstreams; the
//! [`BitSource`] reproduces that workload deterministically so a BER measured
//! at seed *s* is exactly reproducible.

use mes_types::{Bit, BitString, MesError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A seeded generator of experiment payloads.
///
/// # Examples
///
/// ```
/// use mes_coding::BitSource;
///
/// let mut source = BitSource::new(1234);
/// let a = source.random_bits(64);
/// let b = BitSource::new(1234).random_bits(64);
/// assert_eq!(a, b); // same seed, same payload
/// assert_eq!(a.len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct BitSource {
    rng: StdRng,
}

impl BitSource {
    /// Creates a source from a seed.
    pub fn new(seed: u64) -> Self {
        BitSource {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws `count` independent uniform bits.
    pub fn random_bits(&mut self, count: usize) -> BitString {
        (0..count)
            .map(|_| Bit::from(self.rng.gen::<bool>()))
            .collect()
    }

    /// Draws `count` bits where `1` appears with probability `p_one`.
    pub fn biased_bits(&mut self, count: usize, p_one: f64) -> BitString {
        let p = p_one.clamp(0.0, 1.0);
        (0..count)
            .map(|_| Bit::from(self.rng.gen::<f64>() < p))
            .collect()
    }

    /// The alternating `1010…` pattern of the given length (the paper's
    /// synchronization sequence shape).
    pub fn alternating(count: usize) -> BitString {
        (0..count)
            .map(|i| if i % 2 == 0 { Bit::One } else { Bit::Zero })
            .collect()
    }

    /// The proof-of-concept sequence transmitted in Fig. 8 of the paper.
    pub fn figure8_sequence() -> BitString {
        BitString::from_str01("11010010001100101001").expect("constant literal is valid")
    }
}

/// How an experiment point sources its payload bits — the serializable
/// counterpart of calling [`BitSource`] by hand, used by
/// `mes_core::experiment`'s `ExperimentSpec` so a grid point's payload is
/// reproducible from the spec alone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PayloadSpec {
    /// `bits` uniform random bits drawn from the point's seed
    /// (`BitSource::new(seed).random_bits(bits)`), the paper's standard
    /// workload.
    Random {
        /// Number of payload bits.
        bits: usize,
    },
    /// A literal `0`/`1` string transmitted verbatim (seed-independent).
    Fixed {
        /// The payload as a `0`/`1` string.
        bits: String,
    },
    /// The paper's Fig. 8 proof-of-concept sequence
    /// (`11010010001100101001`).
    Figure8,
}

impl PayloadSpec {
    /// Materializes the payload for a point seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::ParseBits`] for a `Fixed` literal containing a
    /// character other than `0`/`1`, and [`MesError::InvalidConfig`] for an
    /// empty payload.
    pub fn materialize(&self, seed: u64) -> Result<BitString> {
        let payload = match self {
            PayloadSpec::Random { bits } => BitSource::new(seed).random_bits(*bits),
            PayloadSpec::Fixed { bits } => BitString::from_str01(bits)?,
            PayloadSpec::Figure8 => BitSource::figure8_sequence(),
        };
        if payload.is_empty() {
            return Err(MesError::InvalidConfig {
                reason: "a payload spec must produce at least one bit".into(),
            });
        }
        Ok(payload)
    }

    /// The number of bits the payload will have.
    pub fn len(&self) -> usize {
        match self {
            PayloadSpec::Random { bits } => *bits,
            PayloadSpec::Fixed { bits } => bits.len(),
            PayloadSpec::Figure8 => 20,
        }
    }

    /// Whether the payload would be empty (and therefore rejected).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_bits_are_reproducible() {
        let a = BitSource::new(7).random_bits(256);
        let b = BitSource::new(7).random_bits(256);
        let c = BitSource::new(8).random_bits(256);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_bits_are_roughly_balanced() {
        let bits = BitSource::new(99).random_bits(10_000);
        let ones = bits.count_ones();
        assert!(ones > 4_700 && ones < 5_300, "ones {ones}");
    }

    #[test]
    fn biased_bits_respect_probability() {
        let bits = BitSource::new(5).biased_bits(10_000, 0.9);
        assert!(bits.count_ones() > 8_700);
        let none = BitSource::new(5).biased_bits(100, 0.0);
        assert_eq!(none.count_ones(), 0);
        let all = BitSource::new(5).biased_bits(100, 2.0);
        assert_eq!(all.count_ones(), 100);
    }

    #[test]
    fn alternating_pattern() {
        assert_eq!(BitSource::alternating(8).to_string(), "10101010");
        assert_eq!(BitSource::alternating(3).to_string(), "101");
        assert_eq!(BitSource::alternating(0).len(), 0);
    }

    #[test]
    fn payload_specs_materialize_reproducibly() {
        let random = PayloadSpec::Random { bits: 64 };
        assert_eq!(
            random.materialize(9).unwrap(),
            BitSource::new(9).random_bits(64)
        );
        assert_eq!(random.len(), 64);
        assert!(!random.is_empty());

        let fixed = PayloadSpec::Fixed {
            bits: "1010".into(),
        };
        assert_eq!(fixed.materialize(1).unwrap(), fixed.materialize(2).unwrap());
        assert_eq!(fixed.len(), 4);

        assert_eq!(
            PayloadSpec::Figure8.materialize(0).unwrap(),
            BitSource::figure8_sequence()
        );
        assert_eq!(PayloadSpec::Figure8.len(), 20);

        assert!(PayloadSpec::Random { bits: 0 }.materialize(1).is_err());
        assert!(PayloadSpec::Fixed { bits: "10x".into() }
            .materialize(1)
            .is_err());
        assert!(PayloadSpec::Fixed {
            bits: String::new()
        }
        .is_empty());
    }

    #[test]
    fn figure8_sequence_matches_paper() {
        let seq = BitSource::figure8_sequence();
        assert_eq!(seq.len(), 20);
        assert_eq!(seq.to_string(), "11010010001100101001");
    }
}
