//! Structural fingerprinting: a deterministic 64-bit digest of any
//! [`Hash`]-able value.
//!
//! The experiment cache keys every executed round by
//! `(profile, plan, seed)` fingerprints. Those used to be computed by
//! formatting the values' `Debug` representation into an FNV fold — correct,
//! but a 20 000-bit plan renders to hundreds of kilobytes of text per
//! lookup. [`fingerprint_of`] instead drives the value's structural
//! [`Hash`] implementation through [`Fnv64`], visiting every field without
//! materializing a single byte of text (and without allocating at all),
//! which is what lets warm sweep loops compute cache keys per round.
//!
//! The digest is deterministic for a given build (no per-process random
//! state, unlike [`std::collections::HashMap`]'s default hasher), so equal
//! values always collide into the same key across threads and submissions
//! of one process — the property the observation cache relies on.

use std::hash::{Hash, Hasher};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a [`Hasher`] with no per-process keying.
///
/// # Examples
///
/// ```
/// use mes_types::{fingerprint_of, Fnv64};
/// use std::hash::{Hash, Hasher};
///
/// let mut hasher = Fnv64::new();
/// 42u64.hash(&mut hasher);
/// assert_eq!(hasher.finish(), fingerprint_of(&42u64));
/// assert_ne!(fingerprint_of(&42u64), fingerprint_of(&43u64));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// Creates a hasher at the FNV-1a offset basis.
    pub const fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Hasher for Fnv64 {
    fn write(&mut self, bytes: &[u8]) {
        for byte in bytes {
            self.state ^= u64::from(*byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// The structural fingerprint of a value: its [`Hash`] stream folded through
/// [`Fnv64`]. Allocation-free; equal values always produce equal
/// fingerprints within one build.
pub fn fingerprint_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = Fnv64::new();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_share_a_fingerprint() {
        let a = vec![1u64, 2, 3];
        let b = vec![1u64, 2, 3];
        assert_eq!(fingerprint_of(&a), fingerprint_of(&b));
    }

    #[test]
    fn distinct_values_differ() {
        assert_ne!(fingerprint_of(&[1u8, 2]), fingerprint_of(&[2u8, 1]));
        assert_ne!(fingerprint_of("a"), fingerprint_of("b"));
        assert_ne!(fingerprint_of(&Some(0u8)), fingerprint_of(&None::<u8>));
    }

    #[test]
    fn fingerprints_are_stable_across_hashers() {
        // Two independent hasher instances over the same stream agree — the
        // determinism HashMap's RandomState deliberately lacks.
        let value = (7u32, String::from("mes"), vec![true, false]);
        assert_eq!(fingerprint_of(&value), fingerprint_of(&value));
    }

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(Fnv64::new().finish(), FNV_OFFSET);
        assert_eq!(Fnv64::default().finish(), FNV_OFFSET);
    }
}
