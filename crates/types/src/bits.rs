//! Bits and bitstrings exchanged over the covert channels.

use crate::error::MesError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;
use std::str::FromStr;

/// A single transmitted bit.
///
/// # Examples
///
/// ```
/// use mes_types::Bit;
///
/// assert_eq!(Bit::from(true), Bit::One);
/// assert_eq!(Bit::One.flipped(), Bit::Zero);
/// assert_eq!(u8::from(Bit::One), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Bit {
    /// Logical `0` — short constraint time on the wire.
    Zero,
    /// Logical `1` — long constraint time on the wire.
    One,
}

impl Bit {
    /// Returns the opposite bit.
    pub fn flipped(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }

    /// Returns `true` for [`Bit::One`].
    pub fn is_one(self) -> bool {
        matches!(self, Bit::One)
    }

    /// Returns `true` for [`Bit::Zero`].
    pub fn is_zero(self) -> bool {
        matches!(self, Bit::Zero)
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Self {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl From<Bit> for bool {
    fn from(b: Bit) -> Self {
        b.is_one()
    }
}

impl From<Bit> for u8 {
    fn from(b: Bit) -> Self {
        match b {
            Bit::Zero => 0,
            Bit::One => 1,
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", u8::from(*self))
    }
}

/// An ordered sequence of [`Bit`]s: the payloads, preambles and recovered
/// keys moved across a covert channel.
///
/// # Examples
///
/// ```
/// use mes_types::{Bit, BitString};
///
/// let key = BitString::from_bytes(b"K");
/// assert_eq!(key.len(), 8);
/// assert_eq!(key.to_bytes(), b"K");
///
/// let sync: BitString = "10101010".parse()?;
/// assert_eq!(sync.count_ones(), 4);
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitString {
    bits: Vec<Bit>,
}

impl BitString {
    /// Creates an empty bitstring.
    pub fn new() -> Self {
        BitString::default()
    }

    /// Creates a bitstring with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BitString {
            bits: Vec::with_capacity(capacity),
        }
    }

    /// Parses a string of `'0'`/`'1'` characters.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::ParseBits`] if any character is not `0` or `1`.
    pub fn from_str01(s: &str) -> Result<Self, MesError> {
        let mut bits = Vec::with_capacity(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => bits.push(Bit::Zero),
                '1' => bits.push(Bit::One),
                other => {
                    return Err(MesError::ParseBits {
                        position: i,
                        character: other,
                    })
                }
            }
        }
        Ok(BitString { bits })
    }

    /// Builds a bitstring from bytes, most-significant bit first.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut bits = Vec::with_capacity(bytes.len() * 8);
        for &byte in bytes {
            for shift in (0..8).rev() {
                bits.push(Bit::from((byte >> shift) & 1 == 1));
            }
        }
        BitString { bits }
    }

    /// Packs the bits back into bytes, most-significant bit first.
    ///
    /// Trailing bits that do not fill a whole byte are dropped, mirroring the
    /// behaviour of a receiver that only forwards complete bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.bits
            .chunks_exact(8)
            .map(|chunk| {
                chunk
                    .iter()
                    .fold(0u8, |acc, &bit| (acc << 1) | u8::from(bit))
            })
            .collect()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the bitstring is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Returns the bit at `index`, if any.
    pub fn get(&self, index: usize) -> Option<Bit> {
        self.bits.get(index).copied()
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: Bit) {
        self.bits.push(bit);
    }

    /// Appends every bit of `other`.
    pub fn extend_from(&mut self, other: &BitString) {
        self.bits.extend_from_slice(&other.bits);
    }

    /// Returns the bits as a slice.
    pub fn as_slice(&self) -> &[Bit] {
        &self.bits
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Bit>> {
        self.bits.iter().copied()
    }

    /// Number of `1` bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().filter(|b| b.is_one()).count()
    }

    /// Number of `0` bits.
    pub fn count_zeros(&self) -> usize {
        self.len() - self.count_ones()
    }

    /// Returns a sub-range as a new bitstring.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> BitString {
        BitString {
            bits: self.bits[start..end].to_vec(),
        }
    }

    /// Hamming distance to `other`, counting positions beyond the shorter
    /// string as errors. This is the definition used for BER accounting when
    /// a receiver drops or duplicates bits.
    pub fn hamming_distance(&self, other: &BitString) -> usize {
        let common = self.len().min(other.len());
        let differing = self
            .bits
            .iter()
            .zip(other.bits.iter())
            .filter(|(a, b)| a != b)
            .count();
        differing + (self.len().max(other.len()) - common)
    }

    /// Renders the bits as a `'0'`/`'1'` string.
    pub fn to_string01(&self) -> String {
        self.bits
            .iter()
            .map(|b| char::from(b'0' + u8::from(*b)))
            .collect()
    }
}

impl Index<usize> for BitString {
    type Output = Bit;
    fn index(&self, index: usize) -> &Bit {
        &self.bits[index]
    }
}

impl FromIterator<Bit> for BitString {
    fn from_iter<I: IntoIterator<Item = Bit>>(iter: I) -> Self {
        BitString {
            bits: iter.into_iter().collect(),
        }
    }
}

impl Extend<Bit> for BitString {
    fn extend<I: IntoIterator<Item = Bit>>(&mut self, iter: I) {
        self.bits.extend(iter);
    }
}

impl IntoIterator for BitString {
    type Item = Bit;
    type IntoIter = std::vec::IntoIter<Bit>;
    fn into_iter(self) -> Self::IntoIter {
        self.bits.into_iter()
    }
}

impl<'a> IntoIterator for &'a BitString {
    type Item = Bit;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Bit>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl From<Vec<Bit>> for BitString {
    fn from(bits: Vec<Bit>) -> Self {
        BitString { bits }
    }
}

impl FromStr for BitString {
    type Err = MesError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BitString::from_str01(s)
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string01())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let s = "110100100011001010";
        let bits = BitString::from_str01(s).unwrap();
        assert_eq!(bits.to_string(), s);
        assert_eq!(bits.len(), s.len());
    }

    #[test]
    fn parse_rejects_invalid_characters() {
        let err = BitString::from_str01("10x1").unwrap_err();
        match err {
            MesError::ParseBits {
                position,
                character,
            } => {
                assert_eq!(position, 2);
                assert_eq!(character, 'x');
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let data = b"secret key";
        let bits = BitString::from_bytes(data);
        assert_eq!(bits.len(), data.len() * 8);
        assert_eq!(bits.to_bytes(), data);
    }

    #[test]
    fn hamming_distance_counts_length_mismatch() {
        let a = BitString::from_str01("1010").unwrap();
        let b = BitString::from_str01("1001").unwrap();
        assert_eq!(a.hamming_distance(&b), 2);
        let c = BitString::from_str01("10").unwrap();
        assert_eq!(a.hamming_distance(&c), 2);
        assert_eq!(c.hamming_distance(&a), 2);
    }

    #[test]
    fn counting_and_slicing() {
        let bits = BitString::from_str01("1101001").unwrap();
        assert_eq!(bits.count_ones(), 4);
        assert_eq!(bits.count_zeros(), 3);
        assert_eq!(bits.slice(1, 4).to_string(), "101");
        assert_eq!(bits[0], Bit::One);
        assert_eq!(bits.get(99), None);
    }

    #[test]
    fn bit_conversions() {
        assert_eq!(Bit::from(false), Bit::Zero);
        assert!(bool::from(Bit::One));
        assert_eq!(Bit::Zero.flipped(), Bit::One);
        assert!(Bit::Zero.is_zero());
        assert!(Bit::One.is_one());
        assert_eq!(Bit::One.to_string(), "1");
    }

    #[test]
    fn collect_and_extend() {
        let mut bits: BitString = [Bit::One, Bit::Zero].into_iter().collect();
        bits.extend([Bit::One]);
        bits.push(Bit::Zero);
        let other = BitString::from_str01("11").unwrap();
        bits.extend_from(&other);
        assert_eq!(bits.to_string(), "101011");
        let collected: Vec<Bit> = (&bits).into_iter().collect();
        assert_eq!(collected.len(), 6);
    }

    proptest! {
        #[test]
        fn prop_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let bits = BitString::from_bytes(&data);
            prop_assert_eq!(bits.to_bytes(), data);
        }

        #[test]
        fn prop_string_roundtrip(s in "[01]{0,256}") {
            let bits: BitString = s.parse().unwrap();
            prop_assert_eq!(bits.to_string(), s);
        }

        #[test]
        fn prop_hamming_distance_symmetric(a in "[01]{0,64}", b in "[01]{0,64}") {
            let a: BitString = a.parse().unwrap();
            let b: BitString = b.parse().unwrap();
            prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
            prop_assert_eq!(a.hamming_distance(&a), 0);
        }
    }
}
