//! Shared vocabulary for the MES-Attacks reproduction.
//!
//! This crate defines the types every other crate in the workspace speaks:
//! bits and bitstrings, the six mutual-exclusion/synchronization mechanisms
//! (MESMs) the paper attacks, deployment scenarios, microsecond time
//! newtypes, identifiers used by the OS simulator and a common error type.
//!
//! # Examples
//!
//! ```
//! use mes_types::{Bit, BitString, Mechanism, Scenario};
//!
//! let bits = BitString::from_str01("10110")?;
//! assert_eq!(bits.len(), 5);
//! assert_eq!(bits.get(0), Some(Bit::One));
//! assert!(Mechanism::Flock.is_contention_based());
//! assert!(Scenario::CrossVm.is_isolated());
//! # Ok::<(), mes_types::MesError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod error;
mod fingerprint;
mod ids;
mod mechanism;
mod params;
mod scenario;
mod time;

pub use bits::{Bit, BitString};
pub use error::{MesError, Result};
pub use fingerprint::{fingerprint_of, Fnv64};
pub use ids::{FdId, FileId, HandleId, InodeId, ObjectId, ProcessId};
pub use mechanism::{ChannelFamily, Mechanism, OsKind};
pub use params::ChannelTiming;
pub use scenario::Scenario;
pub use time::{Micros, Nanos};
