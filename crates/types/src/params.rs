//! Channel timing parameters (`tw0`, `ti`, `tt1`, `tt0`).
//!
//! The paper controls every channel with two microsecond-level parameters:
//!
//! * cooperation channels (Event, Timer): `tw0`, the wait before signalling a
//!   `0`, and `ti`, the extra interval added when signalling a `1`;
//! * contention channels (flock, FileLockEX, Mutex, Semaphore): `tt1`, how
//!   long the Trojan occupies the resource for a `1`, and `tt0`, how long it
//!   sleeps for a `0`.

use crate::error::MesError;
use crate::time::Micros;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Timing parameters of a channel, matching the "Timeset" rows of
/// Tables IV–VI in the paper.
///
/// # Examples
///
/// ```
/// use mes_types::{ChannelTiming, Micros};
///
/// let event = ChannelTiming::cooperation(Micros::new(15), Micros::new(65));
/// assert_eq!(event.zero_duration(), Micros::new(15));
/// assert_eq!(event.one_duration(), Micros::new(80));
///
/// let flock = ChannelTiming::contention(Micros::new(160), Micros::new(60));
/// assert_eq!(flock.one_duration(), Micros::new(160));
/// assert_eq!(flock.mean_symbol_duration(), Micros::new(110));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelTiming {
    /// Synchronization-based channels (Protocol 2): the Trojan always
    /// signals, but waits `tw0` for a `0` and `tw0 + ti` for a `1`.
    Cooperation {
        /// Wait before signalling a `0`.
        tw0: Micros,
        /// Additional interval distinguishing a `1` from a `0`.
        ti: Micros,
    },
    /// Mutual-exclusion-based channels (Protocol 1): the Trojan occupies the
    /// resource for `tt1` to send a `1` and sleeps `tt0` to send a `0`.
    Contention {
        /// Resource occupancy time encoding a `1`.
        tt1: Micros,
        /// Sleep time encoding a `0`.
        tt0: Micros,
    },
}

impl ChannelTiming {
    /// Creates cooperation-channel timing.
    pub const fn cooperation(tw0: Micros, ti: Micros) -> Self {
        ChannelTiming::Cooperation { tw0, ti }
    }

    /// Creates contention-channel timing.
    pub const fn contention(tt1: Micros, tt0: Micros) -> Self {
        ChannelTiming::Contention { tt1, tt0 }
    }

    /// The nominal constraint duration encoding a `0`.
    pub fn zero_duration(&self) -> Micros {
        match *self {
            ChannelTiming::Cooperation { tw0, .. } => tw0,
            ChannelTiming::Contention { tt0, .. } => tt0,
        }
    }

    /// The nominal constraint duration encoding a `1`.
    pub fn one_duration(&self) -> Micros {
        match *self {
            ChannelTiming::Cooperation { tw0, ti } => tw0 + ti,
            ChannelTiming::Contention { tt1, .. } => tt1,
        }
    }

    /// The timing margin separating the two symbols (half of it is the
    /// decision distance from the midpoint threshold).
    pub fn margin(&self) -> Micros {
        self.one_duration() - self.zero_duration()
    }

    /// Mean of the two symbol durations, assuming equiprobable bits.
    pub fn mean_symbol_duration(&self) -> Micros {
        (self.zero_duration() + self.one_duration()) / 2
    }

    /// Validates the parameters: both symbols need a positive duration and a
    /// positive margin, otherwise the Spy cannot tell them apart.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::InvalidTiming`] describing the violated
    /// constraint.
    pub fn validate(&self) -> Result<(), MesError> {
        match *self {
            ChannelTiming::Cooperation { tw0, ti } => {
                if tw0 == Micros::ZERO {
                    return Err(MesError::InvalidTiming {
                        parameter: "tw0",
                        reason: "wait time for '0' must be positive".into(),
                    });
                }
                if ti == Micros::ZERO {
                    return Err(MesError::InvalidTiming {
                        parameter: "ti",
                        reason: "interval between '0' and '1' must be positive".into(),
                    });
                }
            }
            ChannelTiming::Contention { tt1, tt0 } => {
                if tt0 == Micros::ZERO {
                    return Err(MesError::InvalidTiming {
                        parameter: "tt0",
                        reason: "sleep time for '0' must be positive".into(),
                    });
                }
                if tt1 <= tt0 {
                    return Err(MesError::InvalidTiming {
                        parameter: "tt1",
                        reason: format!(
                            "occupancy time for '1' ({tt1}) must exceed the sleep time for '0' ({tt0})"
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for ChannelTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ChannelTiming::Cooperation { tw0, ti } => write!(f, "tw0={tw0}, ti={ti}"),
            ChannelTiming::Contention { tt1, tt0 } => write!(f, "tt1={tt1}, tt0={tt0}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_and_margin() {
        let event = ChannelTiming::cooperation(Micros::new(15), Micros::new(65));
        assert_eq!(event.margin(), Micros::new(65));
        assert_eq!(event.mean_symbol_duration(), Micros::new(47));
        let flock = ChannelTiming::contention(Micros::new(160), Micros::new(60));
        assert_eq!(flock.margin(), Micros::new(100));
        assert_eq!(flock.zero_duration(), Micros::new(60));
    }

    #[test]
    fn validation_rules() {
        assert!(ChannelTiming::cooperation(Micros::new(15), Micros::new(65))
            .validate()
            .is_ok());
        assert!(ChannelTiming::cooperation(Micros::ZERO, Micros::new(65))
            .validate()
            .is_err());
        assert!(ChannelTiming::cooperation(Micros::new(15), Micros::ZERO)
            .validate()
            .is_err());
        assert!(ChannelTiming::contention(Micros::new(160), Micros::new(60))
            .validate()
            .is_ok());
        assert!(ChannelTiming::contention(Micros::new(50), Micros::new(60))
            .validate()
            .is_err());
        assert!(ChannelTiming::contention(Micros::new(60), Micros::ZERO)
            .validate()
            .is_err());
    }

    #[test]
    fn display_formats_parameters() {
        assert_eq!(
            ChannelTiming::cooperation(Micros::new(15), Micros::new(65)).to_string(),
            "tw0=15us, ti=65us"
        );
        assert_eq!(
            ChannelTiming::contention(Micros::new(160), Micros::new(60)).to_string(),
            "tt1=160us, tt0=60us"
        );
    }
}
