//! The workspace-wide error type.

use crate::mechanism::{Mechanism, OsKind};
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, MesError>;

/// Errors produced anywhere in the MES-Attacks workspace.
///
/// # Examples
///
/// ```
/// use mes_types::{Mechanism, MesError, Scenario};
///
/// let err = MesError::MechanismUnavailable {
///     mechanism: Mechanism::Event,
///     scenario: Scenario::CrossVm,
/// };
/// assert!(err.to_string().contains("not available"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MesError {
    /// A bitstring literal contained a character other than `0`/`1`.
    ParseBits {
        /// Index of the offending character.
        position: usize,
        /// The offending character.
        character: char,
    },
    /// A channel mechanism is not usable in the requested scenario
    /// (e.g. `Event` across VMs, or any Windows kernel object on Linux).
    MechanismUnavailable {
        /// The requested mechanism.
        mechanism: Mechanism,
        /// The scenario that rejects it.
        scenario: Scenario,
    },
    /// A mechanism was requested on an operating system that does not expose it.
    MechanismUnsupportedOnOs {
        /// The requested mechanism.
        mechanism: Mechanism,
        /// The operating system in question.
        os: OsKind,
    },
    /// A timing parameter was outside its valid range.
    InvalidTiming {
        /// Name of the parameter (`tw0`, `ti`, `tt1`, `tt0`, ...).
        parameter: &'static str,
        /// Explanation of the constraint that was violated.
        reason: String,
    },
    /// A configuration value was inconsistent (bad symbol width, empty
    /// preamble, zero payload, ...).
    InvalidConfig {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// The simulator was asked to do something impossible (unknown handle,
    /// double unlock, wait on a missing object, ...).
    Simulation {
        /// Explanation of the failure.
        reason: String,
    },
    /// The receiver could not recover a frame (preamble never matched,
    /// truncated payload, CRC failure, ...).
    FrameRecovery {
        /// Explanation of the failure.
        reason: String,
    },
    /// A host-backend (real OS) operation failed.
    Host {
        /// Operation that failed (`flock`, `sem_open`, ...).
        operation: String,
        /// OS error code, when one is available.
        errno: Option<i32>,
    },
    /// Semaphore channel was asked to run without enough pre-provisioned
    /// resources (Table II of the paper: the Spy would stall).
    InsufficientSemaphoreResources {
        /// Resources that were provisioned.
        provisioned: u64,
        /// Resources required (number of `0` bits in the payload).
        required: u64,
    },
    /// A value could not be serialized to, or deserialized from, its wire
    /// representation (malformed experiment-spec JSON, missing field, ...).
    Serialization {
        /// Explanation of the failure.
        reason: String,
    },
}

impl fmt::Display for MesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MesError::ParseBits { position, character } => write!(
                f,
                "invalid bit character {character:?} at position {position}"
            ),
            MesError::MechanismUnavailable { mechanism, scenario } => write!(
                f,
                "mechanism {mechanism} is not available in the {scenario} scenario"
            ),
            MesError::MechanismUnsupportedOnOs { mechanism, os } => {
                write!(f, "mechanism {mechanism} is not exposed by {os}")
            }
            MesError::InvalidTiming { parameter, reason } => {
                write!(f, "invalid timing parameter {parameter}: {reason}")
            }
            MesError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            MesError::Simulation { reason } => write!(f, "simulation error: {reason}"),
            MesError::FrameRecovery { reason } => write!(f, "frame recovery failed: {reason}"),
            MesError::Host { operation, errno } => match errno {
                Some(code) => write!(f, "host operation {operation} failed with errno {code}"),
                None => write!(f, "host operation {operation} failed"),
            },
            MesError::InsufficientSemaphoreResources { provisioned, required } => write!(
                f,
                "semaphore channel provisioned {provisioned} resources but the payload requires {required}"
            ),
            MesError::Serialization { reason } => write!(f, "serialization error: {reason}"),
        }
    }
}

impl std::error::Error for MesError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<MesError>();
    }

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<MesError> = vec![
            MesError::ParseBits {
                position: 3,
                character: 'z',
            },
            MesError::MechanismUnavailable {
                mechanism: Mechanism::Mutex,
                scenario: Scenario::CrossVm,
            },
            MesError::MechanismUnsupportedOnOs {
                mechanism: Mechanism::Event,
                os: OsKind::Linux,
            },
            MesError::InvalidTiming {
                parameter: "tw0",
                reason: "must be positive".into(),
            },
            MesError::InvalidConfig {
                reason: "empty preamble".into(),
            },
            MesError::Simulation {
                reason: "unknown handle".into(),
            },
            MesError::FrameRecovery {
                reason: "preamble not found".into(),
            },
            MesError::Host {
                operation: "flock".into(),
                errno: Some(11),
            },
            MesError::Host {
                operation: "sem_open".into(),
                errno: None,
            },
            MesError::InsufficientSemaphoreResources {
                provisioned: 0,
                required: 5,
            },
            MesError::Serialization {
                reason: "unexpected end of input".into(),
            },
        ];
        for case in cases {
            let msg = case.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
