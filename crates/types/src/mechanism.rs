//! The mutual-exclusion and synchronization mechanisms (MESMs) attacked by
//! the paper, and the operating systems that expose them.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::error::MesError;

/// The covert-channel family a mechanism belongs to (Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ChannelFamily {
    /// Mutual exclusion: Trojan and Spy *compete* for a critical resource and
    /// the Spy measures how long it stays blocked on the lock.
    Contention,
    /// Synchronization: Trojan and Spy *cooperate*; the Spy measures how long
    /// it waits before the Trojan satisfies the synchronization condition.
    Cooperation,
}

impl fmt::Display for ChannelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelFamily::Contention => write!(f, "contention"),
            ChannelFamily::Cooperation => write!(f, "cooperation"),
        }
    }
}

/// Operating systems considered by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OsKind {
    /// Windows 10: kernel objects (Event, Mutex, Semaphore, WaitableTimer)
    /// plus `LockFileEx` file locks.
    Windows,
    /// Ubuntu 16.04 / Linux 4.15: only `flock` is usable between processes
    /// without writable shared memory.
    Linux,
}

impl fmt::Display for OsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsKind::Windows => write!(f, "Windows"),
            OsKind::Linux => write!(f, "Linux"),
        }
    }
}

/// The six MESMs the paper builds channels on.
///
/// # Examples
///
/// ```
/// use mes_types::{ChannelFamily, Mechanism, OsKind};
///
/// assert_eq!(Mechanism::Event.family(), ChannelFamily::Cooperation);
/// assert_eq!(Mechanism::Flock.native_os(), OsKind::Linux);
/// assert!(Mechanism::Semaphore.is_contention_based());
/// assert_eq!("flock".parse::<Mechanism>()?, Mechanism::Flock);
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Mechanism {
    /// Linux advisory file lock (`flock(2)`), contention-based.
    Flock,
    /// Windows `LockFileEx` exclusive file lock, contention-based.
    FileLockEx,
    /// Windows mutex kernel object, contention-based.
    Mutex,
    /// Windows semaphore kernel object, contention-based with resource
    /// pre-provisioning (Tables II/III of the paper).
    Semaphore,
    /// Windows event kernel object, cooperation-based (Protocol 2).
    Event,
    /// Windows waitable timer kernel object, cooperation-based.
    Timer,
}

impl Mechanism {
    /// Every mechanism, in the column order of Tables IV and V of the paper.
    pub const ALL: [Mechanism; 6] = [
        Mechanism::Flock,
        Mechanism::FileLockEx,
        Mechanism::Mutex,
        Mechanism::Semaphore,
        Mechanism::Event,
        Mechanism::Timer,
    ];

    /// The channel family (contention vs. cooperation) of this mechanism.
    pub fn family(self) -> ChannelFamily {
        match self {
            Mechanism::Flock | Mechanism::FileLockEx | Mechanism::Mutex | Mechanism::Semaphore => {
                ChannelFamily::Contention
            }
            Mechanism::Event | Mechanism::Timer => ChannelFamily::Cooperation,
        }
    }

    /// Whether the channel is contention-based (mutual exclusion).
    pub fn is_contention_based(self) -> bool {
        self.family() == ChannelFamily::Contention
    }

    /// Whether the channel is cooperation-based (synchronization).
    pub fn is_cooperation_based(self) -> bool {
        self.family() == ChannelFamily::Cooperation
    }

    /// The operating system that natively exposes the mechanism between
    /// processes without requiring writable shared memory (Section IV of the
    /// paper): `flock` on Linux, kernel objects and `LockFileEx` on Windows.
    pub fn native_os(self) -> OsKind {
        match self {
            Mechanism::Flock => OsKind::Linux,
            _ => OsKind::Windows,
        }
    }

    /// Whether the mechanism relies on a file shared through the filesystem
    /// (these are the only ones that keep working across VM boundaries,
    /// Section V.C.3 of the paper).
    pub fn is_file_backed(self) -> bool {
        matches!(self, Mechanism::Flock | Mechanism::FileLockEx)
    }

    /// Number of lock-path "instructions" per transmitted bit as counted by
    /// the paper (Section V.C.1): semaphore needs P-P-S-sleep-V-V (6), the
    /// other contention locks need lock-sleep-unlock (3), cooperation
    /// channels need sleep-set (2).
    pub fn instructions_per_bit(self) -> u32 {
        match self {
            Mechanism::Semaphore => 6,
            Mechanism::Flock | Mechanism::FileLockEx | Mechanism::Mutex => 3,
            Mechanism::Event | Mechanism::Timer => 2,
        }
    }

    /// A short lowercase identifier suitable for CSV columns and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Mechanism::Flock => "flock",
            Mechanism::FileLockEx => "filelockex",
            Mechanism::Mutex => "mutex",
            Mechanism::Semaphore => "semaphore",
            Mechanism::Event => "event",
            Mechanism::Timer => "timer",
        }
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mechanism::Flock => write!(f, "flock"),
            Mechanism::FileLockEx => write!(f, "FileLockEX"),
            Mechanism::Mutex => write!(f, "Mutex"),
            Mechanism::Semaphore => write!(f, "Semaphore"),
            Mechanism::Event => write!(f, "Event"),
            Mechanism::Timer => write!(f, "Timer"),
        }
    }
}

impl FromStr for Mechanism {
    type Err = MesError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "flock" => Ok(Mechanism::Flock),
            "filelockex" | "file_lock_ex" | "lockfileex" => Ok(Mechanism::FileLockEx),
            "mutex" => Ok(Mechanism::Mutex),
            "semaphore" | "sem" => Ok(Mechanism::Semaphore),
            "event" => Ok(Mechanism::Event),
            "timer" | "waitabletimer" => Ok(Mechanism::Timer),
            other => Err(MesError::InvalidConfig {
                reason: format!("unknown mechanism {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_match_table_one() {
        assert!(Mechanism::Flock.is_contention_based());
        assert!(Mechanism::FileLockEx.is_contention_based());
        assert!(Mechanism::Mutex.is_contention_based());
        assert!(Mechanism::Semaphore.is_contention_based());
        assert!(Mechanism::Event.is_cooperation_based());
        assert!(Mechanism::Timer.is_cooperation_based());
    }

    #[test]
    fn only_file_locks_are_file_backed() {
        let file_backed: Vec<Mechanism> = Mechanism::ALL
            .into_iter()
            .filter(|m| m.is_file_backed())
            .collect();
        assert_eq!(file_backed, vec![Mechanism::Flock, Mechanism::FileLockEx]);
    }

    #[test]
    fn instruction_counts_follow_paper() {
        assert_eq!(Mechanism::Semaphore.instructions_per_bit(), 6);
        assert_eq!(Mechanism::Flock.instructions_per_bit(), 3);
        assert_eq!(Mechanism::Event.instructions_per_bit(), 2);
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!("Event".parse::<Mechanism>().unwrap(), Mechanism::Event);
        assert_eq!(
            "LockFileEx".parse::<Mechanism>().unwrap(),
            Mechanism::FileLockEx
        );
        assert_eq!("sem".parse::<Mechanism>().unwrap(), Mechanism::Semaphore);
        assert!("spinlock".parse::<Mechanism>().is_err());
    }

    #[test]
    fn display_matches_paper_spelling() {
        assert_eq!(Mechanism::FileLockEx.to_string(), "FileLockEX");
        assert_eq!(Mechanism::Flock.to_string(), "flock");
        assert_eq!(ChannelFamily::Cooperation.to_string(), "cooperation");
        assert_eq!(OsKind::Windows.to_string(), "Windows");
    }

    #[test]
    fn native_os_assignment() {
        for mechanism in Mechanism::ALL {
            if mechanism == Mechanism::Flock {
                assert_eq!(mechanism.native_os(), OsKind::Linux);
            } else {
                assert_eq!(mechanism.native_os(), OsKind::Windows);
            }
        }
    }
}
