//! Identifier newtypes used by the OS simulator.
//!
//! The paper's channels hinge on the indirection between process-level and
//! system-level data structures (Fig. 4 and Fig. 5): handle tables map
//! per-process handles to system-wide kernel objects, and file descriptor
//! tables map per-process descriptors to system-wide file-table entries and
//! i-nodes. Giving each level its own identifier type keeps those layers
//! from being confused in the simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// Returns the raw index.
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Returns the raw index as `usize` for table lookups.
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }
    };
}

id_newtype!(
    /// Identifies a simulated process.
    ProcessId,
    "pid"
);
id_newtype!(
    /// Identifies a system-level kernel object (Event, Mutex, Semaphore, Timer).
    ObjectId,
    "obj"
);
id_newtype!(
    /// Identifies a process-level handle pointing at a kernel object
    /// (an entry in the process's handle table, Fig. 4 of the paper).
    HandleId,
    "h"
);
id_newtype!(
    /// Identifies a process-level file descriptor (Fig. 5 of the paper).
    FdId,
    "fd"
);
id_newtype!(
    /// Identifies a system-level open-file-table entry (Fig. 5 of the paper).
    FileId,
    "file"
);
id_newtype!(
    /// Identifies a system-level i-node carrying the lock list used by `flock`.
    InodeId,
    "ino"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefixes() {
        assert_eq!(ProcessId::new(3).to_string(), "pid3");
        assert_eq!(ObjectId::new(1).to_string(), "obj1");
        assert_eq!(HandleId::new(8).to_string(), "h8");
        assert_eq!(FdId::new(0).to_string(), "fd0");
        assert_eq!(FileId::new(4).to_string(), "file4");
        assert_eq!(InodeId::new(7).to_string(), "ino7");
    }

    #[test]
    fn ids_roundtrip_raw_values() {
        let id = HandleId::from(42u64);
        assert_eq!(id.as_u64(), 42);
        assert_eq!(id.as_usize(), 42);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<ProcessId> = [2u64, 1, 3].into_iter().map(ProcessId::new).collect();
        let ordered: Vec<u64> = set.into_iter().map(|p| p.as_u64()).collect();
        assert_eq!(ordered, vec![1, 2, 3]);
    }
}
