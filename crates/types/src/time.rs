//! Microsecond/nanosecond time newtypes used throughout the workspace.
//!
//! The paper reports every timing parameter in microseconds (`tw0`, `ti`,
//! `tt1`, `tt0`), while the simulator advances a nanosecond-resolution
//! virtual clock. Keeping the two units as distinct newtypes prevents the
//! classic unit mix-up (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or instant expressed in whole nanoseconds.
///
/// `Nanos` is the unit of the simulator's virtual clock. It is a plain
/// wrapper around `u64`, so arithmetic is cheap and `Copy`.
///
/// # Examples
///
/// ```
/// use mes_types::{Micros, Nanos};
///
/// let t = Nanos::from_micros(Micros::new(15));
/// assert_eq!(t.as_u64(), 15_000);
/// assert_eq!(t + Nanos::new(500), Nanos::new(15_500));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero duration / simulation start instant.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a value from a raw nanosecond count.
    pub const fn new(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a value from a microsecond count.
    pub const fn from_micros(us: Micros) -> Self {
        Nanos(us.as_u64() * 1_000)
    }

    /// Creates a value from a millisecond count.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a value from a second count.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the value as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the value as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Creates a value from fractional microseconds, rounding to the nearest
    /// nanosecond and clamping negative inputs to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        if us <= 0.0 {
            Nanos::ZERO
        } else {
            Nanos((us * 1_000.0).round() as u64)
        }
    }

    /// Saturating subtraction; never underflows.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction returning `None` on underflow.
    pub fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_sub(rhs.0).map(Nanos)
    }

    /// Returns the larger of the two values.
    pub fn max(self, other: Nanos) -> Nanos {
        Nanos(self.0.max(other.0))
    }

    /// Returns the smaller of the two values.
    pub fn min(self, other: Nanos) -> Nanos {
        Nanos(self.0.min(other.0))
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl From<Micros> for Nanos {
    fn from(us: Micros) -> Self {
        Nanos::from_micros(us)
    }
}

/// A duration expressed in whole microseconds, the unit the paper uses for
/// all channel timing parameters.
///
/// # Examples
///
/// ```
/// use mes_types::Micros;
///
/// let tw0 = Micros::new(15);
/// let ti = Micros::new(65);
/// assert_eq!((tw0 + ti).as_u64(), 80);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Micros(u64);

impl Micros {
    /// The zero duration.
    pub const ZERO: Micros = Micros(0);

    /// Creates a value from a raw microsecond count.
    pub const fn new(us: u64) -> Self {
        Micros(us)
    }

    /// Creates a value from a millisecond count.
    pub const fn from_millis(ms: u64) -> Self {
        Micros(ms * 1_000)
    }

    /// Creates a value from a second count.
    pub const fn from_secs(s: u64) -> Self {
        Micros(s * 1_000_000)
    }

    /// Returns the raw microsecond count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the value as `f64` microseconds.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Converts to nanoseconds.
    pub const fn to_nanos(self) -> Nanos {
        Nanos::from_micros(self)
    }

    /// Saturating subtraction; never underflows.
    pub fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl Mul<u64> for Micros {
    type Output = Micros;
    fn mul(self, rhs: u64) -> Micros {
        Micros(self.0 * rhs)
    }
}

impl Div<u64> for Micros {
    type Output = Micros;
    fn div(self, rhs: u64) -> Micros {
        Micros(self.0 / rhs)
    }
}

impl Sum for Micros {
    fn sum<I: Iterator<Item = Micros>>(iter: I) -> Micros {
        iter.fold(Micros::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_roundtrip_micros() {
        let us = Micros::new(137);
        assert_eq!(Nanos::from(us).as_u64(), 137_000);
        assert_eq!(us.to_nanos().as_micros_f64(), 137.0);
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::new(1_000);
        let b = Nanos::new(250);
        assert_eq!((a + b).as_u64(), 1_250);
        assert_eq!((a - b).as_u64(), 750);
        assert_eq!((a * 3).as_u64(), 3_000);
        assert_eq!((a / 4).as_u64(), 250);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.checked_sub(b), Some(Nanos::new(750)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn nanos_from_micros_f64_rounds_and_clamps() {
        assert_eq!(Nanos::from_micros_f64(1.5).as_u64(), 1_500);
        assert_eq!(Nanos::from_micros_f64(-3.0), Nanos::ZERO);
        assert_eq!(Nanos::from_micros_f64(0.0004).as_u64(), 0);
    }

    #[test]
    fn nanos_display_scales_units() {
        assert_eq!(Nanos::new(12).to_string(), "12ns");
        assert_eq!(Nanos::new(1_500).to_string(), "1.500us");
        assert_eq!(Nanos::from_millis(2).to_string(), "2.000ms");
        assert_eq!(Nanos::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn micros_display_and_sum() {
        assert_eq!(Micros::new(42).to_string(), "42us");
        let total: Micros = [Micros::new(1), Micros::new(2), Micros::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Micros::new(6));
    }

    #[test]
    fn micros_constructors() {
        assert_eq!(Micros::from_millis(3).as_u64(), 3_000);
        assert_eq!(Micros::from_secs(2).as_u64(), 2_000_000);
        assert_eq!(Micros::new(7).saturating_sub(Micros::new(9)), Micros::ZERO);
    }

    #[test]
    fn nanos_min_max_sum() {
        let a = Nanos::new(5);
        let b = Nanos::new(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: Nanos = [a, b].into_iter().sum();
        assert_eq!(total, Nanos::new(14));
    }
}
