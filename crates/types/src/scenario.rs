//! Deployment scenarios evaluated by the paper (Section V).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::error::MesError;
use crate::mechanism::Mechanism;

/// Where the Trojan and the Spy run relative to each other.
///
/// # Examples
///
/// ```
/// use mes_types::{Mechanism, Scenario};
///
/// assert!(Scenario::Local.supports(Mechanism::Event));
/// assert!(!Scenario::CrossVm.supports(Mechanism::Event));
/// assert!(Scenario::CrossVm.supports(Mechanism::FileLockEx));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Trojan and Spy are ordinary processes on the same machine.
    Local,
    /// The Trojan runs inside a sandbox (Firejail on Linux, Sandboxie on
    /// Windows) and leaks data to a Spy outside it.
    CrossSandbox,
    /// Trojan and Spy run in two different virtual machines on the same
    /// host (Hyper-V on Windows, KVM on Linux). Only file-backed mechanisms
    /// survive this isolation (Section V.C.3).
    CrossVm,
}

impl Scenario {
    /// Every scenario, in the order the paper evaluates them.
    pub const ALL: [Scenario; 3] = [Scenario::Local, Scenario::CrossSandbox, Scenario::CrossVm];

    /// Whether an isolation boundary (sandbox or VM) separates the processes.
    pub fn is_isolated(self) -> bool {
        !matches!(self, Scenario::Local)
    }

    /// Whether `mechanism` can carry data in this scenario.
    ///
    /// Across VMs only the file-backed locks work, because the other kernel
    /// objects are namespaced per session and never refer to a shared
    /// resource (Section V.C.3 of the paper).
    pub fn supports(self, mechanism: Mechanism) -> bool {
        match self {
            Scenario::Local | Scenario::CrossSandbox => true,
            Scenario::CrossVm => mechanism.is_file_backed(),
        }
    }

    /// The mechanisms evaluated by the paper in this scenario, in table order.
    pub fn mechanisms(self) -> Vec<Mechanism> {
        Mechanism::ALL
            .into_iter()
            .filter(|m| self.supports(*m))
            .collect()
    }

    /// A short lowercase identifier suitable for CSV columns and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Scenario::Local => "local",
            Scenario::CrossSandbox => "cross-sandbox",
            Scenario::CrossVm => "cross-vm",
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Scenario {
    type Err = MesError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "local" => Ok(Scenario::Local),
            "cross-sandbox" | "sandbox" => Ok(Scenario::CrossSandbox),
            "cross-vm" | "crossvm" | "vm" => Ok(Scenario::CrossVm),
            other => Err(MesError::InvalidConfig {
                reason: format!("unknown scenario {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_vm_only_supports_file_locks() {
        assert_eq!(
            Scenario::CrossVm.mechanisms(),
            vec![Mechanism::Flock, Mechanism::FileLockEx]
        );
    }

    #[test]
    fn local_and_sandbox_support_all_mechanisms() {
        assert_eq!(Scenario::Local.mechanisms().len(), 6);
        assert_eq!(Scenario::CrossSandbox.mechanisms().len(), 6);
    }

    #[test]
    fn isolation_flag() {
        assert!(!Scenario::Local.is_isolated());
        assert!(Scenario::CrossSandbox.is_isolated());
        assert!(Scenario::CrossVm.is_isolated());
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("local".parse::<Scenario>().unwrap(), Scenario::Local);
        assert_eq!(
            "sandbox".parse::<Scenario>().unwrap(),
            Scenario::CrossSandbox
        );
        assert_eq!("cross_vm".parse::<Scenario>().unwrap(), Scenario::CrossVm);
        assert!("cloud".parse::<Scenario>().is_err());
        assert_eq!(Scenario::CrossSandbox.to_string(), "cross-sandbox");
    }
}
