//! `mes-host` — running MES-Attacks channels on the real operating system of
//! the build machine.
//!
//! The simulator in `mes-sim` reproduces the paper's evaluation
//! deterministically; this crate exercises the *actual* kernel primitives the
//! paper's Linux channel is built on, so the local scenario can be
//! demonstrated end-to-end on real syscalls:
//!
//! * [`HostFlockBackend`] — the `flock(2)` channel between two threads of the
//!   current process, each holding its own descriptor for a shared temporary
//!   file (the descriptors point at the same i-node, exactly the situation of
//!   Fig. 5 in the paper);
//! * [`HostCondvarBackend`] — a stand-in for the Windows Event/WaitableTimer
//!   channels using a mutex + condition variable pair, preserving the
//!   "Trojan controls when the Spy's wait ends" structure of Protocol 2.
//!
//! Both implement [`mes_core::ChannelBackend`], so the full `CovertChannel`
//! pipeline (framing, adaptive threshold, BER/TR accounting) runs unchanged
//! on top of them — including the batch-session lifecycle: inside
//! `begin_batch`/`end_batch` (entered automatically by `transmit_batch` and
//! the `RoundExecutor`) each backend keeps **one long-lived Trojan/Spy
//! thread pair** resident and feeds it round plans over channels, so a batch
//! costs two thread spawns total instead of two per round.
//!
//! # Substitutions
//!
//! The paper runs Trojan and Spy as separate *processes* (and, for the other
//! scenarios, in sandboxes and VMs). Spawning and synchronising child
//! processes from a test suite is fragile, so this crate uses threads with
//! separate file descriptors; `flock` locks are per-open-file rather than
//! per-thread, so the contention behaviour over the shared i-node is the same
//! as between processes. The timing parameters are scaled up (hundreds of
//! microseconds to milliseconds) because a time-shared CI machine cannot hold
//! the paper's 15 µs scheduling precision.

#![warn(missing_docs)]

pub mod condvar;
pub mod flock;
pub mod timing;
mod worker;

pub use condvar::HostCondvarBackend;
pub use flock::HostFlockBackend;
pub use timing::host_timing;
