//! Timing parameters suitable for real-host runs.
//!
//! The paper's microsecond-level Timeset assumes a dedicated machine; on a
//! shared build host the scheduler quantum and timer slack are far coarser,
//! so the host backends run the same protocols with millisecond-scale
//! parameters. The *shape* of the channel (two separable latency levels, one
//! per bit value) is unchanged.

use mes_types::{ChannelFamily, ChannelTiming, Mechanism, Micros};

/// Returns conservative host-scale timing for a mechanism: 4 ms / 12 ms for
/// contention channels and 2 ms / +6 ms for cooperation channels.
pub fn host_timing(mechanism: Mechanism) -> ChannelTiming {
    match mechanism.family() {
        ChannelFamily::Contention => {
            ChannelTiming::contention(Micros::from_millis(12), Micros::from_millis(4))
        }
        ChannelFamily::Cooperation => {
            ChannelTiming::cooperation(Micros::from_millis(2), Micros::from_millis(6))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_timing_is_valid_for_every_mechanism() {
        for mechanism in Mechanism::ALL {
            let timing = host_timing(mechanism);
            assert!(timing.validate().is_ok(), "{mechanism}");
            assert!(timing.margin() >= Micros::from_millis(4));
        }
    }

    #[test]
    fn families_get_matching_timing() {
        assert!(matches!(
            host_timing(Mechanism::Flock),
            ChannelTiming::Contention { .. }
        ));
        assert!(matches!(
            host_timing(Mechanism::Event),
            ChannelTiming::Cooperation { .. }
        ));
    }
}
