//! A cooperation-channel backend built on a mutex + condition variable, and
//! the slot barrier shared by the host backends.
//!
//! Windows event objects are not available on this machine, so the
//! cooperation channels (Event, WaitableTimer) are demonstrated on the
//! closest Linux equivalent: the Spy waits on a condition variable with the
//! paper's infinite timeout, and the Trojan signals it after the bit-encoding
//! delay. The "who controls when the waiter is released" structure — the only
//! property the channel relies on — is identical.

use mes_core::{ChannelBackend, Observation, SlotAction, TransmissionPlan};
use mes_types::{Mechanism, MesError, Nanos, Result};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A reusable two-party rendezvous used to align the Trojan and Spy threads
/// at every slot boundary (the host equivalent of the simulator's barrier
/// op).
#[derive(Debug)]
pub struct SlotBarrier {
    parties: usize,
    state: Mutex<(usize, u64)>,
    condvar: Condvar,
}

impl SlotBarrier {
    /// Creates a barrier for `parties` threads.
    pub fn new(parties: usize) -> Self {
        SlotBarrier {
            parties,
            state: Mutex::new((0, 0)),
            condvar: Condvar::new(),
        }
    }

    /// Blocks until all parties have called `wait` for the current round.
    pub fn wait(&self) {
        let mut state = self.state.lock();
        let generation = state.1;
        state.0 += 1;
        if state.0 == self.parties {
            state.0 = 0;
            state.1 += 1;
            self.condvar.notify_all();
        } else {
            while state.1 == generation {
                self.condvar.wait(&mut state);
            }
        }
    }
}

#[derive(Debug, Default)]
struct EventState {
    signaled: bool,
}

/// The condition-variable stand-in for the Windows Event object.
#[derive(Debug, Default)]
struct HostEvent {
    state: Mutex<EventState>,
    condvar: Condvar,
}

impl HostEvent {
    /// `SetEvent`: wake the waiter.
    fn set(&self) {
        let mut state = self.state.lock();
        state.signaled = true;
        self.condvar.notify_one();
    }

    /// `WaitForSingleObject` with auto-reset semantics.
    fn wait(&self) {
        let mut state = self.state.lock();
        while !state.signaled {
            self.condvar.wait(&mut state);
        }
        state.signaled = false;
    }
}

/// A [`ChannelBackend`] that runs cooperation plans on a condition variable.
///
/// # Examples
///
/// ```no_run
/// use mes_core::{ChannelConfig, CovertChannel};
/// use mes_host::{host_timing, HostCondvarBackend};
/// use mes_scenario::ScenarioProfile;
/// use mes_types::{BitString, Mechanism};
///
/// let config = ChannelConfig::new(Mechanism::Event, host_timing(Mechanism::Event))?;
/// let channel = CovertChannel::new(config, ScenarioProfile::local())?;
/// let mut backend = HostCondvarBackend::new();
/// let report = channel.transmit(&BitString::from_bytes(b"S"), &mut backend)?;
/// assert_eq!(report.received_payload().to_bytes(), b"S");
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug, Default)]
pub struct HostCondvarBackend;

impl HostCondvarBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        HostCondvarBackend
    }
}

impl ChannelBackend for HostCondvarBackend {
    fn transmit(&mut self, plan: &TransmissionPlan) -> Result<Observation> {
        if !plan.mechanism.is_cooperation_based() && plan.mechanism != Mechanism::Semaphore {
            return Err(MesError::MechanismUnsupportedOnOs {
                mechanism: plan.mechanism,
                os: mes_types::OsKind::Linux,
            });
        }
        let event = Arc::new(HostEvent::default());
        let actions: Arc<Vec<SlotAction>> = Arc::new(plan.actions.clone());
        let slots = actions.len();

        let start = Instant::now();
        let trojan_event = Arc::clone(&event);
        let trojan_actions = Arc::clone(&actions);
        let trojan = std::thread::spawn(move || {
            for action in trojan_actions.iter() {
                std::thread::sleep(Duration::from_micros(action.duration().as_u64()));
                trojan_event.set();
            }
        });

        let spy_event = Arc::clone(&event);
        let spy = std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(slots);
            for _ in 0..slots {
                let begin = Instant::now();
                spy_event.wait();
                latencies.push(Nanos::new(begin.elapsed().as_nanos() as u64));
            }
            latencies
        });

        trojan.join().map_err(|_| MesError::Host {
            operation: "trojan thread panicked".into(),
            errno: None,
        })?;
        let latencies = spy.join().map_err(|_| MesError::Host {
            operation: "spy thread panicked".into(),
            errno: None,
        })?;
        Ok(Observation {
            latencies,
            elapsed: Nanos::new(start.elapsed().as_nanos() as u64),
        })
    }

    fn name(&self) -> &str {
        "host-condvar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_core::{ChannelConfig, CovertChannel};
    use mes_scenario::ScenarioProfile;
    use mes_types::{BitString, ChannelTiming, Micros};

    #[test]
    fn slot_barrier_aligns_two_threads() {
        let barrier = Arc::new(SlotBarrier::new(2));
        let other = Arc::clone(&barrier);
        let handle = std::thread::spawn(move || {
            for _ in 0..100 {
                other.wait();
            }
        });
        for _ in 0..100 {
            barrier.wait();
        }
        handle.join().unwrap();
    }

    #[test]
    fn condvar_event_channel_moves_a_byte() {
        let timing = ChannelTiming::cooperation(Micros::from_millis(3), Micros::from_millis(10));
        let config = ChannelConfig::new(Mechanism::Event, timing).unwrap();
        let channel = CovertChannel::new(config, ScenarioProfile::local()).unwrap();
        let mut backend = HostCondvarBackend::new();
        let secret = BitString::from_bytes(b"Q");
        let report = channel.transmit(&secret, &mut backend).unwrap();
        assert_eq!(
            report.received_payload(),
            &secret,
            "latencies: {:?}",
            report.latencies()
        );
        assert_eq!(backend.name(), "host-condvar");
    }

    #[test]
    fn contention_mechanisms_are_rejected() {
        let timing = ChannelTiming::contention(Micros::from_millis(6), Micros::from_millis(2));
        let config = ChannelConfig::new(Mechanism::Flock, timing).unwrap();
        let plan = mes_core::protocol::flock::encode(&BitString::from_str01("1").unwrap(), &config);
        let mut backend = HostCondvarBackend::new();
        assert!(backend.transmit(&plan).is_err());
    }
}
