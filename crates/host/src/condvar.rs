//! A cooperation-channel backend built on a mutex + condition variable, and
//! the slot barrier shared by the host backends.
//!
//! Windows event objects are not available on this machine, so the
//! cooperation channels (Event, WaitableTimer) are demonstrated on the
//! closest Linux equivalent: the Spy waits on a condition variable with the
//! paper's infinite timeout, and the Trojan signals it after the bit-encoding
//! delay. The "who controls when the waiter is released" structure — the only
//! property the channel relies on — is identical.
//!
//! Like the flock backend, a bare round spawns a fresh Trojan/Spy thread
//! pair while a batch session keeps one long-lived pair resident, feeding it
//! round plans over mpsc channels; each round still gets a fresh
//! [`HostEvent`], so round state never leaks across the session.

use crate::worker::{PairSessions, WorkerPair};
use mes_core::{ChannelBackend, Observation, SlotAction, TransmissionPlan};
use mes_types::{Mechanism, MesError, Nanos, Result};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A reusable two-party rendezvous used to align the Trojan and Spy threads
/// at every slot boundary (the host equivalent of the simulator's barrier
/// op).
#[derive(Debug)]
pub struct SlotBarrier {
    parties: usize,
    state: Mutex<(usize, u64)>,
    condvar: Condvar,
}

impl SlotBarrier {
    /// Creates a barrier for `parties` threads.
    pub fn new(parties: usize) -> Self {
        SlotBarrier {
            parties,
            state: Mutex::new((0, 0)),
            condvar: Condvar::new(),
        }
    }

    /// Blocks until all parties have called `wait` for the current round.
    pub fn wait(&self) {
        let mut state = self.state.lock();
        let generation = state.1;
        state.0 += 1;
        if state.0 == self.parties {
            state.0 = 0;
            state.1 += 1;
            self.condvar.notify_all();
        } else {
            while state.1 == generation {
                self.condvar.wait(&mut state);
            }
        }
    }
}

#[derive(Debug, Default)]
struct EventState {
    signaled: bool,
}

/// The condition-variable stand-in for the Windows Event object.
#[derive(Debug, Default)]
struct HostEvent {
    state: Mutex<EventState>,
    condvar: Condvar,
}

impl HostEvent {
    /// `SetEvent`: wake the waiter.
    fn set(&self) {
        let mut state = self.state.lock();
        state.signaled = true;
        self.condvar.notify_one();
    }

    /// `WaitForSingleObject` with auto-reset semantics.
    fn wait(&self) {
        let mut state = self.state.lock();
        while !state.signaled {
            self.condvar.wait(&mut state);
        }
        state.signaled = false;
    }
}

/// One round's work order: the slot actions plus the round's fresh event.
#[derive(Debug, Clone)]
struct CondvarRound {
    actions: Arc<Vec<SlotAction>>,
    event: Arc<HostEvent>,
}

impl CondvarRound {
    fn new(plan: &TransmissionPlan) -> Self {
        CondvarRound {
            actions: Arc::new(plan.actions.clone()),
            event: Arc::new(HostEvent::default()),
        }
    }
}

/// The Trojan side of one round: signal the event after each bit delay.
fn trojan_round(round: &CondvarRound) {
    for action in round.actions.iter() {
        std::thread::sleep(Duration::from_micros(action.duration().as_u64()));
        round.event.set();
    }
}

/// The Spy side of one round: time every wait on the event.
fn spy_round(round: &CondvarRound) -> Vec<Nanos> {
    let mut latencies = Vec::with_capacity(round.actions.len());
    for _ in 0..round.actions.len() {
        let begin = Instant::now();
        round.event.wait();
        latencies.push(Nanos::new(begin.elapsed().as_nanos() as u64));
    }
    latencies
}

/// A [`ChannelBackend`] that runs cooperation plans on a condition variable.
///
/// # Examples
///
/// ```no_run
/// use mes_core::{ChannelConfig, CovertChannel};
/// use mes_host::{host_timing, HostCondvarBackend};
/// use mes_scenario::ScenarioProfile;
/// use mes_types::{BitString, Mechanism};
///
/// let config = ChannelConfig::new(Mechanism::Event, host_timing(Mechanism::Event))?;
/// let channel = CovertChannel::new(config, ScenarioProfile::local())?;
/// let mut backend = HostCondvarBackend::new();
/// let report = channel.transmit(&BitString::from_bytes(b"S"), &mut backend)?;
/// assert_eq!(report.received_payload().to_bytes(), b"S");
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug, Default)]
pub struct HostCondvarBackend {
    sessions: PairSessions<CondvarRound>,
}

impl HostCondvarBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        HostCondvarBackend::default()
    }

    /// How many Trojan/Spy thread pairs the backend has spawned so far: one
    /// per batch session plus one per bare (sessionless) round. A batch of N
    /// rounds therefore contributes exactly 1.
    pub fn pairs_spawned(&self) -> u64 {
        self.sessions.pairs_spawned()
    }

    /// Whether a persistent worker pair is currently resident.
    pub fn session_active(&self) -> bool {
        self.sessions.is_active()
    }

    fn check_mechanism(plan: &TransmissionPlan) -> Result<()> {
        if plan.mechanism.is_cooperation_based() || plan.mechanism == Mechanism::Semaphore {
            Ok(())
        } else {
            Err(MesError::MechanismUnsupportedOnOs {
                mechanism: plan.mechanism,
                os: mes_types::OsKind::Linux,
            })
        }
    }

    /// The original per-round path: a throwaway worker pair serving exactly
    /// one round — the same lifecycle as a session, amortized over nothing.
    fn transmit_spawned(&mut self, round: CondvarRound) -> Result<Observation> {
        self.sessions.count_spawned_round();
        let pair = WorkerPair::spawn(
            |round: &CondvarRound| {
                trojan_round(round);
                Ok(())
            },
            |round: &CondvarRound| Ok(spy_round(round)),
        );
        let observation = pair.run_round(round);
        pair.shutdown();
        observation
    }
}

impl Drop for HostCondvarBackend {
    fn drop(&mut self) {
        self.sessions.shutdown();
    }
}

impl ChannelBackend for HostCondvarBackend {
    fn transmit(&mut self, plan: &TransmissionPlan) -> Result<Observation> {
        HostCondvarBackend::check_mechanism(plan)?;
        let round = CondvarRound::new(plan);
        match self.sessions.resident() {
            Some(pair) => pair.run_round(round),
            None => self.transmit_spawned(round),
        }
    }

    fn begin_batch(&mut self) -> Result<()> {
        self.sessions.begin_with(|| {
            Ok(WorkerPair::spawn(
                |round| {
                    trojan_round(round);
                    Ok(())
                },
                |round| Ok(spy_round(round)),
            ))
        })
    }

    fn end_batch(&mut self) {
        self.sessions.end();
    }

    fn name(&self) -> &str {
        "host-condvar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_core::{ChannelConfig, CovertChannel};
    use mes_scenario::ScenarioProfile;
    use mes_types::{BitString, ChannelTiming, Micros};

    #[test]
    fn slot_barrier_aligns_two_threads() {
        let barrier = Arc::new(SlotBarrier::new(2));
        let other = Arc::clone(&barrier);
        let handle = std::thread::spawn(move || {
            for _ in 0..100 {
                other.wait();
            }
        });
        for _ in 0..100 {
            barrier.wait();
        }
        handle.join().unwrap();
    }

    #[test]
    fn condvar_event_channel_moves_a_byte() {
        let timing = ChannelTiming::cooperation(Micros::from_millis(3), Micros::from_millis(10));
        let config = ChannelConfig::new(Mechanism::Event, timing).unwrap();
        let channel = CovertChannel::new(config, ScenarioProfile::local()).unwrap();
        let mut backend = HostCondvarBackend::new();
        let secret = BitString::from_bytes(b"Q");
        let report = channel.transmit(&secret, &mut backend).unwrap();
        assert_eq!(
            report.received_payload(),
            &secret,
            "latencies: {:?}",
            report.latencies()
        );
        assert_eq!(backend.name(), "host-condvar");
        assert_eq!(backend.pairs_spawned(), 1);
    }

    #[test]
    fn batch_session_spawns_one_pair_for_many_rounds() {
        let timing = ChannelTiming::cooperation(Micros::new(200), Micros::new(500));
        let config = ChannelConfig::new(Mechanism::Event, timing).unwrap();
        let plan =
            mes_core::protocol::event::encode(&BitString::from_str01("1010").unwrap(), &config);
        let mut backend = HostCondvarBackend::new();
        let observations = backend.transmit_batch(&vec![plan; 4]).unwrap();
        assert_eq!(observations.len(), 4);
        assert!(observations.iter().all(|o| o.len() == 4));
        assert_eq!(
            backend.pairs_spawned(),
            1,
            "a batch must spawn exactly one worker pair"
        );
        assert!(!backend.session_active(), "end_batch must tear down");
    }

    #[test]
    fn contention_mechanisms_are_rejected() {
        let timing = ChannelTiming::contention(Micros::from_millis(6), Micros::from_millis(2));
        let config = ChannelConfig::new(Mechanism::Flock, timing).unwrap();
        let plan = mes_core::protocol::flock::encode(&BitString::from_str01("1").unwrap(), &config);
        let mut backend = HostCondvarBackend::new();
        assert!(backend.transmit(&plan).is_err());
    }
}
