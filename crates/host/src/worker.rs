//! The persistent Trojan/Spy worker-pair machinery shared by the host
//! backends.
//!
//! Both host backends run a round the same way — a Trojan side that
//! modulates the shared resource and a Spy side that returns one latency per
//! slot — and both amortize thread spawns the same way inside a batch
//! session. This module owns that shape once: [`WorkerPair`] is the
//! long-lived pair fed round work-orders over mpsc channels, and
//! [`PairSessions`] is the backend-side bookkeeping (nesting depth, the
//! resident pair, the observable spawn counter). The backends contribute
//! only their round type and the two per-round closures.

use mes_core::Observation;
use mes_types::{MesError, Nanos, Result};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Instant;

fn dead_worker(which: &str) -> MesError {
    MesError::Host {
        operation: format!("{which} worker thread died"),
        errno: None,
    }
}

/// A long-lived Trojan/Spy thread pair executing rounds of type `R`.
///
/// Each worker loops over its job channel until the backend hangs up
/// ([`WorkerPair::shutdown`] or drop of the owning session), so one pair —
/// two thread spawns — serves every round of a batch.
#[derive(Debug)]
pub(crate) struct WorkerPair<R: Send + 'static> {
    trojan_tx: mpsc::Sender<R>,
    spy_tx: mpsc::Sender<R>,
    trojan_rx: mpsc::Receiver<Result<()>>,
    spy_rx: mpsc::Receiver<Result<Vec<Nanos>>>,
    trojan: JoinHandle<()>,
    spy: JoinHandle<()>,
}

impl<R: Clone + Send + 'static> WorkerPair<R> {
    /// Spawns the pair. `trojan_side` executes a round's Trojan half,
    /// `spy_side` its Spy half (returning one latency per slot); both run on
    /// their own resident thread for the life of the pair.
    pub(crate) fn spawn<T, S>(mut trojan_side: T, mut spy_side: S) -> WorkerPair<R>
    where
        T: FnMut(&R) -> Result<()> + Send + 'static,
        S: FnMut(&R) -> Result<Vec<Nanos>> + Send + 'static,
    {
        let (trojan_tx, trojan_jobs) = mpsc::channel::<R>();
        let (trojan_results, trojan_rx) = mpsc::channel();
        let trojan = std::thread::spawn(move || {
            while let Ok(round) = trojan_jobs.recv() {
                if trojan_results.send(trojan_side(&round)).is_err() {
                    break;
                }
            }
        });

        let (spy_tx, spy_jobs) = mpsc::channel::<R>();
        let (spy_results, spy_rx) = mpsc::channel();
        let spy = std::thread::spawn(move || {
            while let Ok(round) = spy_jobs.recv() {
                if spy_results.send(spy_side(&round)).is_err() {
                    break;
                }
            }
        });

        WorkerPair {
            trojan_tx,
            spy_tx,
            trojan_rx,
            spy_rx,
            trojan,
            spy,
        }
    }

    /// Feeds one round to the resident pair and collects its observation.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Host`] if a worker died, or the round's own error
    /// if either side failed.
    pub(crate) fn run_round(&self, round: R) -> Result<Observation> {
        let start = Instant::now();
        self.trojan_tx
            .send(round.clone())
            .map_err(|_| dead_worker("trojan"))?;
        self.spy_tx.send(round).map_err(|_| dead_worker("spy"))?;
        let trojan_result = self.trojan_rx.recv().map_err(|_| dead_worker("trojan"))?;
        let latencies = self.spy_rx.recv().map_err(|_| dead_worker("spy"))??;
        trojan_result?;
        Ok(Observation {
            latencies,
            elapsed: Nanos::new(start.elapsed().as_nanos() as u64),
        })
    }

    /// Hangs up the job channels (ending the worker loops) and joins both
    /// threads.
    pub(crate) fn shutdown(self) {
        let WorkerPair {
            trojan_tx,
            spy_tx,
            trojan_rx,
            spy_rx,
            trojan,
            spy,
        } = self;
        drop(trojan_tx);
        drop(spy_tx);
        drop(trojan_rx);
        drop(spy_rx);
        let _ = trojan.join();
        let _ = spy.join();
    }
}

/// Batch-session bookkeeping shared by the host backends: the resident
/// worker pair, the session nesting depth, and the observable spawn counter.
#[derive(Debug)]
pub(crate) struct PairSessions<R: Send + 'static> {
    pair: Option<WorkerPair<R>>,
    depth: usize,
    pairs_spawned: u64,
}

impl<R: Send + 'static> Default for PairSessions<R> {
    fn default() -> Self {
        PairSessions {
            pair: None,
            depth: 0,
            pairs_spawned: 0,
        }
    }
}

impl<R: Clone + Send + 'static> PairSessions<R> {
    /// Enters a (possibly nested) batch session, spawning the resident pair
    /// via `spawn` on the outermost entry.
    ///
    /// # Errors
    ///
    /// Propagates `spawn`'s error (e.g. the shared file cannot be opened).
    pub(crate) fn begin_with(
        &mut self,
        spawn: impl FnOnce() -> Result<WorkerPair<R>>,
    ) -> Result<()> {
        if self.depth == 0 && self.pair.is_none() {
            self.pair = Some(spawn()?);
            self.pairs_spawned += 1;
        }
        self.depth += 1;
        Ok(())
    }

    /// Leaves the innermost session; the outermost exit retires the pair.
    pub(crate) fn end(&mut self) {
        self.depth = self.depth.saturating_sub(1);
        if self.depth == 0 {
            self.shutdown();
        }
    }

    /// The resident pair, if a session is active.
    pub(crate) fn resident(&self) -> Option<&WorkerPair<R>> {
        self.pair.as_ref()
    }

    /// Whether a persistent pair is currently resident.
    pub(crate) fn is_active(&self) -> bool {
        self.pair.is_some()
    }

    /// Counts a sessionless per-round pair spawn.
    pub(crate) fn count_spawned_round(&mut self) {
        self.pairs_spawned += 1;
    }

    /// Total pairs spawned: one per session plus one per sessionless round.
    pub(crate) fn pairs_spawned(&self) -> u64 {
        self.pairs_spawned
    }

    /// Retires the resident pair immediately (backend drop).
    pub(crate) fn shutdown(&mut self) {
        if let Some(pair) = self.pair.take() {
            pair.shutdown();
        }
    }
}
