//! The real `flock(2)` channel.
//!
//! Two threads open the same temporary file with independent descriptors.
//! The Trojan thread executes the transmission plan — `LOCK_EX`, hold, and
//! `LOCK_UN` for an occupy slot; plain sleep for an idle slot — while the Spy
//! thread measures how long its own `LOCK_EX` attempt takes each slot. This
//! is Protocol 1 of the paper running on the kernel of the build machine.

use crate::condvar::SlotBarrier;
use mes_core::{ChannelBackend, Observation, SlotAction, TransmissionPlan};
use mes_types::{Mechanism, MesError, Nanos, Result};
use std::fs::{File, OpenOptions};
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn flock(file: &File, operation: libc::c_int) -> Result<()> {
    // SAFETY: `file` owns a valid open descriptor for the lifetime of the
    // call; `flock` does not retain the descriptor.
    let rc = unsafe { libc::flock(file.as_raw_fd(), operation) };
    if rc == 0 {
        Ok(())
    } else {
        Err(MesError::Host {
            operation: "flock".into(),
            errno: Some(std::io::Error::last_os_error().raw_os_error().unwrap_or(0)),
        })
    }
}

fn lock_exclusive(file: &File) -> Result<()> {
    flock(file, libc::LOCK_EX)
}

fn unlock(file: &File) -> Result<()> {
    flock(file, libc::LOCK_UN)
}

fn micros(duration: mes_types::Micros) -> Duration {
    Duration::from_micros(duration.as_u64())
}

/// A [`ChannelBackend`] that runs contention plans on real `flock(2)` locks.
///
/// # Examples
///
/// ```no_run
/// use mes_core::{ChannelConfig, CovertChannel};
/// use mes_host::{host_timing, HostFlockBackend};
/// use mes_scenario::ScenarioProfile;
/// use mes_types::{BitString, Mechanism};
///
/// let config = ChannelConfig::new(Mechanism::Flock, host_timing(Mechanism::Flock))?;
/// let channel = CovertChannel::new(config, ScenarioProfile::local())?;
/// let mut backend = HostFlockBackend::new()?;
/// let report = channel.transmit(&BitString::from_bytes(b"K"), &mut backend)?;
/// assert_eq!(report.received_payload().to_bytes(), b"K");
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug)]
pub struct HostFlockBackend {
    path: PathBuf,
}

impl HostFlockBackend {
    /// Creates the backend, allocating the shared lock file under the
    /// system temporary directory.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Host`] if the file cannot be created.
    pub fn new() -> Result<Self> {
        let path = std::env::temp_dir().join(format!(
            "mes-attacks-flock-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::write(&path, b"mes-attacks shared file").map_err(|error| MesError::Host {
            operation: format!("create {}: {error}", path.display()),
            errno: error.raw_os_error(),
        })?;
        Ok(HostFlockBackend { path })
    }

    /// The path of the shared lock file.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    fn open(&self) -> Result<File> {
        OpenOptions::new()
            .read(true)
            .open(&self.path)
            .map_err(|error| MesError::Host {
                operation: format!("open {}", self.path.display()),
                errno: error.raw_os_error(),
            })
    }
}

impl Drop for HostFlockBackend {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl ChannelBackend for HostFlockBackend {
    fn transmit(&mut self, plan: &TransmissionPlan) -> Result<Observation> {
        if !matches!(plan.mechanism, Mechanism::Flock | Mechanism::FileLockEx) {
            return Err(MesError::MechanismUnsupportedOnOs {
                mechanism: plan.mechanism,
                os: mes_types::OsKind::Linux,
            });
        }
        let trojan_file = self.open()?;
        let spy_file = self.open()?;
        let actions: Arc<Vec<SlotAction>> = Arc::new(plan.actions.clone());
        let barrier = Arc::new(SlotBarrier::new(2));
        // The paper's microsecond-scale spy offset is too tight for a
        // time-shared host: give the Trojan thread a comfortable head start
        // after each slot barrier so it reliably acquires the lock first when
        // sending a `1`.
        let spy_offset = micros(plan.spy_offset).max(Duration::from_millis(1));
        let slots = actions.len();

        let start = Instant::now();
        let trojan_actions = Arc::clone(&actions);
        let trojan_barrier = Arc::clone(&barrier);
        let trojan = std::thread::spawn(move || -> Result<()> {
            for action in trojan_actions.iter() {
                trojan_barrier.wait();
                match action {
                    SlotAction::Occupy(hold) => {
                        lock_exclusive(&trojan_file)?;
                        std::thread::sleep(micros(*hold));
                        unlock(&trojan_file)?;
                    }
                    SlotAction::Idle(pause) | SlotAction::SignalAfter(pause) => {
                        std::thread::sleep(micros(*pause));
                    }
                }
            }
            Ok(())
        });

        let spy_barrier = Arc::clone(&barrier);
        let spy = std::thread::spawn(move || -> Result<Vec<Nanos>> {
            let mut latencies = Vec::with_capacity(slots);
            for _ in 0..slots {
                spy_barrier.wait();
                std::thread::sleep(spy_offset);
                let begin = Instant::now();
                lock_exclusive(&spy_file)?;
                unlock(&spy_file)?;
                latencies.push(Nanos::new(begin.elapsed().as_nanos() as u64));
            }
            Ok(latencies)
        });

        let trojan_result = trojan.join().map_err(|_| MesError::Host {
            operation: "trojan thread panicked".into(),
            errno: None,
        })?;
        let spy_result = spy.join().map_err(|_| MesError::Host {
            operation: "spy thread panicked".into(),
            errno: None,
        })?;
        trojan_result?;
        let latencies = spy_result?;
        Ok(Observation {
            latencies,
            elapsed: Nanos::new(start.elapsed().as_nanos() as u64),
        })
    }

    fn name(&self) -> &str {
        "host-flock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_core::{ChannelConfig, CovertChannel};
    use mes_scenario::ScenarioProfile;
    use mes_types::{BitString, ChannelTiming, Micros};

    fn fast_timing() -> ChannelTiming {
        // Wide margins so the test survives a loaded machine (the whole
        // workspace test suite runs concurrently with this one).
        ChannelTiming::contention(Micros::from_millis(18), Micros::from_millis(6))
    }

    #[test]
    fn real_flock_channel_moves_a_byte() {
        let config = ChannelConfig::new(Mechanism::Flock, fast_timing()).unwrap();
        let channel = CovertChannel::new(config, ScenarioProfile::local()).unwrap();
        let mut backend = HostFlockBackend::new().unwrap();
        let secret = BitString::from_bytes(b"Z");
        let report = channel.transmit(&secret, &mut backend).unwrap();
        assert_eq!(
            report.received_payload(),
            &secret,
            "latencies: {:?}",
            report.latencies()
        );
        assert!(report.frame_valid());
        assert_eq!(backend.name(), "host-flock");
    }

    #[test]
    fn rejects_non_file_mechanisms() {
        let mut backend = HostFlockBackend::new().unwrap();
        let config = ChannelConfig::new(Mechanism::Event, host_event_timing()).unwrap();
        let plan =
            mes_core::protocol::event::encode(&BitString::from_str01("10").unwrap(), &config);
        assert!(backend.transmit(&plan).is_err());
    }

    fn host_event_timing() -> ChannelTiming {
        ChannelTiming::cooperation(Micros::from_millis(1), Micros::from_millis(2))
    }

    #[test]
    fn lock_file_is_cleaned_up() {
        let path;
        {
            let backend = HostFlockBackend::new().unwrap();
            path = backend.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }
}
