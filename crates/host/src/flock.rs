//! The real `flock(2)` channel.
//!
//! Two threads open the same temporary file with independent descriptors.
//! The Trojan thread executes the transmission plan — `LOCK_EX`, hold, and
//! `LOCK_UN` for an occupy slot; plain sleep for an idle slot — while the Spy
//! thread measures how long its own `LOCK_EX` attempt takes each slot. This
//! is Protocol 1 of the paper running on the kernel of the build machine.
//!
//! # Persistent worker pairs
//!
//! A bare [`ChannelBackend::transmit`] spawns a fresh Trojan/Spy thread pair
//! for the round, as the original harness did. Inside a batch session
//! ([`ChannelBackend::begin_batch`] … [`ChannelBackend::end_batch`]) the
//! backend instead keeps **one long-lived pair** alive (the shared
//! [`WorkerPair`](crate::worker) machinery), with each round's plan fed to
//! the workers over mpsc channels and the Spy's latencies sent back the same
//! way: two thread spawns (and two `open(2)` calls) per batch instead of two
//! per round. Both paths execute the identical per-slot loops
//! ([`SlotBarrier`]-aligned lock/hold/unlock against measured `LOCK_EX`), so
//! a round observes the same thing whichever path runs it.

use crate::condvar::SlotBarrier;
use crate::worker::{PairSessions, WorkerPair};
use mes_core::{ChannelBackend, Observation, SlotAction, TransmissionPlan};
use mes_types::{Mechanism, MesError, Nanos, Result};
use std::fs::{File, OpenOptions};
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn flock(file: &File, operation: libc::c_int) -> Result<()> {
    // SAFETY: `file` owns a valid open descriptor for the lifetime of the
    // call; `flock` does not retain the descriptor.
    let rc = unsafe { libc::flock(file.as_raw_fd(), operation) };
    if rc == 0 {
        Ok(())
    } else {
        Err(MesError::Host {
            operation: "flock".into(),
            errno: Some(std::io::Error::last_os_error().raw_os_error().unwrap_or(0)),
        })
    }
}

fn lock_exclusive(file: &File) -> Result<()> {
    flock(file, libc::LOCK_EX)
}

fn unlock(file: &File) -> Result<()> {
    flock(file, libc::LOCK_UN)
}

fn micros(duration: mes_types::Micros) -> Duration {
    Duration::from_micros(duration.as_u64())
}

/// Opens one more descriptor for the shared lock file (each side of a pair
/// gets its own, pointing at the same i-node — the Fig. 5 situation).
fn open_shared(path: &std::path::Path) -> Result<File> {
    OpenOptions::new()
        .read(true)
        .open(path)
        .map_err(|error| MesError::Host {
            operation: format!("open {}", path.display()),
            errno: error.raw_os_error(),
        })
}

/// One round's work order, shared between the Trojan and Spy sides.
#[derive(Debug, Clone)]
struct FlockRound {
    actions: Arc<Vec<SlotAction>>,
    barrier: Arc<SlotBarrier>,
    spy_offset: Duration,
}

impl FlockRound {
    fn new(plan: &TransmissionPlan) -> Self {
        FlockRound {
            actions: Arc::new(plan.actions.clone()),
            barrier: Arc::new(SlotBarrier::new(2)),
            // The paper's microsecond-scale spy offset is too tight for a
            // time-shared host: give the Trojan thread a comfortable head
            // start after each slot barrier so it reliably acquires the lock
            // first when sending a `1`.
            spy_offset: micros(plan.spy_offset).max(Duration::from_millis(1)),
        }
    }
}

/// The Trojan side of one round: modulate the lock per the plan's actions.
fn trojan_round(file: &File, round: &FlockRound) -> Result<()> {
    for action in round.actions.iter() {
        round.barrier.wait();
        match action {
            SlotAction::Occupy(hold) => {
                lock_exclusive(file)?;
                std::thread::sleep(micros(*hold));
                unlock(file)?;
            }
            SlotAction::Idle(pause) | SlotAction::SignalAfter(pause) => {
                std::thread::sleep(micros(*pause));
            }
        }
    }
    Ok(())
}

/// The Spy side of one round: time a `LOCK_EX`/`LOCK_UN` probe per slot.
fn spy_round(file: &File, round: &FlockRound) -> Result<Vec<Nanos>> {
    let mut latencies = Vec::with_capacity(round.actions.len());
    for _ in 0..round.actions.len() {
        round.barrier.wait();
        std::thread::sleep(round.spy_offset);
        let begin = Instant::now();
        lock_exclusive(file)?;
        unlock(file)?;
        latencies.push(Nanos::new(begin.elapsed().as_nanos() as u64));
    }
    Ok(latencies)
}

/// A [`ChannelBackend`] that runs contention plans on real `flock(2)` locks.
///
/// # Examples
///
/// ```no_run
/// use mes_core::{ChannelConfig, CovertChannel};
/// use mes_host::{host_timing, HostFlockBackend};
/// use mes_scenario::ScenarioProfile;
/// use mes_types::{BitString, Mechanism};
///
/// let config = ChannelConfig::new(Mechanism::Flock, host_timing(Mechanism::Flock))?;
/// let channel = CovertChannel::new(config, ScenarioProfile::local())?;
/// let mut backend = HostFlockBackend::new()?;
/// let report = channel.transmit(&BitString::from_bytes(b"K"), &mut backend)?;
/// assert_eq!(report.received_payload().to_bytes(), b"K");
/// # Ok::<(), mes_types::MesError>(())
/// ```
#[derive(Debug)]
pub struct HostFlockBackend {
    path: PathBuf,
    sessions: PairSessions<FlockRound>,
}

impl HostFlockBackend {
    /// Creates the backend, allocating the shared lock file under the
    /// system temporary directory.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Host`] if the file cannot be created.
    pub fn new() -> Result<Self> {
        let path = std::env::temp_dir().join(format!(
            "mes-attacks-flock-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::write(&path, b"mes-attacks shared file").map_err(|error| MesError::Host {
            operation: format!("create {}: {error}", path.display()),
            errno: error.raw_os_error(),
        })?;
        Ok(HostFlockBackend {
            path,
            sessions: PairSessions::default(),
        })
    }

    /// The path of the shared lock file.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// How many Trojan/Spy thread pairs the backend has spawned so far: one
    /// per batch session plus one per bare (sessionless) round. A batch of N
    /// rounds therefore contributes exactly 1.
    pub fn pairs_spawned(&self) -> u64 {
        self.sessions.pairs_spawned()
    }

    /// Whether a persistent worker pair is currently resident.
    pub fn session_active(&self) -> bool {
        self.sessions.is_active()
    }

    fn check_mechanism(plan: &TransmissionPlan) -> Result<()> {
        if matches!(plan.mechanism, Mechanism::Flock | Mechanism::FileLockEx) {
            Ok(())
        } else {
            Err(MesError::MechanismUnsupportedOnOs {
                mechanism: plan.mechanism,
                os: mes_types::OsKind::Linux,
            })
        }
    }

    /// The original per-round path: a throwaway worker pair serving exactly
    /// one round — the same lifecycle as a session, amortized over nothing.
    fn transmit_spawned(&mut self, round: FlockRound) -> Result<Observation> {
        let trojan_file = open_shared(&self.path)?;
        let spy_file = open_shared(&self.path)?;
        self.sessions.count_spawned_round();
        let pair = WorkerPair::spawn(
            move |round| trojan_round(&trojan_file, round),
            move |round| spy_round(&spy_file, round),
        );
        let observation = pair.run_round(round);
        pair.shutdown();
        observation
    }
}

impl Drop for HostFlockBackend {
    fn drop(&mut self) {
        self.sessions.shutdown();
        let _ = std::fs::remove_file(&self.path);
    }
}

impl ChannelBackend for HostFlockBackend {
    fn transmit(&mut self, plan: &TransmissionPlan) -> Result<Observation> {
        HostFlockBackend::check_mechanism(plan)?;
        let round = FlockRound::new(plan);
        match self.sessions.resident() {
            Some(pair) => pair.run_round(round),
            None => self.transmit_spawned(round),
        }
    }

    fn begin_batch(&mut self) -> Result<()> {
        let path = &self.path;
        self.sessions.begin_with(|| {
            let trojan_file = open_shared(path)?;
            let spy_file = open_shared(path)?;
            Ok(WorkerPair::spawn(
                move |round| trojan_round(&trojan_file, round),
                move |round| spy_round(&spy_file, round),
            ))
        })
    }

    fn end_batch(&mut self) {
        self.sessions.end();
    }

    fn name(&self) -> &str {
        "host-flock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mes_core::{ChannelConfig, CovertChannel};
    use mes_scenario::ScenarioProfile;
    use mes_types::{BitString, ChannelTiming, Micros};

    fn fast_timing() -> ChannelTiming {
        // Wide margins so the test survives a loaded machine (the whole
        // workspace test suite runs concurrently with this one).
        ChannelTiming::contention(Micros::from_millis(18), Micros::from_millis(6))
    }

    #[test]
    fn real_flock_channel_moves_a_byte() {
        let config = ChannelConfig::new(Mechanism::Flock, fast_timing()).unwrap();
        let channel = CovertChannel::new(config, ScenarioProfile::local()).unwrap();
        let mut backend = HostFlockBackend::new().unwrap();
        let secret = BitString::from_bytes(b"Z");
        let report = channel.transmit(&secret, &mut backend).unwrap();
        assert_eq!(
            report.received_payload(),
            &secret,
            "latencies: {:?}",
            report.latencies()
        );
        assert!(report.frame_valid());
        assert_eq!(backend.name(), "host-flock");
        assert_eq!(backend.pairs_spawned(), 1);
        assert!(!backend.session_active());
    }

    #[test]
    fn batch_session_spawns_one_pair_for_many_rounds() {
        let config = ChannelConfig::new(Mechanism::Flock, fast_timing()).unwrap();
        let channel = CovertChannel::new(config, ScenarioProfile::local()).unwrap();
        let (_, plan) = channel
            .plan_for(&BitString::from_str01("1").unwrap())
            .unwrap();
        let mut backend = HostFlockBackend::new().unwrap();
        let observations = backend.transmit_batch(&vec![plan; 3]).unwrap();
        assert_eq!(observations.len(), 3);
        assert_eq!(
            backend.pairs_spawned(),
            1,
            "a batch must spawn exactly one worker pair"
        );
        assert!(!backend.session_active(), "end_batch must tear down");
    }

    #[test]
    fn nested_batches_keep_one_session_until_outermost_end() {
        let mut backend = HostFlockBackend::new().unwrap();
        backend.begin_batch().unwrap();
        backend.begin_batch().unwrap();
        assert!(backend.session_active());
        assert_eq!(backend.pairs_spawned(), 1);
        backend.end_batch();
        assert!(backend.session_active(), "inner end must not tear down");
        backend.end_batch();
        assert!(!backend.session_active());
    }

    #[test]
    fn rejects_non_file_mechanisms() {
        let mut backend = HostFlockBackend::new().unwrap();
        let config = ChannelConfig::new(Mechanism::Event, host_event_timing()).unwrap();
        let plan =
            mes_core::protocol::event::encode(&BitString::from_str01("10").unwrap(), &config);
        assert!(backend.transmit(&plan).is_err());
    }

    fn host_event_timing() -> ChannelTiming {
        ChannelTiming::cooperation(Micros::from_millis(1), Micros::from_millis(2))
    }

    #[test]
    fn lock_file_is_cleaned_up() {
        let path;
        {
            let backend = HostFlockBackend::new().unwrap();
            path = backend.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }
}
