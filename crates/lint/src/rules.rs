//! The repo-specific rule engine over [`crate::lexer`] token streams.
//!
//! Every rule guards an invariant the dynamic gates can only *sample*
//! (see `INVARIANTS.md` at the workspace root):
//!
//! * [`NONDETERMINISM`] — no wall-clock or scheduler-dependent sources
//!   (`Instant`, `SystemTime`, `thread::sleep`) inside the simulation
//!   engine, the round executor, or the fingerprint/serialization paths.
//!   Batch determinism means every round is a pure function of
//!   `(plan, round index, seed)`; one stray clock read breaks that on a
//!   path the determinism suite happens not to sample.
//! * [`MAP_ITERATION`] — no iteration over `HashMap`/`HashSet` in those
//!   same modules. Insert/lookup are fine (`RandomState` only randomizes
//!   *order*), but iteration order leaks the per-process hash seed into
//!   results — the bug class that forced `mes_stats::json` to model
//!   objects as ordered pairs.
//! * [`WARM_PATH_ALLOC`] — no allocation-capable calls inside
//!   `// lint: warm-path` … `// lint: end-warm-path` regions. The alloc
//!   gates prove two shapes stay allocation-free; the marker makes the
//!   discipline reviewable on every line of the warm loops.
//! * [`SCHEDULER_LOCK`] — no `Mutex`/`RwLock`/`.lock()` inside
//!   `// lint: hot-path` … `// lint: end-hot-path` regions: the executor's
//!   claim loop is lock-free (CAS + write-once cells) by design.
//! * [`FLOAT_HASH`] — every `impl Hash` on a float-bearing type must hash
//!   through `to_bits` (or the repo's signed-zero-collapsing `float_bits`
//!   helper), and float-bearing types must not `#[derive(Hash)]`. This is
//!   the PR 5 signed-zero fingerprint bug class, made unrepresentable.
//! * [`LINT_MARKER`] — the markers themselves are checked: unknown
//!   directives, unterminated regions and reason-less allows are errors,
//!   so an annotation can never silently rot.
//!
//! Exceptions are spelled `// lint: allow(<rule>) — <reason>` on the
//! offending line or the line above, so every exemption is a visible diff.

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::collections::BTreeSet;

/// Rule id: nondeterminism sources in deterministic modules.
pub const NONDETERMINISM: &str = "nondeterminism";
/// Rule id: `HashMap`/`HashSet` iteration in deterministic modules.
pub const MAP_ITERATION: &str = "map-iteration";
/// Rule id: allocation-capable calls inside warm-path regions.
pub const WARM_PATH_ALLOC: &str = "warm-path-alloc";
/// Rule id: locks inside hot-path (scheduler) regions.
pub const SCHEDULER_LOCK: &str = "scheduler-lock";
/// Rule id: float-bearing `Hash` without `to_bits`.
pub const FLOAT_HASH: &str = "float-hash";
/// Rule id: malformed/unterminated lint markers.
pub const LINT_MARKER: &str = "lint-marker";

/// Every rule id, for allow-target validation.
pub const ALL_RULES: &[&str] = &[
    NONDETERMINISM,
    MAP_ITERATION,
    WARM_PATH_ALLOC,
    SCHEDULER_LOCK,
    FLOAT_HASH,
    LINT_MARKER,
];

/// One finding: which rule fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule id (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Workspace-wide facts collected in pass 1 (before any rule runs):
/// which type names carry `f32`/`f64` fields.
#[derive(Debug, Default)]
pub struct TypeRegistry {
    float_bearing: BTreeSet<String>,
}

impl TypeRegistry {
    /// Records every float-bearing `struct`/`enum` defined in `source`.
    /// "Float-bearing" means an `f32`/`f64` token appears anywhere in the
    /// type's body — fields, tuple elements, or generic arguments like
    /// `Vec<f64>`. (Types whose floats hide behind another *type* are that
    /// type's `Hash` impl's problem; this intentionally checks one level.)
    pub fn collect(&mut self, source: &str) {
        let lexed = lex(source);
        let tokens = strip_test_modules(&lexed.tokens);
        let mut i = 0;
        while i < tokens.len() {
            if (tokens[i].is_ident("struct") || tokens[i].is_ident("enum"))
                && tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Ident)
            {
                let name = tokens[i + 1].text.clone();
                // Body: the brace or paren group that follows (skipping
                // generics). A `;` first means a unit struct — no body.
                let mut j = i + 2;
                let mut depth = 0usize;
                let mut body_floats = false;
                while j < tokens.len() {
                    let t = &tokens[j];
                    if depth == 0 && t.is_punct(';') {
                        break;
                    }
                    if t.is_punct('{') || t.is_punct('(') || t.is_punct('<') {
                        depth += 1;
                    } else if t.is_punct('}') || t.is_punct(')') || t.is_punct('>') {
                        depth = depth.saturating_sub(1);
                        if depth == 0 && (t.is_punct('}') || t.is_punct(')')) {
                            j += 1;
                            break;
                        }
                    } else if depth > 0 && (t.is_ident("f64") || t.is_ident("f32")) {
                        body_floats = true;
                    }
                    j += 1;
                }
                if body_floats {
                    self.float_bearing.insert(name);
                }
                i = j;
            } else {
                i += 1;
            }
        }
    }

    /// Whether `name` was recorded as float-bearing.
    pub fn is_float_bearing(&self, name: &str) -> bool {
        self.float_bearing.contains(name)
    }
}

/// A parsed `// lint: …` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Directive {
    WarmStart,
    WarmEnd,
    HotStart,
    HotEnd,
    Allow { rule: String, has_reason: bool },
}

/// Extracts the `lint:` directive from a comment, if any. Doc-comment
/// markers (`///`, `//!`) and leading whitespace are stripped first.
fn parse_directive(comment: &Comment) -> Option<Result<Directive, String>> {
    let text = comment.text.trim_start_matches(['/', '!']).trim();
    let rest = text.strip_prefix("lint:")?.trim();
    if rest == "warm-path" {
        return Some(Ok(Directive::WarmStart));
    }
    if rest == "end-warm-path" {
        return Some(Ok(Directive::WarmEnd));
    }
    if rest == "hot-path" {
        return Some(Ok(Directive::HotStart));
    }
    if rest == "end-hot-path" {
        return Some(Ok(Directive::HotEnd));
    }
    if let Some(after) = rest.strip_prefix("allow(") {
        let Some(close) = after.find(')') else {
            return Some(Err("allow(…) is missing its closing parenthesis".into()));
        };
        let rule = after[..close].trim().to_string();
        if !ALL_RULES.contains(&rule.as_str()) {
            return Some(Err(format!(
                "allow names unknown rule {rule:?} (known: {})",
                ALL_RULES.join(", ")
            )));
        }
        // A reason is mandatory: strip a separator (— / - / :) and require
        // prose after it.
        let reason = after[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '-', ':', ' '])
            .trim();
        return Some(Ok(Directive::Allow {
            rule,
            has_reason: !reason.is_empty(),
        }));
    }
    Some(Err(format!(
        "unknown lint directive {rest:?} (expected warm-path, end-warm-path, hot-path, \
         end-hot-path, or allow(<rule>) — <reason>)"
    )))
}

/// The marker state of one file: warm/hot line regions plus allow lines.
#[derive(Debug, Default)]
struct Markers {
    /// Inclusive (start, end) line ranges between paired region markers.
    warm: Vec<(u32, u32)>,
    hot: Vec<(u32, u32)>,
    /// `(line, rule)` of each well-formed allow.
    allows: Vec<(u32, String)>,
    /// Diagnostics produced while parsing the markers themselves.
    errors: Vec<(u32, String)>,
}

fn parse_markers(comments: &[Comment]) -> Markers {
    let mut markers = Markers::default();
    let mut warm_open: Option<u32> = None;
    let mut hot_open: Option<u32> = None;
    for comment in comments {
        match parse_directive(comment) {
            None => {}
            Some(Err(message)) => markers.errors.push((comment.line, message)),
            Some(Ok(Directive::WarmStart)) => {
                if let Some(open) = warm_open {
                    markers.errors.push((
                        comment.line,
                        format!("warm-path region opened twice (previous open at line {open})"),
                    ));
                }
                warm_open = Some(comment.line);
            }
            Some(Ok(Directive::WarmEnd)) => match warm_open.take() {
                Some(start) => markers.warm.push((start, comment.line)),
                None => markers
                    .errors
                    .push((comment.line, "end-warm-path without warm-path".into())),
            },
            Some(Ok(Directive::HotStart)) => {
                if let Some(open) = hot_open {
                    markers.errors.push((
                        comment.line,
                        format!("hot-path region opened twice (previous open at line {open})"),
                    ));
                }
                hot_open = Some(comment.line);
            }
            Some(Ok(Directive::HotEnd)) => match hot_open.take() {
                Some(start) => markers.hot.push((start, comment.line)),
                None => markers
                    .errors
                    .push((comment.line, "end-hot-path without hot-path".into())),
            },
            Some(Ok(Directive::Allow { rule, has_reason })) => {
                if has_reason {
                    markers.allows.push((comment.line, rule));
                } else {
                    markers.errors.push((
                        comment.line,
                        format!("allow({rule}) requires a reason after the rule name"),
                    ));
                }
            }
        }
    }
    if let Some(open) = warm_open {
        markers.errors.push((
            open,
            "warm-path region never closed (missing end-warm-path)".into(),
        ));
    }
    if let Some(open) = hot_open {
        markers.errors.push((
            open,
            "hot-path region never closed (missing end-hot-path)".into(),
        ));
    }
    markers
}

impl Markers {
    fn in_warm(&self, line: u32) -> bool {
        self.warm.iter().any(|&(s, e)| line > s && line < e)
    }

    fn in_hot(&self, line: u32) -> bool {
        self.hot.iter().any(|&(s, e)| line > s && line < e)
    }

    /// An allow on the offending line or the line directly above suppresses
    /// a diagnostic for that rule.
    fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
    }
}

/// Removes `#[cfg(test)]`-guarded items from the token stream: rules audit
/// shipping code; tests may freely use clocks, locks, and allocation.
fn strip_test_modules(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && tokens.get(i + 6).is_some_and(|t| t.is_punct(']'));
        if is_cfg_test {
            // Skip the guarded item: everything through its brace-matched
            // body (or to a `;` for `mod name;` forms).
            let mut j = i + 7;
            let mut depth = 0usize;
            while j < tokens.len() {
                let t = &tokens[j];
                if depth == 0 && t.is_punct(';') {
                    j += 1;
                    break;
                }
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            i = j;
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// Whether `path` (workspace-relative, `/`-separated) belongs to the
/// determinism-gated modules: the simulation engine, the round executor
/// (and its model checker), and the fingerprint/serialization paths.
pub fn determinism_scoped(path: &str) -> bool {
    path.starts_with("crates/sim/src/")
        || path == "crates/core/src/exec.rs"
        || path.starts_with("crates/core/src/exec/")
        || path == "crates/types/src/fingerprint.rs"
        || path == "crates/stats/src/json.rs"
        || path == "crates/core/src/experiment/codec.rs"
}

/// Runs every rule over one file. `path` must be workspace-relative with
/// `/` separators; `registry` carries the pass-1 type facts.
pub fn check_source(path: &str, source: &str, registry: &TypeRegistry) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let markers = parse_markers(&lexed.comments);
    let tokens = strip_test_modules(&lexed.tokens);
    let mut raw: Vec<Diagnostic> = Vec::new();

    for (line, message) in &markers.errors {
        raw.push(Diagnostic {
            rule: LINT_MARKER,
            path: path.to_string(),
            line: *line,
            message: message.clone(),
        });
    }

    if determinism_scoped(path) {
        check_nondeterminism(path, &tokens, &mut raw);
        check_map_iteration(path, &tokens, &mut raw);
    }
    check_warm_path(path, &tokens, &markers, &mut raw);
    check_hot_path(path, &tokens, &markers, &mut raw);
    check_float_hash(path, &tokens, registry, &mut raw);

    raw.retain(|d| d.rule == LINT_MARKER || !markers.allowed(d.rule, d.line));
    raw
}

fn diag(path: &str, rule: &'static str, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: path.to_string(),
        line,
        message,
    }
}

fn check_nondeterminism(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            out.push(diag(
                path,
                NONDETERMINISM,
                t.line,
                format!(
                    "`{}` reads the wall clock; rounds must be pure functions of \
                     (plan, round index, seed)",
                    t.text
                ),
            ));
        }
        // `thread::sleep` / `std::thread::sleep`.
        if t.is_ident("thread")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("sleep"))
        {
            out.push(diag(
                path,
                NONDETERMINISM,
                t.line,
                "`thread::sleep` injects scheduler-dependent timing; simulated waits go \
                 through the engine's virtual clock"
                    .into(),
            ));
        }
    }
}

/// Methods that observe a hash map/set's (seed-randomized) order.
const ITERATION_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn check_map_iteration(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    // Pass 1: names declared as HashMap/HashSet, from `name: HashMap<…>`
    // field/binding types (possibly path-qualified) and from
    // `let [mut] name = HashMap::new()`-style initializations.
    let mut maps: BTreeSet<String> = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk left over a path prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && tokens[j - 1].is_punct(':') && tokens[j - 2].is_punct(':') {
            j -= 2;
            if j >= 1 && tokens[j - 1].kind == TokenKind::Ident {
                j -= 1;
            }
        }
        if j >= 2
            && tokens[j - 1].is_punct(':')
            && !tokens[j - 2].is_punct(':')
            && tokens[j - 2].kind == TokenKind::Ident
        {
            maps.insert(tokens[j - 2].text.clone());
        }
        if j >= 2 && tokens[j - 1].is_punct('=') {
            let mut k = j - 2;
            if tokens[k].is_ident("mut") && k >= 1 {
                k -= 1;
            }
            if tokens[k].kind == TokenKind::Ident && !tokens[k].is_ident("mut") {
                maps.insert(tokens[k].text.clone());
            }
        }
    }
    if maps.is_empty() {
        return;
    }

    // Pass 2: iteration over a known name — `name.iter()`-style calls and
    // `for … in [&[mut]] name`.
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && maps.contains(&t.text)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
        {
            if let Some(method) = tokens.get(i + 2) {
                if ITERATION_METHODS.contains(&method.text.as_str())
                    && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
                {
                    out.push(diag(
                        path,
                        MAP_ITERATION,
                        method.line,
                        format!(
                            "iterating `{}` (a HashMap/HashSet) observes RandomState \
                             order; use a BTreeMap/Vec or sort first",
                            t.text
                        ),
                    ));
                }
            }
        }
        if t.is_ident("for") {
            // Find `in`, then the short expression before the loop body.
            let Some(in_at) = (i + 1..tokens.len().min(i + 12)).find(|&j| tokens[j].is_ident("in"))
            else {
                continue;
            };
            let Some(body_at) =
                (in_at + 1..tokens.len().min(in_at + 6)).find(|&j| tokens[j].is_punct('{'))
            else {
                continue;
            };
            let expr = &tokens[in_at + 1..body_at];
            let named = expr
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .collect::<Vec<_>>();
            if let [only] = named.as_slice() {
                if maps.contains(&only.text) {
                    out.push(diag(
                        path,
                        MAP_ITERATION,
                        only.line,
                        format!(
                            "`for … in {}` iterates a HashMap/HashSet in RandomState order",
                            only.text
                        ),
                    ));
                }
            }
        }
    }
}

/// Allocation-capable constructor paths (`Type :: method`).
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];

/// Allocation-capable method calls (`.method(`).
const ALLOC_METHODS: &[&str] = &[
    "to_string",
    "to_owned",
    "to_vec",
    "collect",
    "clone",
    "push",
];

fn check_warm_path(path: &str, tokens: &[Token], markers: &Markers, out: &mut Vec<Diagnostic>) {
    if markers.warm.is_empty() {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if !markers.in_warm(t.line) {
            continue;
        }
        if (t.is_ident("format") || t.is_ident("vec"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(diag(
                path,
                WARM_PATH_ALLOC,
                t.line,
                format!(
                    "`{}!` allocates on every call inside a warm-path region",
                    t.text
                ),
            ));
        }
        for (ty, method) in ALLOC_PATHS {
            if t.is_ident(ty)
                && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && tokens.get(i + 3).is_some_and(|n| n.is_ident(method))
            {
                out.push(diag(
                    path,
                    WARM_PATH_ALLOC,
                    t.line,
                    format!("`{ty}::{method}` constructs a heap value inside a warm-path region"),
                ));
            }
        }
        if t.is_punct('.')
            && tokens
                .get(i + 1)
                .is_some_and(|n| ALLOC_METHODS.contains(&n.text.as_str()))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let method = &tokens[i + 1];
            out.push(diag(
                path,
                WARM_PATH_ALLOC,
                method.line,
                format!(
                    "`.{}(…)` may allocate inside a warm-path region (reuse a scratch \
                     buffer, patch in place, or share an Arc)",
                    method.text
                ),
            ));
        }
    }
}

fn check_hot_path(path: &str, tokens: &[Token], markers: &Markers, out: &mut Vec<Diagnostic>) {
    if markers.hot.is_empty() {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if !markers.in_hot(t.line) {
            continue;
        }
        if t.is_ident("Mutex") || t.is_ident("RwLock") || t.is_ident("parking_lot") {
            out.push(diag(
                path,
                SCHEDULER_LOCK,
                t.line,
                format!(
                    "`{}` inside a hot-path region: the claim loop is lock-free \
                     (CAS cursor + write-once cells) by design",
                    t.text
                ),
            ));
        }
        if t.is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_ident("lock"))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            out.push(diag(
                path,
                SCHEDULER_LOCK,
                tokens[i + 1].line,
                "`.lock()` inside a hot-path region blocks the claim loop".into(),
            ));
        }
    }
}

fn check_float_hash(
    path: &str,
    tokens: &[Token],
    registry: &TypeRegistry,
    out: &mut Vec<Diagnostic>,
) {
    // `#[derive(…, Hash, …)]` on a float-bearing struct/enum. (rustc would
    // reject a *direct* float field anyway — f64 is not Hash — but a field
    // like `Wrapping<f64>` via a Hash-implementing wrapper would slip by.)
    let mut pending_derive_hash: Option<u32> = None;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('#')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('['))
            && tokens.get(i + 2).is_some_and(|n| n.is_ident("derive"))
        {
            let mut j = i + 3;
            while j < tokens.len() && !tokens[j].is_punct(']') {
                if tokens[j].is_ident("Hash") {
                    pending_derive_hash = Some(tokens[j].line);
                }
                j += 1;
            }
            i = j;
        } else if t.is_ident("struct") || t.is_ident("enum") {
            if let (Some(line), Some(name)) = (pending_derive_hash.take(), tokens.get(i + 1)) {
                if registry.is_float_bearing(&name.text) {
                    out.push(diag(
                        path,
                        FLOAT_HASH,
                        line,
                        format!(
                            "`{}` carries float fields; derive(Hash) would hash raw bit \
                             patterns per-field impls choose — write `impl Hash` going \
                             through `to_bits` (collapse signed zeros!)",
                            name.text
                        ),
                    ));
                }
            }
        } else if t.is_ident("fn") || t.is_ident("impl") || t.is_ident("mod") {
            pending_derive_hash = None;
        }

        // `impl [<…>] [path::]Hash for [path::]Type [<…>] { … }` — the body
        // must mention `to_bits` (or the canonicalizing `float_bits` helper)
        // when Type is float-bearing.
        if t.is_ident("Hash")
            && tokens.get(i + 1).is_some_and(|n| n.is_ident("for"))
            && preceded_by_impl(tokens, i)
        {
            let mut j = i + 2;
            let mut type_name: Option<String> = None;
            let mut angle = 0usize;
            while j < tokens.len() && !tokens[j].is_punct('{') {
                match &tokens[j] {
                    t if t.is_punct('<') => angle += 1,
                    t if t.is_punct('>') => angle = angle.saturating_sub(1),
                    t if angle == 0 && t.kind == TokenKind::Ident && !t.is_ident("where") => {
                        type_name = Some(t.text.clone());
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(name) = type_name {
                if registry.is_float_bearing(&name) {
                    let mut depth = 0usize;
                    let mut saw_bits = false;
                    let impl_line = t.line;
                    while j < tokens.len() {
                        let b = &tokens[j];
                        if b.is_punct('{') {
                            depth += 1;
                        } else if b.is_punct('}') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if b.is_ident("to_bits") || b.is_ident("float_bits") {
                            saw_bits = true;
                        }
                        j += 1;
                    }
                    if !saw_bits {
                        out.push(diag(
                            path,
                            FLOAT_HASH,
                            impl_line,
                            format!(
                                "`impl Hash for {name}` hashes float fields without \
                                 `to_bits`/`float_bits`; -0.0 and 0.0 would fingerprint \
                                 unequally (the PR 5 signed-zero bug class)"
                            ),
                        ));
                    }
                }
            }
            i = j;
        }
        i += 1;
    }
}

/// Whether the `Hash` at `at` is part of an `impl … Hash for` header:
/// walk left over path segments and generics to an `impl` keyword.
fn preceded_by_impl(tokens: &[Token], at: usize) -> bool {
    let mut j = at;
    let mut budget = 24usize;
    while j > 0 && budget > 0 {
        j -= 1;
        budget -= 1;
        let t = &tokens[j];
        if t.is_ident("impl") {
            return true;
        }
        let is_path_or_generic = t.is_punct(':')
            || t.is_punct('<')
            || t.is_punct('>')
            || t.is_punct(',')
            || t.is_lifetime_or_ident();
        if !is_path_or_generic {
            return false;
        }
    }
    false
}

impl Token {
    fn is_lifetime_or_ident(&self) -> bool {
        matches!(self.kind, TokenKind::Ident | TokenKind::Lifetime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, source: &str) -> Vec<Diagnostic> {
        let mut registry = TypeRegistry::default();
        registry.collect(source);
        check_source(path, source, &registry)
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn instant_in_sim_is_flagged_and_comments_are_not() {
        let source = r#"
            // Instant::now() in prose is fine.
            fn round() {
                let t = Instant::now();
            }
        "#;
        let diags = check("crates/sim/src/engine.rs", source);
        assert_eq!(rules_of(&diags), [NONDETERMINISM]);
        assert_eq!(diags[0].line, 4);
        // Same source outside the determinism scope: clean.
        assert!(check("crates/bench/src/shard.rs", source).is_empty());
    }

    #[test]
    fn thread_sleep_and_system_time_are_flagged() {
        let source = "fn f() { std::thread::sleep(d); let t = SystemTime::now(); }";
        let diags = check("crates/core/src/exec.rs", source);
        assert_eq!(rules_of(&diags), [NONDETERMINISM, NONDETERMINISM]);
    }

    #[test]
    fn map_iteration_is_flagged_but_lookup_is_not() {
        let source = r#"
            struct S { index: HashMap<u64, usize> }
            fn ok(s: &S) -> Option<&usize> { s.index.get(&1) }
            fn bad(s: &S) { for (k, v) in s.index.iter() { drop((k, v)); } }
            fn also_bad(set: HashSet<u32>) { for x in &set { drop(x); } }
        "#;
        let diags = check("crates/sim/src/fs.rs", source);
        assert_eq!(rules_of(&diags), [MAP_ITERATION, MAP_ITERATION]);
    }

    #[test]
    fn let_bound_map_iteration_is_flagged() {
        let source = r#"
            fn f() {
                let mut shapes = HashMap::new();
                shapes.insert(1, 2);
                let all: Vec<_> = shapes.values().collect();
            }
        "#;
        let diags = check("crates/sim/src/noise.rs", source);
        assert_eq!(rules_of(&diags), [MAP_ITERATION]);
    }

    #[test]
    fn warm_path_flags_allocation_and_allow_suppresses() {
        let source = r#"
            fn warm() {
                // lint: warm-path
                let a = format!("boom");
                let b = x.to_string();
                // lint: allow(warm-path-alloc) — output value, allocated once per round
                let c = windows.iter().map(f).collect();
                buffer.extend_from_slice(&c);
                // lint: end-warm-path
                let outside = format!("fine");
            }
        "#;
        let diags = check("crates/core/src/backend.rs", source);
        assert_eq!(rules_of(&diags), [WARM_PATH_ALLOC, WARM_PATH_ALLOC]);
        assert_eq!(diags[0].line, 4);
        assert_eq!(diags[1].line, 5);
    }

    #[test]
    fn hot_path_flags_locks() {
        let source = r#"
            fn claim() {
                // lint: hot-path
                let guard = state.lock().unwrap();
                let m: Mutex<u32> = Mutex::new(0);
                // lint: end-hot-path
            }
        "#;
        let diags = check("crates/core/src/exec.rs", source);
        assert_eq!(
            rules_of(&diags),
            [SCHEDULER_LOCK, SCHEDULER_LOCK, SCHEDULER_LOCK]
        );
    }

    #[test]
    fn float_hash_without_to_bits_is_flagged() {
        let bad = r#"
            struct Jitter { sigma: f64 }
            impl Hash for Jitter {
                fn hash<H: Hasher>(&self, state: &mut H) {
                    (self.sigma as u64).hash(state);
                }
            }
        "#;
        let diags = check("crates/sim/src/noise.rs", bad);
        assert_eq!(rules_of(&diags), [FLOAT_HASH]);

        let good = r#"
            struct Jitter { sigma: f64 }
            impl Hash for Jitter {
                fn hash<H: Hasher>(&self, state: &mut H) {
                    self.sigma.to_bits().hash(state);
                }
            }
        "#;
        assert!(check("crates/sim/src/noise.rs", good).is_empty());

        let helper = r#"
            struct Jitter { sigma: f64 }
            impl Hash for Jitter {
                fn hash<H: Hasher>(&self, state: &mut H) {
                    float_bits(self.sigma).hash(state);
                }
            }
        "#;
        assert!(check("crates/sim/src/noise.rs", helper).is_empty());
    }

    #[test]
    fn derive_hash_on_float_bearing_type_is_flagged() {
        let source = r#"
            #[derive(Clone, Hash)]
            struct Level(Wrapping<f64>);
        "#;
        let diags = check("crates/core/src/plan.rs", source);
        assert_eq!(rules_of(&diags), [FLOAT_HASH]);
        // Hash derives on float-free types are untouched.
        assert!(check("crates/core/src/plan.rs", "#[derive(Hash)] struct Id(u64);").is_empty());
    }

    #[test]
    fn non_float_hash_impls_and_hasher_impls_are_ignored() {
        let source = r#"
            struct Fnv64 { state: u64 }
            impl Hasher for Fnv64 { fn finish(&self) -> u64 { self.state } }
            struct Plain { a: u64 }
            impl Hash for Plain {
                fn hash<H: Hasher>(&self, state: &mut H) { self.a.hash(state); }
            }
        "#;
        assert!(check("crates/types/src/fingerprint.rs", source).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let source = r#"
            fn shipping() {}
            #[cfg(test)]
            mod tests {
                fn t() { let x = Instant::now(); }
            }
        "#;
        assert!(check("crates/sim/src/engine.rs", source).is_empty());
    }

    #[test]
    fn marker_hygiene_is_enforced() {
        let unterminated = "fn f() {\n// lint: warm-path\n}";
        assert_eq!(
            rules_of(&check("crates/sim/src/engine.rs", unterminated)),
            [LINT_MARKER]
        );
        let unknown = "// lint: warm-loop\nfn f() {}";
        assert_eq!(
            rules_of(&check("crates/sim/src/engine.rs", unknown)),
            [LINT_MARKER]
        );
        let reasonless =
            "// lint: warm-path\n// lint: allow(warm-path-alloc)\n// lint: end-warm-path";
        assert_eq!(
            rules_of(&check("crates/sim/src/engine.rs", reasonless)),
            [LINT_MARKER]
        );
        let unknown_rule = "// lint: allow(made-up) — because\nfn f() {}";
        assert_eq!(
            rules_of(&check("crates/sim/src/engine.rs", unknown_rule)),
            [LINT_MARKER]
        );
    }

    #[test]
    fn allow_applies_to_same_line_and_next_line_only() {
        let same_line = r#"
            // lint: warm-path
            let a = format!("x"); // lint: allow(warm-path-alloc) — cold error path
            // lint: end-warm-path
        "#;
        assert!(check("crates/sim/src/engine.rs", same_line).is_empty());

        let too_far = r#"
            // lint: warm-path
            // lint: allow(warm-path-alloc) — too far away
            let spacer = 1;
            let a = format!("x");
            // lint: end-warm-path
        "#;
        assert_eq!(
            rules_of(&check("crates/sim/src/engine.rs", too_far)),
            [WARM_PATH_ALLOC]
        );
    }
}
