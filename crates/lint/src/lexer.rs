//! A minimal hand-rolled Rust lexer — just enough for `mes-lint`'s rules.
//!
//! The workspace builds offline, so the linter follows the same philosophy
//! as `shims/`: no `syn`, no `proc-macro2`, just a byte scanner that splits
//! Rust source into identifier/number/string/punctuation tokens and a side
//! list of comments. Rules never need types or full syntax — they match
//! small token patterns (`Instant :: now`, `impl Hash for T`) — but they
//! *do* need strings and comments stripped from the token stream, so that
//! prose like "no `Mutex` on the hot path" in a doc comment can never trip
//! a rule.
//!
//! The lexer understands the full literal grammar that matters for not
//! mis-tokenizing real code: line and (nested) block comments, string and
//! byte-string literals with escapes, raw strings (`r#"…"#`), char literals
//! vs lifetimes, and numeric literals with suffixes/exponents.

/// What a token is; rules mostly care about [`TokenKind::Ident`] and
/// [`TokenKind::Punct`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// A numeric literal (integer or float, any base, with suffix).
    Number,
    /// A string, byte-string, or raw-string literal.
    Str,
    /// A character or byte literal.
    Char,
    /// A lifetime (`'a`) or loop label (`'claims`).
    Lifetime,
    /// A single punctuation byte (`.`, `:`, `{`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's text (for [`TokenKind::Punct`], a single byte).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// `true` iff the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// `true` iff the token is the punctuation byte `byte`.
    pub fn is_punct(&self, byte: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == 1
            && self.text.as_bytes()[0] == byte as u8
    }
}

/// One comment (line or block) with the 1-based line it starts on. `text`
/// excludes the comment delimiters (`//`, `/*`, `*/`) but keeps doc-comment
/// markers' extra `/` or `!` characters, which [`crate::rules`] strips when
/// looking for `lint:` directives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The comment body.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// A lexed file: the token stream plus the side list of comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments. Unterminated literals and
/// comments are tolerated (the remainder of the file becomes the literal):
/// the linter must never panic on the code it audits — `rustc` owns syntax
/// errors.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut pos = 0usize;
    let mut line = 1u32;

    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b'\n' => {
                line += 1;
                pos += 1;
            }
            b' ' | b'\t' | b'\r' => pos += 1,
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                let start = pos + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                out.comments.push(Comment {
                    text: source[start..end].to_string(),
                    line,
                });
                pos = end;
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                let start_line = line;
                let start = pos + 2;
                let mut end = start;
                let mut depth = 1usize;
                while end < bytes.len() && depth > 0 {
                    if bytes[end] == b'\n' {
                        line += 1;
                        end += 1;
                    } else if bytes[end] == b'/' && bytes.get(end + 1) == Some(&b'*') {
                        depth += 1;
                        end += 2;
                    } else if bytes[end] == b'*' && bytes.get(end + 1) == Some(&b'/') {
                        depth -= 1;
                        end += 2;
                    } else {
                        end += 1;
                    }
                }
                let body_end = end.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: source[start..body_end].to_string(),
                    line: start_line,
                });
                pos = end;
            }
            b'"' => {
                let (text, next, lines) = scan_string(source, pos);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                });
                line += lines;
                pos = next;
            }
            b'\'' => {
                // Lifetime/label when followed by an identifier that is not
                // immediately closed by another quote ('a vs 'a').
                let after = bytes.get(pos + 1).copied();
                let is_lifetime = matches!(after, Some(c) if c == b'_' || c.is_ascii_alphabetic())
                    && bytes.get(pos + 2) != Some(&b'\'');
                if is_lifetime {
                    let start = pos + 1;
                    let mut end = start;
                    while end < bytes.len() && is_ident_continue(bytes[end]) {
                        end += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[pos..end].to_string(),
                        line,
                    });
                    pos = end;
                } else {
                    let (text, next, lines) = scan_char(source, pos);
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text,
                        line,
                    });
                    line += lines;
                    pos = next;
                }
            }
            _ if b.is_ascii_digit() => {
                let (text, next) = scan_number(source, pos);
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text,
                    line,
                });
                pos = next;
            }
            _ if is_ident_start(b) => {
                let start = pos;
                let mut end = pos;
                while end < bytes.len() && is_ident_continue(bytes[end]) {
                    end += 1;
                }
                let word = &source[start..end];
                // Raw/byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
                let next_byte = bytes.get(end).copied();
                if matches!(word, "r" | "br" | "rb") && matches!(next_byte, Some(b'"' | b'#')) {
                    let (text, next, lines) = scan_raw_string(source, end);
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text,
                        line,
                    });
                    line += lines;
                    pos = next;
                } else if word == "b" && next_byte == Some(b'"') {
                    let (text, next, lines) = scan_string(source, end);
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text,
                        line,
                    });
                    line += lines;
                    pos = next;
                } else if word == "b" && next_byte == Some(b'\'') {
                    let (text, next, lines) = scan_char(source, end);
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text,
                        line,
                    });
                    line += lines;
                    pos = next;
                } else {
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: word.to_string(),
                        line,
                    });
                    pos = end;
                }
            }
            _ => {
                // One punctuation byte per token; multi-byte operators are
                // matched by rules as token sequences (`:` `:` for `::`).
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
                pos += 1;
            }
        }
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Scans a `"…"` string starting at the opening quote; returns the literal
/// (quotes included), the position after it, and how many newlines it spans.
fn scan_string(source: &str, start: usize) -> (String, usize, u32) {
    let bytes = source.as_bytes();
    let mut pos = start + 1;
    let mut lines = 0u32;
    while pos < bytes.len() {
        match bytes[pos] {
            b'\\' => pos += 2,
            b'"' => {
                pos += 1;
                return (source[start..pos].to_string(), pos, lines);
            }
            b'\n' => {
                lines += 1;
                pos += 1;
            }
            _ => pos += 1,
        }
    }
    (source[start..].to_string(), bytes.len(), lines)
}

/// Scans a `'…'` char literal starting at the opening quote.
fn scan_char(source: &str, start: usize) -> (String, usize, u32) {
    let bytes = source.as_bytes();
    let mut pos = start + 1;
    let mut lines = 0u32;
    while pos < bytes.len() {
        match bytes[pos] {
            b'\\' => pos += 2,
            b'\'' => {
                pos += 1;
                return (source[start..pos].to_string(), pos, lines);
            }
            b'\n' => {
                lines += 1;
                pos += 1;
            }
            _ => pos += 1,
        }
    }
    (source[start..].to_string(), bytes.len(), lines)
}

/// Scans a raw string (`#…#"…"#…#`) whose `#`/`"` sequence begins at `start`
/// (the prefix `r`/`br` has already been consumed).
fn scan_raw_string(source: &str, start: usize) -> (String, usize, u32) {
    let bytes = source.as_bytes();
    let mut pos = start;
    let mut hashes = 0usize;
    while bytes.get(pos) == Some(&b'#') {
        hashes += 1;
        pos += 1;
    }
    if bytes.get(pos) != Some(&b'"') {
        // Not actually a raw string (e.g. `r#ident`); emit what we saw.
        return (source[start..pos].to_string(), pos, 0);
    }
    pos += 1;
    let mut lines = 0u32;
    while pos < bytes.len() {
        if bytes[pos] == b'\n' {
            lines += 1;
            pos += 1;
            continue;
        }
        if bytes[pos] == b'"' {
            let tail = &bytes[pos + 1..];
            if tail.len() >= hashes && tail[..hashes].iter().all(|&b| b == b'#') {
                let end = pos + 1 + hashes;
                return (source[start..end].to_string(), end, lines);
            }
        }
        pos += 1;
    }
    (source[start..].to_string(), bytes.len(), lines)
}

/// Scans a numeric literal (decimal, based, float, suffixed).
fn scan_number(source: &str, start: usize) -> (String, usize) {
    let bytes = source.as_bytes();
    let mut pos = start;
    while pos < bytes.len() {
        let b = bytes[pos];
        if b.is_ascii_alphanumeric() || b == b'_' {
            // Exponent sign: `1e-3` / `1E+3`.
            if (b == b'e' || b == b'E')
                && matches!(bytes.get(pos + 1), Some(b'+') | Some(b'-'))
                && bytes.get(pos + 2).is_some_and(u8::is_ascii_digit)
            {
                pos += 2;
            }
            pos += 1;
        } else if b == b'.' && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit) {
            // Decimal point, but never the `..` of a range or a method call
            // on a literal.
            pos += 1;
        } else {
            break;
        }
    }
    (source[start..pos].to_string(), pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_never_produce_idents() {
        let source = r##"
            // Instant::now in a comment
            /* Mutex in /* a nested */ block comment */
            let a = "Instant::now() in a string";
            let b = r#"RwLock in a raw "quoted" string"#;
            let c = 'M';
            let real = Marker;
        "##;
        let words = idents(source);
        assert!(!words.contains(&"Instant".to_string()), "{words:?}");
        assert!(!words.contains(&"Mutex".to_string()));
        assert!(!words.contains(&"RwLock".to_string()));
        assert!(words.contains(&"Marker".to_string()));
        let lexed = lex(source);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("Instant::now"));
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { 'outer: loop { break 'outer; } let c = 'x'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'outer", "'outer"]);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "'x'"));
    }

    #[test]
    fn numbers_and_punctuation_tokenize() {
        let lexed = lex("let x = 1.5e-3 + 0xFF_u32; let r = 0..10; t.0");
        let numbers: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(numbers, ["1.5e-3", "0xFF_u32", "0", "10", "0"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_literals() {
        let source = "let a = \"one\nl两\nthree\";\nlet marker = 1;";
        let lexed = lex(source);
        let marker = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("marker"))
            .expect("marker ident");
        assert_eq!(marker.line, 4);
    }
}
