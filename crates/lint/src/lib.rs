//! `mes-lint`: the repo's invariant-enforcing static analysis pass.
//!
//! The repo's value proposition is its invariants — every execution path
//! bit-identical to sequential, zero mes-sim heap on warm rounds, a
//! lock-free claim scheduler with write-once result cells, structural
//! fingerprints that collapse float signed zeros. The dynamic suites
//! (`tests/batch_determinism.rs`, `tests/alloc_regression.rs`, the
//! scheduler model checker in `mes_core::exec::model`) *sample* those
//! invariants over a handful of configurations; this crate *proves* at
//! review time that the hot paths cannot regress into the bug classes the
//! suites exist to catch. See [`rules`] for the rule catalogue and
//! `INVARIANTS.md` at the workspace root for the invariant → gate map.
//!
//! The linter is a library plus a `mes-lint` binary:
//!
//! ```text
//! cargo run -p mes-lint               # lint the workspace, exit 1 on findings
//! cargo run -p mes-lint -- --self-check   # prove seeded violations are caught
//! ```
//!
//! Everything is hand-rolled over [`lexer`] (no `syn`, no registry access),
//! in keeping with the offline `shims/` approach.

pub mod lexer;
pub mod rules;

pub use rules::{check_source, Diagnostic, TypeRegistry};

use std::path::{Path, PathBuf};

/// Collects every workspace `.rs` file the linter audits: `crates/`,
/// `tests/`, and `examples/` under `root`, skipping `shims/` (stubs of
/// *external* crates — `parking_lot` legitimately defines `Mutex`) and
/// `target/`. Paths come back sorted for deterministic reports.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && name != "shims" {
                walk(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root`: pass 1 collects float-bearing
/// types across every file, pass 2 runs the rules. Returns all findings
/// plus the number of files scanned.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let files = workspace_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    let mut registry = TypeRegistry::default();
    for path in &files {
        let source = std::fs::read_to_string(path)?;
        registry.collect(&source);
        let relative = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        sources.push((relative, source));
    }
    let mut diagnostics = Vec::new();
    for (relative, source) in &sources {
        diagnostics.extend(check_source(relative, source, &registry));
    }
    Ok((diagnostics, sources.len()))
}

/// A seeded-violation fixture: a source snippet at a virtual workspace
/// path that the rule engine **must** flag (or, for the `clean` guard,
/// must not).
pub struct Fixture {
    /// What the fixture demonstrates.
    pub name: &'static str,
    /// Virtual workspace-relative path deciding the rule scope.
    pub path: &'static str,
    /// The snippet to lint.
    pub source: &'static str,
    /// Rule id expected to fire; `None` means the snippet must be clean.
    pub expect: Option<&'static str>,
}

/// The seeded violations behind `mes-lint --self-check` (and CI's lint
/// gate): each is a historical or representable-by-accident bug class, and
/// the self-check fails if the engine ever stops catching one — a lint
/// that can no longer fail is not a gate.
pub fn self_check_fixtures() -> Vec<Fixture> {
    vec![
        Fixture {
            name: "Instant::now seeded into mes_sim::engine",
            path: "crates/sim/src/engine.rs",
            source: r#"
                fn run_process(&mut self) {
                    let started = Instant::now();
                    self.clock += started.elapsed().as_nanos() as u64;
                }
            "#,
            expect: Some(rules::NONDETERMINISM),
        },
        Fixture {
            name: "float Hash without to_bits (the PR 5 signed-zero class)",
            path: "crates/sim/src/noise.rs",
            source: r#"
                pub struct GaussianJitter { pub sigma_ns: f64 }
                impl Hash for GaussianJitter {
                    fn hash<H: Hasher>(&self, state: &mut H) {
                        (self.sigma_ns as u64).hash(state);
                    }
                }
            "#,
            expect: Some(rules::FLOAT_HASH),
        },
        Fixture {
            name: "thread::sleep seeded into the round executor",
            path: "crates/core/src/exec.rs",
            source: "fn claim(&self) { std::thread::sleep(backoff); }",
            expect: Some(rules::NONDETERMINISM),
        },
        Fixture {
            name: "HashMap iteration seeded into a fingerprint path",
            path: "crates/types/src/fingerprint.rs",
            source: r#"
                fn fingerprint(index: HashMap<u64, u64>) -> u64 {
                    let mut h = 0;
                    for (k, v) in index.iter() { h ^= k ^ v; }
                    h
                }
            "#,
            expect: Some(rules::MAP_ITERATION),
        },
        Fixture {
            name: "allocation seeded into a warm-path region",
            path: "crates/core/src/backend.rs",
            source: r#"
                fn patch(&mut self) {
                    // lint: warm-path
                    let label = format!("shape-{}", self.shape);
                    // lint: end-warm-path
                }
            "#,
            expect: Some(rules::WARM_PATH_ALLOC),
        },
        Fixture {
            name: "Mutex seeded into the scheduler hot path",
            path: "crates/core/src/exec.rs",
            source: r#"
                fn claims(&self) {
                    // lint: hot-path
                    let slot = self.results.lock().unwrap();
                    // lint: end-hot-path
                }
            "#,
            expect: Some(rules::SCHEDULER_LOCK),
        },
        Fixture {
            name: "clean warm-path region stays clean (engine can pass)",
            path: "crates/sim/src/engine.rs",
            source: r#"
                fn warm(&mut self) {
                    // lint: warm-path
                    self.scratch.clear();
                    self.scratch.extend_from_slice(&self.windows);
                    self.scratch.sort_unstable_by_key(|m| m.slot);
                    // lint: end-warm-path
                }
            "#,
            expect: None,
        },
    ]
}

/// Runs the self-check: every fixture must produce exactly its expected
/// outcome. Returns a human-readable failure list (empty = pass).
pub fn run_self_check() -> Vec<String> {
    let mut failures = Vec::new();
    for fixture in self_check_fixtures() {
        let mut registry = TypeRegistry::default();
        registry.collect(fixture.source);
        let diagnostics = check_source(fixture.path, fixture.source, &registry);
        match fixture.expect {
            Some(rule) => {
                if !diagnostics.iter().any(|d| d.rule == rule) {
                    failures.push(format!(
                        "NOT CAUGHT: {} (expected rule {rule}, got {:?})",
                        fixture.name,
                        diagnostics.iter().map(|d| d.rule).collect::<Vec<_>>()
                    ));
                }
            }
            None => {
                if !diagnostics.is_empty() {
                    failures.push(format!(
                        "FALSE POSITIVE: {} flagged {:?}",
                        fixture.name,
                        diagnostics.iter().map(|d| d.rule).collect::<Vec<_>>()
                    ));
                }
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_check_fixtures_all_behave() {
        assert_eq!(run_self_check(), Vec::<String>::new());
    }

    #[test]
    fn the_workspace_tree_is_clean() {
        // The acceptance gate, as a test: `cargo run -p mes-lint` must exit
        // 0 on the committed tree. CARGO_MANIFEST_DIR points at crates/lint.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let (diagnostics, scanned) = lint_workspace(root).expect("scan workspace");
        assert!(scanned > 50, "expected a full scan, saw {scanned} files");
        assert!(
            diagnostics.is_empty(),
            "workspace must lint clean:\n{}",
            diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn the_workspace_actually_carries_annotations() {
        // The warm/hot regions the rules audit must exist — otherwise the
        // warm-path and hot-path rules are vacuously green.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let mut warm = 0usize;
        let mut hot = 0usize;
        for path in workspace_files(root).expect("scan") {
            let source = std::fs::read_to_string(&path).expect("read");
            for comment in lexer::lex(&source).comments {
                let text = comment.text.trim_start_matches(['/', '!']).trim();
                if text == "lint: warm-path" {
                    warm += 1;
                }
                if text == "lint: hot-path" {
                    hot += 1;
                }
            }
        }
        assert!(warm >= 3, "expected ≥3 warm-path regions, found {warm}");
        assert!(hot >= 1, "expected ≥1 hot-path region, found {hot}");
    }
}
