//! The `mes-lint` binary: lints the workspace tree (default) or proves the
//! seeded-violation fixtures are still caught (`--self-check`). Wired into
//! CI as a required gate next to the scheduler model checker.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: mes-lint [--root <workspace-root>] [--self-check]\n\
         \n\
         default      lint every workspace .rs file; exit 1 on violations\n\
         --self-check run the seeded-violation fixtures; exit 1 if any is\n\
         \x20             no longer caught (a lint that cannot fail is not a gate)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut self_check = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--self-check" => self_check = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    if self_check {
        let failures = mes_lint::run_self_check();
        let total = mes_lint::self_check_fixtures().len();
        if failures.is_empty() {
            println!("mes-lint self-check: all {total} seeded fixtures behave as expected");
            return ExitCode::SUCCESS;
        }
        for failure in &failures {
            eprintln!("mes-lint self-check: {failure}");
        }
        eprintln!(
            "mes-lint self-check: {}/{total} fixtures misbehaved",
            failures.len()
        );
        return ExitCode::FAILURE;
    }

    // `cargo run -p mes-lint` executes from the workspace root, but derive
    // the root from the crate's own location so the binary also works when
    // invoked from a subdirectory or as a bare target/ executable.
    let root = root.unwrap_or_else(|| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/lint sits two levels under the workspace root")
            .to_path_buf()
    });
    match mes_lint::lint_workspace(&root) {
        Ok((diagnostics, scanned)) if diagnostics.is_empty() => {
            println!("mes-lint: {scanned} files scanned, 0 violations");
            ExitCode::SUCCESS
        }
        Ok((diagnostics, scanned)) => {
            for diagnostic in &diagnostics {
                eprintln!("{diagnostic}");
            }
            eprintln!(
                "mes-lint: {scanned} files scanned, {} violation(s)",
                diagnostics.len()
            );
            ExitCode::FAILURE
        }
        Err(error) => {
            eprintln!("mes-lint: cannot scan {}: {error}", root.display());
            ExitCode::FAILURE
        }
    }
}
