//! Anchor crate for the repository-level integration tests in `tests/`.
//!
//! The crate itself exposes nothing; it exists so the cross-crate integration
//! suite can live at the repository root (see `[[test]]` entries in
//! `Cargo.toml`) while each library crate keeps its own unit tests.
