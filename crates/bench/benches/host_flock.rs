//! Criterion benchmark: the real `flock(2)` lock/unlock pair on this machine
//! — the syscall cost underneath the paper's Linux channel — and a real
//! condvar signal/wait handoff (the stand-in for `SetEvent` +
//! `WaitForSingleObject`).

use criterion::{criterion_group, criterion_main, Criterion};
use mes_coding::BitSource;
use mes_core::{protocol, ChannelBackend, ChannelConfig};
use mes_host::{host_timing, HostCondvarBackend, HostFlockBackend};
use mes_types::Mechanism;

fn host_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_flock");
    group.sample_size(10);

    // One short real transmission over flock (8 bits at millisecond timing).
    let config = ChannelConfig::new(Mechanism::Flock, host_timing(Mechanism::Flock)).unwrap();
    let wire = BitSource::new(3).random_bits(8);
    let flock_plan = protocol::flock::encode(&wire, &config);
    group.bench_function("flock_8_bit_round", |b| {
        let mut backend = HostFlockBackend::new().unwrap();
        b.iter(|| backend.transmit(&flock_plan).unwrap());
    });

    // One short real transmission over the condvar event stand-in.
    let config = ChannelConfig::new(Mechanism::Event, host_timing(Mechanism::Event)).unwrap();
    let event_plan = protocol::event::encode(&wire, &config);
    group.bench_function("condvar_8_bit_round", |b| {
        let mut backend = HostCondvarBackend::new();
        b.iter(|| backend.transmit(&event_plan).unwrap());
    });

    group.finish();
}

criterion_group!(benches, host_primitives);
criterion_main!(benches);
