//! Criterion benchmark: encode/decode throughput of the coding layer
//! (framing, thresholding, symbol mapping, ECC).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mes_coding::{BitSource, FrameCodec, Hamming74, SymbolAlphabet, ThresholdDecoder};
use mes_types::{Micros, Nanos};

fn coding_throughput(c: &mut Criterion) {
    let bits = BitSource::new(7).random_bits(4096);
    let codec = FrameCodec::with_default_preamble();
    let wire = codec.encode(&bits);
    let latencies: Vec<Nanos> = wire
        .iter()
        .map(|b| {
            if b.is_one() {
                Micros::new(80).to_nanos()
            } else {
                Micros::new(20).to_nanos()
            }
        })
        .collect();
    let decoder =
        ThresholdDecoder::midpoint(Micros::new(20).to_nanos(), Micros::new(80).to_nanos());
    let alphabet = SymbolAlphabet::paper_two_bit();

    let mut group = c.benchmark_group("coding");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("frame_encode_4096", |b| b.iter(|| codec.encode(&bits)));
    group.bench_function("threshold_decode_4096", |b| {
        b.iter(|| decoder.decode_all(&latencies))
    });
    group.bench_function("frame_decode_4096", |b| {
        let received = decoder.decode_all(&latencies);
        b.iter(|| codec.decode(&received).unwrap())
    });
    group.bench_function("symbol_encode_4096", |b| {
        b.iter(|| alphabet.encode(&bits).unwrap())
    });
    group.bench_function("hamming74_encode_4096", |b| {
        b.iter(|| Hamming74::encode(&bits))
    });
    group.finish();
}

criterion_group!(benches, coding_throughput);
criterion_main!(benches);
