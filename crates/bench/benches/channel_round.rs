//! Criterion benchmark: one full covert-channel round (frame, simulate,
//! decode, account) per mechanism and scenario — the unit of work every
//! table/figure harness repeats thousands of times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mes_coding::BitSource;
use mes_core::{ChannelConfig, CovertChannel, SimBackend};
use mes_scenario::ScenarioProfile;
use mes_types::Scenario;

fn channel_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_round");
    for scenario in [Scenario::Local, Scenario::CrossVm] {
        for mechanism in scenario.mechanisms() {
            let id = format!("{}/{}", scenario.as_str(), mechanism.as_str());
            group.bench_with_input(BenchmarkId::new("roundtrip_128_bits", id), &(), |b, ()| {
                let profile = ScenarioProfile::for_scenario(scenario);
                let config = ChannelConfig::paper_defaults(scenario, mechanism).unwrap();
                let channel = CovertChannel::new(config, profile.clone()).unwrap();
                let payload = BitSource::new(9).random_bits(128);
                let mut backend = SimBackend::new(profile, 9);
                b.iter(|| channel.transmit(&payload, &mut backend).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, channel_round);
criterion_main!(benches);
