//! Criterion benchmark: a 64-round sweep executed three ways — one fresh
//! backend per round (the old per-round cost), one backend batching all
//! rounds over a reused engine, and the multi-threaded `RoundExecutor`.
//! All three produce bit-identical observations; the interesting number is
//! the wall clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mes_coding::BitSource;
use mes_core::exec::RoundExecutor;
use mes_core::{
    round_seed, ChannelBackend, ChannelConfig, CovertChannel, SimBackend, TransmissionPlan,
};
use mes_scenario::ScenarioProfile;
use mes_types::{Mechanism, Scenario};

const ROUNDS: usize = 64;
const BITS: usize = 128;
const SEED: u64 = 0xBEEF;

fn sweep_plans(profile: &ScenarioProfile) -> Vec<TransmissionPlan> {
    let config = ChannelConfig::paper_defaults(Scenario::Local, Mechanism::Event).unwrap();
    let channel = CovertChannel::new(config, profile.clone()).unwrap();
    (0..ROUNDS)
        .map(|round| {
            let payload = BitSource::new(round as u64).random_bits(BITS);
            channel.plan_for(&payload).unwrap().1
        })
        .collect()
}

fn batch_round(c: &mut Criterion) {
    let profile = ScenarioProfile::local();
    let plans = sweep_plans(&profile);

    let mut group = c.benchmark_group("batch_round");
    group.throughput(Throughput::Elements(ROUNDS as u64));
    group.sample_size(10);

    group.bench_function("sequential_fresh_backend_per_round", |b| {
        b.iter(|| {
            plans
                .iter()
                .enumerate()
                .map(|(index, plan)| {
                    SimBackend::new(profile.clone(), round_seed(SEED, index as u64))
                        .transmit(plan)
                        .unwrap()
                })
                .collect::<Vec<_>>()
        })
    });

    group.bench_function("batched_reused_engine", |b| {
        b.iter(|| {
            SimBackend::new(profile.clone(), SEED)
                .transmit_batch(&plans)
                .unwrap()
        })
    });

    for workers in [2, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel_executor", workers),
            &workers,
            |b, &workers| {
                let executor = RoundExecutor::new(workers);
                b.iter(|| {
                    executor
                        .execute(&plans, || SimBackend::new(profile.clone(), SEED))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, batch_round);
criterion_main!(benches);
