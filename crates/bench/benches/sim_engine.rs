//! Criterion benchmark: raw throughput of the discrete-event engine.
//!
//! Measures how many simulated covert-channel bits per second of wall-clock
//! time the engine sustains — the figure that bounds how large a sweep the
//! harness binaries can afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mes_coding::BitSource;
use mes_core::{protocol, ChannelBackend, ChannelConfig, SimBackend};
use mes_scenario::ScenarioProfile;
use mes_types::{Mechanism, Scenario};

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    let bits = 512usize;
    group.throughput(Throughput::Elements(bits as u64));
    for mechanism in [Mechanism::Event, Mechanism::Flock, Mechanism::Semaphore] {
        let profile = ScenarioProfile::local();
        let config = ChannelConfig::paper_defaults(Scenario::Local, mechanism).unwrap();
        let wire = BitSource::new(1).random_bits(bits);
        let plan = protocol::encode(&wire, &config, &profile).unwrap();
        group.bench_with_input(
            BenchmarkId::new("transmit_512_bits", mechanism.as_str()),
            &plan,
            |b, plan| {
                let mut backend = SimBackend::new(ScenarioProfile::local(), 42);
                b.iter(|| backend.transmit(plan).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
