//! Sharded sweeps across `sweepd` worker processes.
//!
//! This is the process-level half of the §V.C.1 mega-sweep measurement: a
//! grid too large (or too concurrent) for one process is split by
//! [`ShardedExperiment::split`] into per-shape shard specs, streamed to a
//! pool of `sweepd --worker` child processes over a length-prefixed frame
//! protocol, and the shard results are merged back — bit-identically to the
//! unsharded run, in whatever order the workers finish.
//!
//! # Wire protocol
//!
//! A *frame* is `<decimal byte length>\n<payload bytes>\n`; payloads are the
//! existing spec/result JSON documents, so a worker is exactly the `sweepd`
//! one-shot mode in a loop: spec frame in, result frame out, one persistent
//! [`SweepService`] per worker process keeping engines and program caches
//! warm between shards. A failing shard answers with an `{"error": …}`
//! frame instead of killing the worker. EOF on stdin ends the worker.
//!
//! # Supervision
//!
//! [`run_sharded`] does not trust its workers. Every dispatched shard is a
//! *lease* with a deadline derived from the shard's summed nominal plan
//! duration (see [`SupervisorConfig::shard_deadline`]); the driver
//! classifies everything that can come back — or fail to come back — into
//! three fault kinds and recovers from each:
//!
//! * **crash** — EOF or a broken pipe: the worker process died. Respawn,
//!   requeue the shard.
//! * **hang** — the lease deadline expires with no answer: kill the worker
//!   (it may be wedged forever), respawn, requeue.
//! * **babble** — a frame that is malformed, not a result document, or a
//!   well-formed result carrying *foreign provenance* (plan hash or round
//!   seed disagreeing with the compiled grid — checked at receipt via
//!   [`ShardedExperiment::verify_shard_result`], the same validation the
//!   merge re-runs): the worker cannot be trusted. Kill, respawn, requeue.
//!
//! An in-band `{"error": …}` answer is a *shard* failure from a healthy
//! worker: the shard is retried without a respawn. Each shard gets at most
//! [`SupervisorConfig::max_attempts`] attempts; beyond that it is
//! **quarantined** and reported on [`ShardRun::recovery`] — never silently
//! dropped. Because a round's observation is a pure function of
//! `(plan, round index, base seed)`, a retried shard reproduces its first
//! attempt bit-for-bit, so the merged document under any recoverable fault
//! schedule is byte-identical to a fault-free run — and the provenance
//! checks in [`ShardedExperiment::merge`] enforce that rather than assume
//! it. The deterministic chaos suite (`tests/shard_fault.rs`, driven by
//! [`FaultPlan`](crate::fault::FaultPlan)) injects every fault class at
//! every dispatch index and asserts exactly that byte-identity.

use crate::fault::{FaultKind, FaultPlan, FAULT_PLAN_ENV};
use mes_core::experiment::ShardedExperiment;
use mes_core::{ExperimentResult, ExperimentSpec, RoundExecutor, SweepService};
use mes_stats::Json;
use mes_types::{MesError, Result};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

pub(crate) fn io_error(operation: &str, error: &std::io::Error) -> MesError {
    MesError::Host {
        operation: format!("{operation}: {error}"),
        errno: error.raw_os_error(),
    }
}

/// Writes one frame: the payload's byte length in decimal, a newline, the
/// payload, a newline.
///
/// # Errors
///
/// Returns an error if the underlying writer fails.
pub fn write_frame(writer: &mut impl Write, payload: &str) -> Result<()> {
    write_frame_bytes(writer, payload.as_bytes())
}

/// [`write_frame`] over raw bytes. Only the fault injector needs this — a
/// `corrupt` fault ships a deliberately non-UTF-8 payload — but the frame
/// layout is identical.
fn write_frame_bytes(writer: &mut impl Write, payload: &[u8]) -> Result<()> {
    writeln!(writer, "{}", payload.len())
        .and_then(|()| writer.write_all(payload))
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|error| io_error("write frame", &error))
}

/// Upper bound on one frame's payload (64 MiB). A length prefix above this
/// is treated as a corrupted stream and rejected *before* any allocation —
/// a stray byte in the prefix must produce a frame error, not an
/// arbitrarily large buffer request (or an overflowing `length + 1`).
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Parses a frame's length line: a decimal byte count of at most
/// [`MAX_FRAME_LEN`]. Shared by the blocking [`read_frame`] and the serve
/// daemon's incremental decoder so both validate prefixes identically —
/// before any allocation.
pub(crate) fn parse_frame_length(length_line: &str) -> Result<usize> {
    length_line
        .trim()
        .parse::<u64>()
        .ok()
        .and_then(|length| usize::try_from(length).ok())
        .filter(|&length| length <= MAX_FRAME_LEN)
        .ok_or_else(|| MesError::Serialization {
            reason: format!(
                "frame length {:?} is not a decimal byte count of at most {MAX_FRAME_LEN}",
                length_line.trim()
            ),
        })
}

/// Reads one frame, returning `None` on a clean EOF before the length line.
///
/// # Errors
///
/// Returns [`MesError::Serialization`] on malformed length lines (not a
/// decimal, overflowing, or above [`MAX_FRAME_LEN`]), truncated or
/// unterminated payloads, and non-UTF-8 payloads; [`MesError::Host`] when
/// the underlying reader fails.
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<String>> {
    let mut length_line = String::new();
    let read = reader
        .read_line(&mut length_line)
        .map_err(|error| io_error("read frame length", &error))?;
    if read == 0 {
        return Ok(None);
    }
    let length = parse_frame_length(&length_line)?;
    // Payload plus the trailing newline.
    let mut payload = vec![0u8; length + 1];
    reader
        .read_exact(&mut payload)
        .map_err(|error| io_error("read frame payload", &error))?;
    if payload.pop() != Some(b'\n') {
        return Err(MesError::Serialization {
            reason: "frame payload not terminated by newline".into(),
        });
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| MesError::Serialization {
            reason: "frame payload is not UTF-8".into(),
        })
}

/// The `sweepd --worker` loop: one persistent [`SweepService`] answering
/// spec frames with result frames until EOF or an in-band shutdown frame.
///
/// `pool` is the worker's *intra-process* executor width; the sharding
/// driver passes 1 so that all parallelism under measurement is
/// process-level, while `0` means the machine-sized default pool.
///
/// Besides spec documents, the loop understands control frames (see
/// [`mes_stats::control`]): `{"control": "shutdown"}` is acknowledged with
/// `{"ok": "shutdown"}` and ends the loop cleanly, so orchestrators can
/// retire a worker explicitly instead of relying on closing its stdin; any
/// other verb is answered with an in-band `{"error": …}` frame and the loop
/// continues.
///
/// # Errors
///
/// Returns an error only for I/O transport failures (broken pipe, failing
/// reader). Shard-level failures *and* malformed frames are reported
/// in-band as `{"error": …}` frames; a framing error additionally ends the
/// loop cleanly, because a stream whose length prefix cannot be trusted
/// cannot be resynchronized.
pub fn worker_loop(input: &mut impl BufRead, output: &mut impl Write, pool: usize) -> Result<()> {
    worker_loop_with_faults(input, output, pool, None)
}

/// [`worker_loop`] with a scripted [`FaultPlan`]: frame ordinals count every
/// successfully read frame, `crash` and `stall` fire before the frame is
/// served (control frames included), and `truncate`/`corrupt` damage the
/// answer to a spec frame. `sweepd --worker` reads the plan from
/// [`FAULT_PLAN_ENV`]; production fan-outs pass `None` and behave exactly
/// like [`worker_loop`].
///
/// # Errors
///
/// Same conditions as [`worker_loop`].
pub fn worker_loop_with_faults(
    input: &mut impl BufRead,
    output: &mut impl Write,
    pool: usize,
    faults: Option<&FaultPlan>,
) -> Result<()> {
    let mut service = match pool {
        0 => SweepService::with_default_pool(),
        width => SweepService::new(RoundExecutor::new(width)),
    };
    let mut frame: u64 = 0;
    loop {
        let spec_json = match read_frame(input) {
            Ok(Some(spec_json)) => spec_json,
            Ok(None) => return Ok(()),
            Err(MesError::Serialization { reason }) => {
                let payload =
                    Json::object([("error", Json::string(format!("malformed frame: {reason}")))])
                        .render();
                write_frame(output, &payload)?;
                return Ok(());
            }
            Err(error) => return Err(error),
        };
        let scripted = faults.and_then(|plan| plan.fault_at(frame));
        let this_frame = frame;
        frame += 1;
        match scripted {
            // Crash: die before answering — the driver sees EOF, exactly as
            // if the process had been killed mid-shard.
            Some(FaultKind::Crash) => return Ok(()),
            // Stall: stop serving without exiting — the driver's lease
            // deadline is the only thing that can end this.
            Some(FaultKind::Stall) => {
                stall();
                return Ok(());
            }
            _ => {}
        }
        if let Some(verb) = Json::parse(&spec_json)
            .ok()
            .and_then(|document| mes_stats::control_verb(&document).map(str::to_string))
        {
            match verb.as_str() {
                mes_stats::CONTROL_SHUTDOWN => {
                    write_frame(output, &mes_stats::control_ack(&verb).render())?;
                    return Ok(());
                }
                other => {
                    let payload = Json::object([(
                        "error",
                        Json::string(format!("unsupported control verb {other:?}")),
                    )])
                    .render();
                    write_frame(output, &payload)?;
                    continue;
                }
            }
        }
        let outcome = ExperimentSpec::from_json_str(&spec_json)
            .and_then(|spec| service.submit(&spec))
            .map(|result| result.to_json_string());
        let payload = match outcome {
            Ok(result_json) => result_json,
            Err(error) => Json::object([("error", Json::string(error.to_string()))]).render(),
        };
        match scripted {
            // Truncate: promise the full payload, deliver half, and die —
            // the driver's frame reader hits EOF mid-payload.
            Some(FaultKind::Truncate) => {
                let bytes = payload.as_bytes();
                writeln!(output, "{}", bytes.len())
                    .and_then(|()| output.write_all(&bytes[..bytes.len() / 2]))
                    .and_then(|()| output.flush())
                    .map_err(|error| io_error("write truncated frame", &error))?;
                return Ok(());
            }
            // Corrupt: a well-framed answer with one seeded byte forced to
            // 0xFF — the worker stays alive, babbling.
            Some(FaultKind::Corrupt) => {
                let plan = faults.expect("a scripted fault implies a plan");
                write_frame_bytes(output, &plan.corrupt_payload(this_frame, &payload))?;
            }
            _ => write_frame(output, &payload)?,
        }
    }
}

/// A stalled worker sleeps here until killed. The bound (10 minutes) only
/// exists so a stall that escapes supervision cannot wedge a machine
/// forever; the supervisor's lease deadline fires orders of magnitude
/// earlier and kills the process.
fn stall() {
    for _ in 0..24_000 {
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A shard that exhausted its retry budget. Quarantine is reported in-band
/// on [`ShardRun::recovery`]; a quarantined shard is never silently dropped
/// from the merged document — [`ShardRun::result`] becomes `None` instead,
/// because a partial merge would not be byte-comparable to anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedShard {
    /// The shard's id in split order.
    pub shard_id: usize,
    /// How many attempts it consumed (== the configured budget).
    pub attempts: usize,
    /// The failure that ended the final attempt.
    pub last_error: String,
}

/// What the supervisor had to do to finish — or give up on — a fan-out.
/// All zeros/empty on a fault-free run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shard attempts re-queued after a failed attempt.
    pub retries: u64,
    /// Worker processes spawned to replace crashed/killed ones (the initial
    /// pool is not counted).
    pub respawns: u64,
    /// Shards that exhausted [`SupervisorConfig::max_attempts`], in shard-id
    /// order.
    pub quarantined: Vec<QuarantinedShard>,
}

/// Supervision policy for [`run_sharded_with`]: retry budget, lease
/// deadlines, and the (test-only) fault injection knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Attempts each shard may consume before quarantine (≥ 1).
    pub max_attempts: usize,
    /// Flat floor of every shard's lease deadline, milliseconds — covers
    /// process spawn, service warm-up, and scheduling noise.
    pub deadline_floor_ms: u64,
    /// Additional lease milliseconds granted per millisecond of the shard's
    /// summed nominal plan duration (the simulated run length that dominates
    /// a shard's wall clock).
    pub deadline_per_nominal_ms: f64,
    /// Fault plan injected into spawned workers via [`FAULT_PLAN_ENV`].
    /// `None` *clears* the variable on workers, so an ambient value never
    /// leaks into a production fan-out.
    pub fault_plan: Option<FaultPlan>,
    /// Whether respawned workers inherit the fault plan too. `false` (the
    /// default) models transient faults: a replacement worker is healthy.
    /// `true` models a persistent fault, which is how the chaos suite drives
    /// shards into quarantine.
    pub fault_respawns: bool,
    /// Explicit `sweepd` binary path, overriding [`locate_sweepd`].
    pub sweepd: Option<PathBuf>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_attempts: 3,
            deadline_floor_ms: 30_000,
            deadline_per_nominal_ms: 20.0,
            fault_plan: None,
            fault_respawns: false,
            sweepd: None,
        }
    }
}

impl SupervisorConfig {
    /// The lease deadline for a shard whose plans sum to `nominal_ms`
    /// milliseconds of simulated run length:
    /// `deadline_floor_ms + deadline_per_nominal_ms × nominal_ms`.
    pub fn shard_deadline(&self, nominal_ms: f64) -> Duration {
        let extra = (self.deadline_per_nominal_ms * nominal_ms).max(0.0);
        Duration::from_millis(self.deadline_floor_ms.saturating_add(extra as u64))
    }
}

/// What one sharded fan-out run measured, besides the merged result.
#[derive(Debug)]
pub struct ShardRun {
    /// The merged full-grid result (bit-identical to the unsharded run), or
    /// `None` when shards were quarantined — see [`ShardRun::merged`].
    pub result: Option<ExperimentResult>,
    /// Number of shards the grid split into.
    pub shards: usize,
    /// Number of `sweepd` worker driver threads (== the initial pool size).
    pub workers: usize,
    /// Driver-side wall clock of each shard's *successful* attempt
    /// (dispatch → verified result), milliseconds, indexed by shard id;
    /// `0.0` for quarantined shards.
    pub shard_walls_ms: Vec<f64>,
    /// Wall clock of the whole fan-out (spawn → last result), milliseconds.
    pub makespan_ms: f64,
    /// Retries, respawns, and quarantined shards the run accumulated.
    pub recovery: RecoveryReport,
}

impl ShardRun {
    /// The merged result, or the quarantine report as an error when any
    /// shard exhausted its retry budget.
    ///
    /// # Errors
    ///
    /// Returns [`MesError::Simulation`] naming every quarantined shard, its
    /// attempt count, and its last failure.
    pub fn merged(&self) -> Result<&ExperimentResult> {
        match &self.result {
            Some(result) => Ok(result),
            None => {
                let summary = self
                    .recovery
                    .quarantined
                    .iter()
                    .map(|entry| {
                        format!(
                            "shard {} after {} attempts ({})",
                            entry.shard_id, entry.attempts, entry.last_error
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("; ");
                Err(MesError::Simulation {
                    reason: format!(
                        "{} shard(s) quarantined: {summary}",
                        self.recovery.quarantined.len()
                    ),
                })
            }
        }
    }

    /// Sum of the per-shard driver-side wall clocks, milliseconds.
    pub fn sum_shard_wall_ms(&self) -> f64 {
        self.shard_walls_ms.iter().sum()
    }

    /// Average number of shards in flight over the makespan:
    /// Σ per-shard wall / makespan. On a machine with at least as many free
    /// cores as workers this equals the true parallel speedup; on fewer
    /// cores it still measures how saturated the worker pool was (a pipeline
    /// that serializes on the driver scores ~1, a saturated 4-worker pool
    /// scores ~4).
    pub fn scaling_efficiency_x(&self) -> f64 {
        if self.makespan_ms > 0.0 {
            self.sum_shard_wall_ms() / self.makespan_ms
        } else {
            0.0
        }
    }
}

/// Environment variable overriding which `sweepd` binary [`locate_sweepd`]
/// (and the chaos suite) runs. CI sets it to the explicitly built binary.
pub const SWEEPD_BIN_ENV: &str = "MES_SWEEPD_BIN";

/// Locates the `sweepd` binary: [`SWEEPD_BIN_ENV`] when set, otherwise a
/// sibling of the current executable (also checking the parent directory,
/// where cargo places bins relative to `deps/` test executables).
///
/// # Errors
///
/// Returns an error if no candidate exists.
pub fn locate_sweepd() -> Result<PathBuf> {
    if let Ok(path) = std::env::var(SWEEPD_BIN_ENV) {
        return Ok(PathBuf::from(path));
    }
    let exe = std::env::current_exe().map_err(|error| io_error("locate current exe", &error))?;
    let name = format!("sweepd{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent();
    while let Some(candidate_dir) = dir {
        let candidate = candidate_dir.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        dir = candidate_dir.parent();
    }
    Err(MesError::InvalidConfig {
        reason: format!(
            "sweepd binary not found next to {} (set MES_SWEEPD_BIN)",
            exe.display()
        ),
    })
}

/// Splits `spec` into ~`target_shards` shard specs, fans them out across
/// `workers` supervised `sweepd --worker` processes (single-threaded each,
/// so all measured parallelism is process-level), and merges the results.
///
/// Equivalent to [`run_sharded_with`] under [`SupervisorConfig::default`],
/// except that quarantined shards are turned into an error here: callers of
/// this convenience entry point expect a complete document or a failure,
/// nothing in between.
///
/// # Errors
///
/// Returns an error if the spec fails to compile or split, no worker can be
/// spawned, any shard exhausts its retry budget, or the merge's provenance
/// checks reject a result.
pub fn run_sharded(
    spec: &ExperimentSpec,
    workers: usize,
    target_shards: usize,
) -> Result<ShardRun> {
    let run = run_sharded_with(spec, workers, target_shards, &SupervisorConfig::default())?;
    run.merged()?;
    Ok(run)
}

/// [`run_sharded`] under an explicit [`SupervisorConfig`].
///
/// Shards are *leased* from a shared queue by one driver thread per worker;
/// each driver owns its child process and a reader thread, classifies
/// faults (crash / hang / babble — see the module docs), respawns workers,
/// and requeues failed shards until they merge or exhaust
/// [`SupervisorConfig::max_attempts`]. Quarantined shards are reported on
/// [`ShardRun::recovery`] with [`ShardRun::result`] set to `None`; they are
/// **not** an error from this entry point so chaos harnesses can assert on
/// the report itself.
///
/// Every child is killed and reaped on every exit path — including driver
/// panics, which are converted to [`MesError`] rather than aborting the
/// process — so a failed run leaks no `sweepd` zombies.
///
/// # Errors
///
/// Returns an error if the spec fails to compile or split, a worker cannot
/// be spawned, a driver thread panics, or the final merge rejects the
/// collected results.
pub fn run_sharded_with(
    spec: &ExperimentSpec,
    workers: usize,
    target_shards: usize,
    config: &SupervisorConfig,
) -> Result<ShardRun> {
    if config.max_attempts == 0 {
        return Err(MesError::InvalidConfig {
            reason: "SupervisorConfig::max_attempts must be at least 1".into(),
        });
    }
    let sharded = ShardedExperiment::split(spec, target_shards)?;
    let shard_count = sharded.shards().len();
    if shard_count == 0 {
        return Ok(ShardRun {
            result: Some(sharded.merge(&[])?),
            shards: 0,
            workers: 0,
            shard_walls_ms: Vec::new(),
            makespan_ms: 0.0,
            recovery: RecoveryReport::default(),
        });
    }
    let sweepd = match &config.sweepd {
        Some(path) => path.clone(),
        None => locate_sweepd()?,
    };
    let worker_count = workers.clamp(1, shard_count);

    let shard_specs: Vec<String> = sharded
        .shards()
        .iter()
        .map(|shard| shard.spec().to_json_string())
        .collect();
    // Lease deadlines: the shard's summed nominal plan duration is the
    // simulated run length that dominates its wall clock, scaled and
    // floored per the config.
    let deadlines: Vec<Duration> = sharded
        .shards()
        .iter()
        .map(|shard| {
            let nominal_us: u64 = shard
                .indices()
                .iter()
                .map(|&position| {
                    sharded.compiled().plans()[position]
                        .nominal_duration()
                        .as_u64()
                })
                .sum();
            config.shard_deadline(nominal_us as f64 / 1e3)
        })
        .collect();

    let supervisor = Supervisor {
        config,
        sweepd: &sweepd,
        sharded: &sharded,
        shard_specs: &shard_specs,
        deadlines: &deadlines,
        state: Mutex::new(SupervisorState {
            queue: (0..shard_count).collect(),
            attempts: vec![0; shard_count],
            unfinished: shard_count,
            results: (0..shard_count).map(|_| None).collect(),
            quarantined: Vec::new(),
            fatal: None,
        }),
        ready: Condvar::new(),
        retries: AtomicU64::new(0),
        respawns: AtomicU64::new(0),
    };

    let started = Instant::now();
    let mut first_error: Option<MesError> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..worker_count)
            .map(|_| scope.spawn(|| supervisor.drive()))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(error)) => {
                    first_error.get_or_insert(error);
                }
                Err(panic) => {
                    // A panicking driver fails the *run*, not the process;
                    // its Worker guard already killed and reaped the child,
                    // and its claim guard requeued the shard it held.
                    supervisor.set_fatal(panic_error(&panic));
                    first_error.get_or_insert(panic_error(&panic));
                }
            }
        }
    });
    let makespan_ms = started.elapsed().as_secs_f64() * 1e3;

    let retries = supervisor.retries.load(Ordering::Relaxed);
    let respawns = supervisor.respawns.load(Ordering::Relaxed);
    let state = supervisor
        .state
        .into_inner()
        .expect("supervisor state lock");
    if let Some(error) = first_error.or(state.fatal) {
        return Err(error);
    }
    let mut shard_walls_ms = vec![0.0; shard_count];
    let mut results = Vec::with_capacity(shard_count);
    for (shard_id, slot) in state.results.into_iter().enumerate() {
        if let Some((result, wall_ms)) = slot {
            shard_walls_ms[shard_id] = wall_ms;
            results.push((shard_id, result));
        }
    }
    let mut quarantined = state.quarantined;
    quarantined.sort_by_key(|entry| entry.shard_id);
    let result = if quarantined.is_empty() {
        Some(sharded.merge(&results)?)
    } else {
        None
    };
    Ok(ShardRun {
        result,
        shards: shard_count,
        workers: worker_count,
        shard_walls_ms,
        makespan_ms,
        recovery: RecoveryReport {
            retries,
            respawns,
            quarantined,
        },
    })
}

/// Renders a driver-thread panic payload as a [`MesError`] instead of
/// letting it abort the process.
fn panic_error(panic: &(dyn std::any::Any + Send)) -> MesError {
    let reason = panic
        .downcast_ref::<&str>()
        .map(|text| (*text).to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".into());
    MesError::Simulation {
        reason: format!("shard driver thread panicked: {reason}"),
    }
}

/// One supervised worker process: the child, its stdin, and a reader thread
/// forwarding answer frames over a channel so the driver can wait with a
/// deadline. Dropping a `Worker` kills and reaps the child and joins the
/// reader — the guard that makes every exit path (including panics)
/// zombie-free.
struct Worker {
    child: Child,
    stdin: Option<ChildStdin>,
    frames: Receiver<Result<Option<String>>>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl Worker {
    fn spawn(sweepd: &Path, fault_plan: Option<&FaultPlan>) -> Result<Worker> {
        let mut command = Command::new(sweepd);
        command
            .args(["--worker", "--pool", "1"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        match fault_plan {
            Some(plan) => {
                command.env(FAULT_PLAN_ENV, plan.render());
            }
            None => {
                // Never let an ambient fault plan leak into a fan-out that
                // did not script one.
                command.env_remove(FAULT_PLAN_ENV);
            }
        }
        let mut child = command
            .spawn()
            .map_err(|error| io_error("spawn sweepd worker", &error))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (frames_tx, frames) = mpsc::channel();
        let reader = std::thread::spawn(move || {
            let mut stdout = BufReader::new(stdout);
            loop {
                let frame = read_frame(&mut stdout);
                let stop = !matches!(frame, Ok(Some(_)));
                if frames_tx.send(frame).is_err() || stop {
                    break;
                }
            }
        });
        Ok(Worker {
            child,
            stdin: Some(stdin),
            frames,
            reader: Some(reader),
        })
    }

    fn stdin(&mut self) -> &mut ChildStdin {
        self.stdin.as_mut().expect("live worker keeps its stdin")
    }

    /// Clean shutdown of an *idle* worker: EOF on stdin ends its loop, the
    /// exit status is reaped, and `Drop`'s kill becomes a no-op. Only
    /// called on workers whose last lease completed — a faulted worker is
    /// dropped (killed) instead.
    fn retire(mut self) {
        drop(self.stdin.take());
        let _ = self.child.wait();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        drop(self.stdin.take());
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            // The child is dead, so the reader sees EOF promptly.
            let _ = reader.join();
        }
    }
}

/// State shared by all driver threads, guarded by one mutex: the lease
/// queue, per-shard attempt counts, and the run's outcome.
struct SupervisorState {
    queue: VecDeque<usize>,
    attempts: Vec<usize>,
    /// Shards neither completed nor quarantined yet (queued *or* leased).
    unfinished: usize,
    results: Vec<Option<(ExperimentResult, f64)>>,
    quarantined: Vec<QuarantinedShard>,
    fatal: Option<MesError>,
}

struct Supervisor<'run> {
    config: &'run SupervisorConfig,
    sweepd: &'run Path,
    sharded: &'run ShardedExperiment,
    shard_specs: &'run [String],
    deadlines: &'run [Duration],
    state: Mutex<SupervisorState>,
    ready: Condvar,
    retries: AtomicU64,
    respawns: AtomicU64,
}

/// How one lease attempt ended.
enum Verdict {
    Done,
    Retry { reason: String, respawn: bool },
}

/// A worker's answer frame, classified.
enum WorkerAnswer {
    /// A parseable result document (provenance still unchecked).
    Result(Box<ExperimentResult>),
    /// An in-band `{"error": …}` report: the *shard* failed, the worker is
    /// healthy.
    ShardError(String),
    /// Anything else: the worker cannot be trusted.
    Babble(String),
}

fn classify_answer(payload: &str) -> WorkerAnswer {
    match Json::parse(payload) {
        Ok(document) => {
            if let Some(error) = document.get("error") {
                return WorkerAnswer::ShardError(
                    error.as_str().unwrap_or("unknown error").to_string(),
                );
            }
            match ExperimentResult::from_json_str(payload) {
                Ok(result) => WorkerAnswer::Result(Box::new(result)),
                Err(error) => WorkerAnswer::Babble(format!("not a result document: {error}")),
            }
        }
        Err(error) => WorkerAnswer::Babble(format!("unparseable answer frame: {error}")),
    }
}

/// Requeues a leased shard if the driver unwinds mid-attempt (a panic
/// between lease and verdict), so the other drivers can still finish the
/// run instead of waiting forever on a shard nobody holds.
struct ClaimGuard<'drive, 'run> {
    supervisor: &'drive Supervisor<'run>,
    shard_id: usize,
    armed: bool,
}

impl Drop for ClaimGuard<'_, '_> {
    fn drop(&mut self) {
        if self.armed {
            self.supervisor
                .fail_attempt(self.shard_id, "shard driver panicked mid-attempt".into());
        }
    }
}

impl Supervisor<'_> {
    /// Driver-thread body: lease shards until the run is decided.
    fn drive(&self) -> Result<()> {
        let mut worker: Option<Worker> = None;
        let mut spawned_before = false;
        let outcome = self.drive_leases(&mut worker, &mut spawned_before);
        if let Some(live) = worker.take() {
            if outcome.is_ok() {
                // The worker is idle (its last lease completed): let it
                // exit by itself and reap it.
                live.retire();
            }
            // On the error path `live` is dropped here: killed and reaped.
        }
        outcome
    }

    fn drive_leases(&self, worker: &mut Option<Worker>, spawned_before: &mut bool) -> Result<()> {
        while let Some(shard_id) = self.next_shard() {
            let mut claim = ClaimGuard {
                supervisor: self,
                shard_id,
                armed: true,
            };
            if worker.is_none() {
                let plan = if !*spawned_before || self.config.fault_respawns {
                    self.config.fault_plan.as_ref()
                } else {
                    None
                };
                match Worker::spawn(self.sweepd, plan) {
                    Ok(spawned) => {
                        if *spawned_before {
                            self.respawns.fetch_add(1, Ordering::Relaxed);
                        }
                        *spawned_before = true;
                        *worker = Some(spawned);
                    }
                    Err(error) => {
                        // No spawnable binary means nobody will ever serve
                        // this shard: put it back untouched and fail the
                        // whole run.
                        claim.armed = false;
                        self.requeue_claim(shard_id);
                        self.set_fatal(error.clone());
                        return Err(error);
                    }
                }
            }
            let live = worker.as_mut().expect("worker spawned above");
            let verdict = self.attempt(live, shard_id);
            claim.armed = false;
            if let Verdict::Retry { reason, respawn } = verdict {
                if respawn {
                    // Kill and reap the faulted worker; the next lease
                    // spawns a fresh one.
                    *worker = None;
                }
                self.fail_attempt(shard_id, reason);
            }
        }
        Ok(())
    }

    /// One lease: dispatch the shard, wait out the deadline, classify.
    fn attempt(&self, worker: &mut Worker, shard_id: usize) -> Verdict {
        let dispatched = Instant::now();
        if let Err(error) = write_frame(worker.stdin(), &self.shard_specs[shard_id]) {
            return Verdict::Retry {
                reason: format!("worker rejected the shard dispatch: {error}"),
                respawn: true,
            };
        }
        match worker.frames.recv_timeout(self.deadlines[shard_id]) {
            Ok(Ok(Some(payload))) => {
                let wall_ms = dispatched.elapsed().as_secs_f64() * 1e3;
                match classify_answer(&payload) {
                    WorkerAnswer::Result(result) => {
                        // Provenance at receipt: a result carrying foreign
                        // rounds is babble, not a mergeable shard.
                        match self.sharded.verify_shard_result(shard_id, &result) {
                            Ok(()) => {
                                self.complete(shard_id, *result, wall_ms);
                                Verdict::Done
                            }
                            Err(error) => Verdict::Retry {
                                reason: format!("babbling worker: {error}"),
                                respawn: true,
                            },
                        }
                    }
                    WorkerAnswer::ShardError(reason) => Verdict::Retry {
                        reason: format!("shard failed in its worker: {reason}"),
                        respawn: false,
                    },
                    WorkerAnswer::Babble(reason) => Verdict::Retry {
                        reason: format!("babbling worker: {reason}"),
                        respawn: true,
                    },
                }
            }
            Ok(Ok(None)) => Verdict::Retry {
                reason: "worker exited (EOF) before answering".into(),
                respawn: true,
            },
            Ok(Err(error)) => Verdict::Retry {
                reason: format!("unreadable worker stream: {error}"),
                respawn: true,
            },
            Err(RecvTimeoutError::Timeout) => Verdict::Retry {
                reason: format!(
                    "lease deadline of {:?} expired; hung worker killed",
                    self.deadlines[shard_id]
                ),
                respawn: true,
            },
            Err(RecvTimeoutError::Disconnected) => Verdict::Retry {
                reason: "worker reader ended without delivering a frame".into(),
                respawn: true,
            },
        }
    }

    /// Blocks until a shard can be leased; `None` once the run is decided
    /// (all shards completed/quarantined, or a fatal error is set).
    fn next_shard(&self) -> Option<usize> {
        let mut state = self.state.lock().expect("supervisor state lock");
        loop {
            if state.fatal.is_some() {
                return None;
            }
            if let Some(shard_id) = state.queue.pop_front() {
                return Some(shard_id);
            }
            if state.unfinished == 0 {
                return None;
            }
            state = self.ready.wait(state).expect("supervisor state lock");
        }
    }

    fn complete(&self, shard_id: usize, result: ExperimentResult, wall_ms: f64) {
        let mut state = self.state.lock().expect("supervisor state lock");
        state.results[shard_id] = Some((result, wall_ms));
        state.unfinished -= 1;
        drop(state);
        self.ready.notify_all();
    }

    /// Books a failed attempt: requeue within budget, quarantine beyond it.
    fn fail_attempt(&self, shard_id: usize, reason: String) {
        let mut state = self.state.lock().expect("supervisor state lock");
        state.attempts[shard_id] += 1;
        if state.attempts[shard_id] >= self.config.max_attempts {
            let attempts = state.attempts[shard_id];
            state.quarantined.push(QuarantinedShard {
                shard_id,
                attempts,
                last_error: reason,
            });
            state.unfinished -= 1;
        } else {
            self.retries.fetch_add(1, Ordering::Relaxed);
            state.queue.push_back(shard_id);
        }
        drop(state);
        self.ready.notify_all();
    }

    /// Puts a leased shard back without charging an attempt (the attempt
    /// never started — e.g. the worker could not be spawned).
    fn requeue_claim(&self, shard_id: usize) {
        let mut state = self.state.lock().expect("supervisor state lock");
        state.queue.push_front(shard_id);
        drop(state);
        self.ready.notify_all();
    }

    fn set_fatal(&self, error: MesError) {
        let mut state = self.state.lock().expect("supervisor state lock");
        state.fatal.get_or_insert(error);
        drop(state);
        self.ready.notify_all();
    }
}

/// The PR 6 unsupervised fan-out, kept as the happy-path control for the
/// `fault_free_overhead_x` gate in `measured_parallel`: identical wire
/// protocol and shard split, but the driver blocks directly on each
/// worker's stdout — no reader threads, no deadlines, no retry. Returns the
/// merged result and the fan-out makespan in milliseconds.
///
/// Errors still kill and reap every child (no zombies), but nothing is
/// retried: any fault fails the run.
///
/// # Errors
///
/// Returns an error if the spec fails to compile or split, a worker cannot
/// be spawned or fails a shard, a frame is malformed, or the merge rejects
/// a result.
pub fn run_sharded_baseline(
    spec: &ExperimentSpec,
    workers: usize,
    target_shards: usize,
) -> Result<(ExperimentResult, f64)> {
    let sharded = ShardedExperiment::split(spec, target_shards)?;
    let shard_count = sharded.shards().len();
    if shard_count == 0 {
        return Ok((sharded.merge(&[])?, 0.0));
    }
    let sweepd = locate_sweepd()?;
    let worker_count = workers.clamp(1, shard_count);
    let shard_specs: Vec<String> = sharded
        .shards()
        .iter()
        .map(|shard| shard.spec().to_json_string())
        .collect();
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, ExperimentResult)>> =
        Mutex::new(Vec::with_capacity(shard_count));

    /// Kills and reaps the child when the driver leaves early (both are
    /// no-ops after a clean `wait`).
    struct Reap(Child);
    impl Drop for Reap {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }

    let started = Instant::now();
    let mut first_error: Option<MesError> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..worker_count)
            .map(|_| {
                scope.spawn(|| -> Result<()> {
                    let child = Command::new(&sweepd)
                        .args(["--worker", "--pool", "1"])
                        .stdin(Stdio::piped())
                        .stdout(Stdio::piped())
                        .spawn()
                        .map_err(|error| io_error("spawn sweepd worker", &error))?;
                    let mut guard = Reap(child);
                    let mut stdin = guard.0.stdin.take().expect("piped stdin");
                    let mut stdout = BufReader::new(guard.0.stdout.take().expect("piped stdout"));
                    loop {
                        let shard_id = cursor.fetch_add(1, Ordering::Relaxed);
                        if shard_id >= shard_specs.len() {
                            break;
                        }
                        write_frame(&mut stdin, &shard_specs[shard_id])?;
                        let payload = read_frame(&mut stdout)?.ok_or_else(|| MesError::Host {
                            operation: format!(
                                "sweepd worker exited before answering shard {shard_id}"
                            ),
                            errno: None,
                        })?;
                        let result = parse_result_frame(&payload, shard_id)?;
                        collected
                            .lock()
                            .expect("collector lock")
                            .push((shard_id, result));
                    }
                    drop(stdin); // EOF: the worker loop ends cleanly.
                    guard
                        .0
                        .wait()
                        .map_err(|error| io_error("wait for sweepd worker", &error))?;
                    Ok(())
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(error)) => {
                    first_error.get_or_insert(error);
                }
                Err(panic) => {
                    first_error.get_or_insert(panic_error(&panic));
                }
            }
        }
    });
    if let Some(error) = first_error {
        return Err(error);
    }
    let makespan_ms = started.elapsed().as_secs_f64() * 1e3;
    let results = collected.into_inner().expect("collector lock");
    Ok((sharded.merge(&results)?, makespan_ms))
}

/// Parses a worker's answer frame: a result document, or an in-band
/// `{"error": …}` report surfaced as the shard's failure.
fn parse_result_frame(payload: &str, shard_id: usize) -> Result<ExperimentResult> {
    if let Ok(json) = Json::parse(payload) {
        if let Some(error) = json.get("error") {
            return Err(MesError::Simulation {
                reason: format!(
                    "shard {shard_id} failed in its worker: {}",
                    error.as_str().unwrap_or("unknown error")
                ),
            });
        }
    }
    ExperimentResult::from_json_str(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_including_empty_and_multiline_payloads() {
        let mut wire = Vec::new();
        for payload in ["", "{\"a\": 1}", "line one\nline two\n", "π ≠ 3"] {
            write_frame(&mut wire, payload).unwrap();
        }
        let mut reader = Cursor::new(wire);
        for payload in ["", "{\"a\": 1}", "line one\nline two\n", "π ≠ 3"] {
            assert_eq!(read_frame(&mut reader).unwrap().as_deref(), Some(payload));
        }
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(read_frame(&mut Cursor::new(b"not a number\n".to_vec())).is_err());
        assert!(read_frame(&mut Cursor::new(b"10\nshort\n".to_vec())).is_err());
        // Length that cuts the payload's newline off.
        assert!(read_frame(&mut Cursor::new(b"3\nabcd\n".to_vec())).is_err());
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_before_allocating() {
        // Each of these used to be an allocation request (or an overflowing
        // `length + 1`); all must fail parsing instead, and quickly.
        let hostile = [
            "18446744073709551615",           // u64::MAX: `length + 1` overflow
            "18446744073709551616",           // > u64::MAX: parse overflow
            "999999999999999999999999999999", // way past u64
            "-1",                             // signed
            "67108865",                       // MAX_FRAME_LEN + 1
            "1e9",                            // not a decimal byte count
        ];
        for prefix in hostile {
            let mut wire = Cursor::new(format!("{prefix}\n").into_bytes());
            let error = read_frame(&mut wire).expect_err(prefix);
            assert!(
                matches!(error, MesError::Serialization { .. }),
                "{prefix}: {error}"
            );
        }
        // The cap itself is fine (given enough payload).
        let mut payload = vec![b'x'; MAX_FRAME_LEN + 1];
        payload[MAX_FRAME_LEN] = b'\n';
        let mut wire = format!("{MAX_FRAME_LEN}\n").into_bytes();
        wire.extend_from_slice(&payload);
        assert!(read_frame(&mut Cursor::new(wire)).unwrap().is_some());
    }

    #[test]
    fn worker_loop_reports_framing_errors_in_band_and_stops() {
        let mut output = Vec::new();
        worker_loop(
            &mut Cursor::new(b"99999999999999999999\ngarbage".to_vec()),
            &mut output,
            1,
        )
        .expect("a framing error is answered, not returned");
        let mut reader = Cursor::new(output);
        let answer = read_frame(&mut reader).unwrap().unwrap();
        let error = Json::parse(&answer).unwrap();
        assert!(
            error
                .get("error")
                .and_then(|reason| reason.as_str().ok())
                .is_some_and(|reason| reason.contains("malformed frame")),
            "expected an in-band framing error, got {answer}"
        );
        assert_eq!(read_frame(&mut reader).unwrap(), None, "loop must stop");
    }

    #[test]
    fn number_tokens_survive_a_shard_frame_round_trip() {
        // The shard protocol relies on `mes_stats::json` preserving number
        // tokens exactly: a worker echoing a document must not rewrite
        // `1e308` as `1.0e308` or collapse `-0.0`, or merged provenance
        // fingerprints would differ between sharded and unsharded runs.
        let document = r#"{"a": 1e308, "b": -0.0, "c": 0.30000000000000004, "d": 5e-324, "e": 123456789012345678901234567890}"#;
        let rendered = Json::parse(document).unwrap().render();
        let mut wire = Vec::new();
        write_frame(&mut wire, &rendered).unwrap();
        let received = read_frame(&mut Cursor::new(wire)).unwrap().unwrap();
        assert_eq!(received, rendered);
        assert_eq!(Json::parse(&received).unwrap().render(), rendered);
        for token in ["1e308", "-0.0", "0.30000000000000004", "5e-324"] {
            assert!(rendered.contains(token), "{token} rewritten in {rendered}");
        }
    }

    #[test]
    fn worker_loop_answers_specs_and_reports_errors_in_band() {
        use mes_types::Scenario;
        let spec = ExperimentSpec::scenario_table("worker-t", Scenario::CrossVm, 24, 9);
        let mut input = Vec::new();
        write_frame(&mut input, &spec.to_json_string()).unwrap();
        write_frame(&mut input, "this is not a spec").unwrap();
        let mut output = Vec::new();
        worker_loop(&mut Cursor::new(input), &mut output, 1).unwrap();

        let mut reader = Cursor::new(output);
        let first = read_frame(&mut reader).unwrap().unwrap();
        let result = ExperimentResult::from_json_str(&first).unwrap();
        let direct = SweepService::new(RoundExecutor::sequential())
            .submit(&spec)
            .unwrap();
        assert_eq!(result, direct, "worker answer must match a local run");
        let second = read_frame(&mut reader).unwrap().unwrap();
        assert!(
            Json::parse(&second).unwrap().get("error").is_some(),
            "a malformed spec must produce an in-band error frame: {second}"
        );
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn worker_loop_acknowledges_shutdown_and_stops_before_later_frames() {
        use mes_types::Scenario;
        let spec = ExperimentSpec::scenario_table("pre-shutdown", Scenario::Local, 16, 3);
        let mut input = Vec::new();
        write_frame(&mut input, &spec.to_json_string()).unwrap();
        write_frame(
            &mut input,
            &mes_stats::control_frame(mes_stats::CONTROL_SHUTDOWN).render(),
        )
        .unwrap();
        // A frame after the shutdown must never be answered (or executed).
        write_frame(&mut input, &spec.to_json_string()).unwrap();
        let mut output = Vec::new();
        worker_loop(&mut Cursor::new(input), &mut output, 1).unwrap();

        let mut reader = Cursor::new(output);
        let first = read_frame(&mut reader).unwrap().unwrap();
        assert!(ExperimentResult::from_json_str(&first).is_ok());
        let ack = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(
            mes_stats::ack_verb(&Json::parse(&ack).unwrap()),
            Some(mes_stats::CONTROL_SHUTDOWN),
            "shutdown must be acknowledged in-band: {ack}"
        );
        assert_eq!(read_frame(&mut reader).unwrap(), None, "loop must stop");
    }

    #[test]
    fn worker_loop_rejects_unknown_control_verbs_and_continues() {
        use mes_types::Scenario;
        let spec = ExperimentSpec::scenario_table("post-control", Scenario::Local, 16, 4);
        let mut input = Vec::new();
        write_frame(&mut input, &mes_stats::control_frame("reticulate").render()).unwrap();
        write_frame(&mut input, &spec.to_json_string()).unwrap();
        let mut output = Vec::new();
        worker_loop(&mut Cursor::new(input), &mut output, 1).unwrap();

        let mut reader = Cursor::new(output);
        let first = read_frame(&mut reader).unwrap().unwrap();
        assert!(
            Json::parse(&first)
                .unwrap()
                .get("error")
                .and_then(|reason| reason.as_str().ok())
                .is_some_and(|reason| reason.contains("reticulate")),
            "unknown verbs must produce an in-band error: {first}"
        );
        let second = read_frame(&mut reader).unwrap().unwrap();
        assert!(
            ExperimentResult::from_json_str(&second).is_ok(),
            "the loop must keep serving specs after an unknown verb"
        );
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }
}
