//! Sharded sweeps across `sweepd` worker processes.
//!
//! This is the process-level half of the §V.C.1 mega-sweep measurement: a
//! grid too large (or too concurrent) for one process is split by
//! [`ShardedExperiment::split`] into per-shape shard specs, streamed to a
//! pool of `sweepd --worker` child processes over a length-prefixed frame
//! protocol, and the shard results are merged back — bit-identically to the
//! unsharded run, in whatever order the workers finish.
//!
//! # Wire protocol
//!
//! A *frame* is `<decimal byte length>\n<payload bytes>\n`; payloads are the
//! existing spec/result JSON documents, so a worker is exactly the `sweepd`
//! one-shot mode in a loop: spec frame in, result frame out, one persistent
//! [`SweepService`] per worker process keeping engines and program caches
//! warm between shards. A failing shard answers with an `{"error": …}`
//! frame instead of killing the worker. EOF on stdin ends the worker.

use mes_core::experiment::ShardedExperiment;
use mes_core::{ExperimentResult, ExperimentSpec, RoundExecutor, SweepService};
use mes_stats::Json;
use mes_types::{MesError, Result};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub(crate) fn io_error(operation: &str, error: &std::io::Error) -> MesError {
    MesError::Host {
        operation: format!("{operation}: {error}"),
        errno: error.raw_os_error(),
    }
}

/// Writes one frame: the payload's byte length in decimal, a newline, the
/// payload, a newline.
///
/// # Errors
///
/// Returns an error if the underlying writer fails.
pub fn write_frame(writer: &mut impl Write, payload: &str) -> Result<()> {
    write!(writer, "{}\n{}\n", payload.len(), payload)
        .and_then(|()| writer.flush())
        .map_err(|error| io_error("write frame", &error))
}

/// Upper bound on one frame's payload (64 MiB). A length prefix above this
/// is treated as a corrupted stream and rejected *before* any allocation —
/// a stray byte in the prefix must produce a frame error, not an
/// arbitrarily large buffer request (or an overflowing `length + 1`).
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Parses a frame's length line: a decimal byte count of at most
/// [`MAX_FRAME_LEN`]. Shared by the blocking [`read_frame`] and the serve
/// daemon's incremental decoder so both validate prefixes identically —
/// before any allocation.
pub(crate) fn parse_frame_length(length_line: &str) -> Result<usize> {
    length_line
        .trim()
        .parse::<u64>()
        .ok()
        .and_then(|length| usize::try_from(length).ok())
        .filter(|&length| length <= MAX_FRAME_LEN)
        .ok_or_else(|| MesError::Serialization {
            reason: format!(
                "frame length {:?} is not a decimal byte count of at most {MAX_FRAME_LEN}",
                length_line.trim()
            ),
        })
}

/// Reads one frame, returning `None` on a clean EOF before the length line.
///
/// # Errors
///
/// Returns [`MesError::Serialization`] on malformed length lines (not a
/// decimal, overflowing, or above [`MAX_FRAME_LEN`]), truncated or
/// unterminated payloads, and non-UTF-8 payloads; [`MesError::Host`] when
/// the underlying reader fails.
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<String>> {
    let mut length_line = String::new();
    let read = reader
        .read_line(&mut length_line)
        .map_err(|error| io_error("read frame length", &error))?;
    if read == 0 {
        return Ok(None);
    }
    let length = parse_frame_length(&length_line)?;
    // Payload plus the trailing newline.
    let mut payload = vec![0u8; length + 1];
    reader
        .read_exact(&mut payload)
        .map_err(|error| io_error("read frame payload", &error))?;
    if payload.pop() != Some(b'\n') {
        return Err(MesError::Serialization {
            reason: "frame payload not terminated by newline".into(),
        });
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| MesError::Serialization {
            reason: "frame payload is not UTF-8".into(),
        })
}

/// The `sweepd --worker` loop: one persistent [`SweepService`] answering
/// spec frames with result frames until EOF or an in-band shutdown frame.
///
/// `pool` is the worker's *intra-process* executor width; the sharding
/// driver passes 1 so that all parallelism under measurement is
/// process-level, while `0` means the machine-sized default pool.
///
/// Besides spec documents, the loop understands control frames (see
/// [`mes_stats::control`]): `{"control": "shutdown"}` is acknowledged with
/// `{"ok": "shutdown"}` and ends the loop cleanly, so orchestrators can
/// retire a worker explicitly instead of relying on closing its stdin; any
/// other verb is answered with an in-band `{"error": …}` frame and the loop
/// continues.
///
/// # Errors
///
/// Returns an error only for I/O transport failures (broken pipe, failing
/// reader). Shard-level failures *and* malformed frames are reported
/// in-band as `{"error": …}` frames; a framing error additionally ends the
/// loop cleanly, because a stream whose length prefix cannot be trusted
/// cannot be resynchronized.
pub fn worker_loop(input: &mut impl BufRead, output: &mut impl Write, pool: usize) -> Result<()> {
    let mut service = match pool {
        0 => SweepService::with_default_pool(),
        width => SweepService::new(RoundExecutor::new(width)),
    };
    loop {
        let spec_json = match read_frame(input) {
            Ok(Some(spec_json)) => spec_json,
            Ok(None) => return Ok(()),
            Err(MesError::Serialization { reason }) => {
                let payload =
                    Json::object([("error", Json::string(format!("malformed frame: {reason}")))])
                        .render();
                write_frame(output, &payload)?;
                return Ok(());
            }
            Err(error) => return Err(error),
        };
        if let Some(verb) = Json::parse(&spec_json)
            .ok()
            .and_then(|document| mes_stats::control_verb(&document).map(str::to_string))
        {
            match verb.as_str() {
                mes_stats::CONTROL_SHUTDOWN => {
                    write_frame(output, &mes_stats::control_ack(&verb).render())?;
                    return Ok(());
                }
                other => {
                    let payload = Json::object([(
                        "error",
                        Json::string(format!("unsupported control verb {other:?}")),
                    )])
                    .render();
                    write_frame(output, &payload)?;
                    continue;
                }
            }
        }
        let outcome = ExperimentSpec::from_json_str(&spec_json)
            .and_then(|spec| service.submit(&spec))
            .map(|result| result.to_json_string());
        let payload = match outcome {
            Ok(result_json) => result_json,
            Err(error) => Json::object([("error", Json::string(error.to_string()))]).render(),
        };
        write_frame(output, &payload)?;
    }
}

/// What one sharded fan-out run measured, besides the merged result.
#[derive(Debug)]
pub struct ShardRun {
    /// The merged full-grid result (bit-identical to the unsharded run).
    pub result: ExperimentResult,
    /// Number of shards the grid split into.
    pub shards: usize,
    /// Number of `sweepd` worker processes actually spawned.
    pub workers: usize,
    /// Driver-side wall clock of each shard (dispatch → result), milliseconds,
    /// indexed by shard id.
    pub shard_walls_ms: Vec<f64>,
    /// Wall clock of the whole fan-out (spawn → last result), milliseconds.
    pub makespan_ms: f64,
}

impl ShardRun {
    /// Sum of the per-shard driver-side wall clocks, milliseconds.
    pub fn sum_shard_wall_ms(&self) -> f64 {
        self.shard_walls_ms.iter().sum()
    }

    /// Average number of shards in flight over the makespan:
    /// Σ per-shard wall / makespan. On a machine with at least as many free
    /// cores as workers this equals the true parallel speedup; on fewer
    /// cores it still measures how saturated the worker pool was (a pipeline
    /// that serializes on the driver scores ~1, a saturated 4-worker pool
    /// scores ~4).
    pub fn scaling_efficiency_x(&self) -> f64 {
        if self.makespan_ms > 0.0 {
            self.sum_shard_wall_ms() / self.makespan_ms
        } else {
            0.0
        }
    }
}

/// Locates the `sweepd` binary: `MES_SWEEPD_BIN` when set, otherwise a
/// sibling of the current executable (also checking the parent directory,
/// where cargo places bins relative to `deps/` test executables).
///
/// # Errors
///
/// Returns an error if no candidate exists.
pub fn locate_sweepd() -> Result<PathBuf> {
    if let Ok(path) = std::env::var("MES_SWEEPD_BIN") {
        return Ok(PathBuf::from(path));
    }
    let exe = std::env::current_exe().map_err(|error| io_error("locate current exe", &error))?;
    let name = format!("sweepd{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent();
    while let Some(candidate_dir) = dir {
        let candidate = candidate_dir.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        dir = candidate_dir.parent();
    }
    Err(MesError::InvalidConfig {
        reason: format!(
            "sweepd binary not found next to {} (set MES_SWEEPD_BIN)",
            exe.display()
        ),
    })
}

/// Splits `spec` into ~`target_shards` shard specs, fans them out across
/// `workers` `sweepd --worker` processes (single-threaded each, so all
/// measured parallelism is process-level), and merges the results.
///
/// Shards are pulled from a shared queue by one driver thread per worker,
/// so a long shard never blocks the rest of the pool behind it; per-shard
/// wall clocks are measured on the driver side around the dispatch→result
/// round trip.
///
/// # Errors
///
/// Returns an error if the spec fails to compile or split, a worker cannot
/// be spawned or fails a shard, a frame is malformed, or the merge's
/// provenance checks reject a result.
pub fn run_sharded(
    spec: &ExperimentSpec,
    workers: usize,
    target_shards: usize,
) -> Result<ShardRun> {
    let sharded = ShardedExperiment::split(spec, target_shards)?;
    let shard_count = sharded.shards().len();
    if shard_count == 0 {
        return Ok(ShardRun {
            result: sharded.merge(&[])?,
            shards: 0,
            workers: 0,
            shard_walls_ms: Vec::new(),
            makespan_ms: 0.0,
        });
    }
    let sweepd = locate_sweepd()?;
    let worker_count = workers.clamp(1, shard_count);

    let shard_specs: Vec<String> = sharded
        .shards()
        .iter()
        .map(|shard| shard.spec().to_json_string())
        .collect();
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, ExperimentResult, f64)>> =
        Mutex::new(Vec::with_capacity(shard_count));

    let started = Instant::now();
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let mut child = Command::new(&sweepd)
                .args(["--worker", "--pool", "1"])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .map_err(|error| io_error("spawn sweepd worker", &error))?;
            let handle = scope.spawn({
                let cursor = &cursor;
                let collected = &collected;
                let shard_specs = &shard_specs;
                move || -> Result<()> {
                    let mut stdin = child.stdin.take().expect("piped stdin");
                    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
                    loop {
                        let shard_id = cursor.fetch_add(1, Ordering::Relaxed);
                        if shard_id >= shard_specs.len() {
                            break;
                        }
                        let dispatched = Instant::now();
                        write_frame(&mut stdin, &shard_specs[shard_id])?;
                        let payload = read_frame(&mut stdout)?.ok_or_else(|| MesError::Host {
                            operation: format!(
                                "sweepd worker exited before answering shard {shard_id}"
                            ),
                            errno: None,
                        })?;
                        let wall_ms = dispatched.elapsed().as_secs_f64() * 1e3;
                        let result = parse_result_frame(&payload, shard_id)?;
                        collected
                            .lock()
                            .expect("collector lock")
                            .push((shard_id, result, wall_ms));
                    }
                    drop(stdin); // EOF: the worker loop ends cleanly.
                    child
                        .wait()
                        .map_err(|error| io_error("wait for sweepd worker", &error))?;
                    Ok(())
                }
            });
            handles.push(handle);
        }
        for handle in handles {
            handle.join().expect("driver thread panicked")?;
        }
        Ok(())
    })?;
    let makespan_ms = started.elapsed().as_secs_f64() * 1e3;

    let collected = collected.into_inner().expect("collector lock");
    let mut shard_walls_ms = vec![0.0; shard_count];
    let mut results = Vec::with_capacity(shard_count);
    for (shard_id, result, wall_ms) in collected {
        shard_walls_ms[shard_id] = wall_ms;
        results.push((shard_id, result));
    }
    Ok(ShardRun {
        result: sharded.merge(&results)?,
        shards: shard_count,
        workers: worker_count,
        shard_walls_ms,
        makespan_ms,
    })
}

/// Parses a worker's answer frame: a result document, or an in-band
/// `{"error": …}` report surfaced as the shard's failure.
fn parse_result_frame(payload: &str, shard_id: usize) -> Result<ExperimentResult> {
    if let Ok(json) = Json::parse(payload) {
        if let Some(error) = json.get("error") {
            return Err(MesError::Simulation {
                reason: format!(
                    "shard {shard_id} failed in its worker: {}",
                    error.as_str().unwrap_or("unknown error")
                ),
            });
        }
    }
    ExperimentResult::from_json_str(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_including_empty_and_multiline_payloads() {
        let mut wire = Vec::new();
        for payload in ["", "{\"a\": 1}", "line one\nline two\n", "π ≠ 3"] {
            write_frame(&mut wire, payload).unwrap();
        }
        let mut reader = Cursor::new(wire);
        for payload in ["", "{\"a\": 1}", "line one\nline two\n", "π ≠ 3"] {
            assert_eq!(read_frame(&mut reader).unwrap().as_deref(), Some(payload));
        }
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(read_frame(&mut Cursor::new(b"not a number\n".to_vec())).is_err());
        assert!(read_frame(&mut Cursor::new(b"10\nshort\n".to_vec())).is_err());
        // Length that cuts the payload's newline off.
        assert!(read_frame(&mut Cursor::new(b"3\nabcd\n".to_vec())).is_err());
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_before_allocating() {
        // Each of these used to be an allocation request (or an overflowing
        // `length + 1`); all must fail parsing instead, and quickly.
        let hostile = [
            "18446744073709551615",           // u64::MAX: `length + 1` overflow
            "18446744073709551616",           // > u64::MAX: parse overflow
            "999999999999999999999999999999", // way past u64
            "-1",                             // signed
            "67108865",                       // MAX_FRAME_LEN + 1
            "1e9",                            // not a decimal byte count
        ];
        for prefix in hostile {
            let mut wire = Cursor::new(format!("{prefix}\n").into_bytes());
            let error = read_frame(&mut wire).expect_err(prefix);
            assert!(
                matches!(error, MesError::Serialization { .. }),
                "{prefix}: {error}"
            );
        }
        // The cap itself is fine (given enough payload).
        let mut payload = vec![b'x'; MAX_FRAME_LEN + 1];
        payload[MAX_FRAME_LEN] = b'\n';
        let mut wire = format!("{MAX_FRAME_LEN}\n").into_bytes();
        wire.extend_from_slice(&payload);
        assert!(read_frame(&mut Cursor::new(wire)).unwrap().is_some());
    }

    #[test]
    fn worker_loop_reports_framing_errors_in_band_and_stops() {
        let mut output = Vec::new();
        worker_loop(
            &mut Cursor::new(b"99999999999999999999\ngarbage".to_vec()),
            &mut output,
            1,
        )
        .expect("a framing error is answered, not returned");
        let mut reader = Cursor::new(output);
        let answer = read_frame(&mut reader).unwrap().unwrap();
        let error = Json::parse(&answer).unwrap();
        assert!(
            error
                .get("error")
                .and_then(|reason| reason.as_str().ok())
                .is_some_and(|reason| reason.contains("malformed frame")),
            "expected an in-band framing error, got {answer}"
        );
        assert_eq!(read_frame(&mut reader).unwrap(), None, "loop must stop");
    }

    #[test]
    fn number_tokens_survive_a_shard_frame_round_trip() {
        // The shard protocol relies on `mes_stats::json` preserving number
        // tokens exactly: a worker echoing a document must not rewrite
        // `1e308` as `1.0e308` or collapse `-0.0`, or merged provenance
        // fingerprints would differ between sharded and unsharded runs.
        let document = r#"{"a": 1e308, "b": -0.0, "c": 0.30000000000000004, "d": 5e-324, "e": 123456789012345678901234567890}"#;
        let rendered = Json::parse(document).unwrap().render();
        let mut wire = Vec::new();
        write_frame(&mut wire, &rendered).unwrap();
        let received = read_frame(&mut Cursor::new(wire)).unwrap().unwrap();
        assert_eq!(received, rendered);
        assert_eq!(Json::parse(&received).unwrap().render(), rendered);
        for token in ["1e308", "-0.0", "0.30000000000000004", "5e-324"] {
            assert!(rendered.contains(token), "{token} rewritten in {rendered}");
        }
    }

    #[test]
    fn worker_loop_answers_specs_and_reports_errors_in_band() {
        use mes_types::Scenario;
        let spec = ExperimentSpec::scenario_table("worker-t", Scenario::CrossVm, 24, 9);
        let mut input = Vec::new();
        write_frame(&mut input, &spec.to_json_string()).unwrap();
        write_frame(&mut input, "this is not a spec").unwrap();
        let mut output = Vec::new();
        worker_loop(&mut Cursor::new(input), &mut output, 1).unwrap();

        let mut reader = Cursor::new(output);
        let first = read_frame(&mut reader).unwrap().unwrap();
        let result = ExperimentResult::from_json_str(&first).unwrap();
        let direct = SweepService::new(RoundExecutor::sequential())
            .submit(&spec)
            .unwrap();
        assert_eq!(result, direct, "worker answer must match a local run");
        let second = read_frame(&mut reader).unwrap().unwrap();
        assert!(
            Json::parse(&second).unwrap().get("error").is_some(),
            "a malformed spec must produce an in-band error frame: {second}"
        );
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn worker_loop_acknowledges_shutdown_and_stops_before_later_frames() {
        use mes_types::Scenario;
        let spec = ExperimentSpec::scenario_table("pre-shutdown", Scenario::Local, 16, 3);
        let mut input = Vec::new();
        write_frame(&mut input, &spec.to_json_string()).unwrap();
        write_frame(
            &mut input,
            &mes_stats::control_frame(mes_stats::CONTROL_SHUTDOWN).render(),
        )
        .unwrap();
        // A frame after the shutdown must never be answered (or executed).
        write_frame(&mut input, &spec.to_json_string()).unwrap();
        let mut output = Vec::new();
        worker_loop(&mut Cursor::new(input), &mut output, 1).unwrap();

        let mut reader = Cursor::new(output);
        let first = read_frame(&mut reader).unwrap().unwrap();
        assert!(ExperimentResult::from_json_str(&first).is_ok());
        let ack = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(
            mes_stats::ack_verb(&Json::parse(&ack).unwrap()),
            Some(mes_stats::CONTROL_SHUTDOWN),
            "shutdown must be acknowledged in-band: {ack}"
        );
        assert_eq!(read_frame(&mut reader).unwrap(), None, "loop must stop");
    }

    #[test]
    fn worker_loop_rejects_unknown_control_verbs_and_continues() {
        use mes_types::Scenario;
        let spec = ExperimentSpec::scenario_table("post-control", Scenario::Local, 16, 4);
        let mut input = Vec::new();
        write_frame(&mut input, &mes_stats::control_frame("reticulate").render()).unwrap();
        write_frame(&mut input, &spec.to_json_string()).unwrap();
        let mut output = Vec::new();
        worker_loop(&mut Cursor::new(input), &mut output, 1).unwrap();

        let mut reader = Cursor::new(output);
        let first = read_frame(&mut reader).unwrap().unwrap();
        assert!(
            Json::parse(&first)
                .unwrap()
                .get("error")
                .and_then(|reason| reason.as_str().ok())
                .is_some_and(|reason| reason.contains("reticulate")),
            "unknown verbs must produce an in-band error: {first}"
        );
        let second = read_frame(&mut reader).unwrap().unwrap();
        assert!(
            ExperimentResult::from_json_str(&second).is_ok(),
            "the loop must keep serving specs after an unknown verb"
        );
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }
}
