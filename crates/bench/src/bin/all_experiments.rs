//! Runs the complete evaluation in one shot: every table and figure of the
//! paper, in order, with reduced payload sizes so the whole run stays within
//! a few minutes. Use the individual binaries for full-size runs.
//!
//! Unlike its original incarnation — which spawned every harness binary as a
//! child `cargo run` — the evaluation now executes in-process on **one
//! shared [`mes_core::SweepService`]**: every section builds its
//! [`mes_core::ExperimentSpec`] and submits it, so grids that overlap
//! (Table IV and the parallel projection share the local scenario table) are
//! simulated once and served from the observation cache afterwards.
//!
//! Run with `cargo run --release -p mes-bench --bin all_experiments`.

use mes_bench::experiments;
use mes_core::SweepService;
use mes_types::Result;

fn main() -> Result<()> {
    let bits = std::env::var("MES_BENCH_BITS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000);
    let mut service = SweepService::with_default_pool();
    for section in experiments::run_all(&mut service, bits)? {
        println!("==================================================================");
        println!("== {}", section.title);
        println!("==================================================================");
        println!("{}", section.body);
    }
    println!(
        "service totals: {} rounds executed, {} cache hits, {} observations cached",
        service.rounds_executed(),
        service.cache_hits(),
        service.cached_observations()
    );
    Ok(())
}
