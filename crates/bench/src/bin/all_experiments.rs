//! Runs the complete evaluation in one shot: every table and figure of the
//! paper, in order, with reduced payload sizes so the whole run stays within
//! a few minutes. Use the individual binaries for full-size runs.
//!
//! Run with `cargo run --release -p mes-bench --bin all_experiments`.

use std::process::Command;

fn run(binary: &str) {
    println!("==================================================================");
    println!("== {binary}");
    println!("==================================================================");
    let status = Command::new(env!("CARGO"))
        .args([
            "run",
            "--quiet",
            "--release",
            "-p",
            "mes-bench",
            "--bin",
            binary,
        ])
        .env(
            "MES_BENCH_BITS",
            std::env::var("MES_BENCH_BITS").unwrap_or_else(|_| "5000".into()),
        )
        .status();
    match status {
        Ok(code) if code.success() => {}
        Ok(code) => eprintln!("{binary} exited with {code}"),
        Err(error) => eprintln!("failed to launch {binary}: {error}"),
    }
    println!();
}

fn main() {
    for binary in [
        "fig8_poc",
        "fig9_event_sweep",
        "fig10_flock_sweep",
        "table4_local",
        "table5_sandbox",
        "table6_crossvm",
        "fig11_multibit",
        "table2_semaphore_provisioning",
        "parallel_projection",
        "ablations",
    ] {
        run(binary);
    }
}
