//! `sweepd` — the experiment API across a process boundary.
//!
//! One-shot mode reads an [`ExperimentSpec`](mes_core::ExperimentSpec) JSON
//! document from a file argument (or stdin when the argument is absent or
//! `-`), runs it through a [`SweepService`](mes_core::SweepService), and
//! writes the [`ExperimentResult`](mes_core::ExperimentResult) JSON document
//! to stdout. A round trip through this binary produces the same result as
//! an in-process submission of the same spec.
//!
//! Worker mode (`--worker [--pool N]`) serves the same wire format in a
//! loop: length-prefixed spec frames in on stdin, result frames out on
//! stdout, one persistent service keeping engines and program caches warm
//! across shards (see [`mes_bench::shard`]). The sharded sweep driver
//! spawns a pool of these with `--pool 1`, making worker processes the unit
//! of parallelism. When `MES_FAULT_PLAN` is set, the worker misbehaves on
//! schedule (see [`mes_bench::fault`]) — the deterministic chaos harness
//! behind the supervisor's crash/hang/babble recovery tests.
//!
//! Serve mode (`serve <socket-path> [--pool N] [--quantum N]
//! [--max-rounds N] [--deadline-ms N]`) runs the multi-tenant daemon (see
//! [`mes_bench::serve`]): concurrent clients submit framed specs over a
//! Unix socket, the daemon coalesces their cache-miss rounds into
//! cross-tenant shape batches on one shared pool, and each client streams
//! its `{"point": ...}` frames back as they fold, ending with a
//! `{"result": ...}` frame. A `{"control": "shutdown"}` frame stops the
//! daemon; per-tenant results stay bit-identical to serial submission.
//!
//! ```text
//! cargo run --release -p mes-bench --bin sweepd -- examples/specs/fig9_small.json
//! cat spec.json | cargo run --release -p mes-bench --bin sweepd
//! sweepd --worker --pool 1   # framed spec/result loop until EOF
//! sweepd serve /tmp/mes.sock --pool 4
//! ```

use mes_bench::fault::FaultPlan;
use mes_bench::run_spec_json;
use mes_bench::serve::{serve, ServeOptions};
use mes_bench::shard::worker_loop_with_faults;
use mes_types::{MesError, Result};
use std::io::Read as _;
use std::path::Path;

fn read_input(path: Option<&str>) -> Result<String> {
    match path {
        None | Some("-") => {
            let mut input = String::new();
            std::io::stdin()
                .read_to_string(&mut input)
                .map_err(|error| MesError::Host {
                    operation: format!("read spec from stdin: {error}"),
                    errno: error.raw_os_error(),
                })?;
            Ok(input)
        }
        Some(path) => std::fs::read_to_string(path).map_err(|error| MesError::Host {
            operation: format!("read spec from {path}: {error}"),
            errno: error.raw_os_error(),
        }),
    }
}

/// Parses one `--flag value` usize option out of the serve argument list.
fn flag_value(args: &[String], flag: &str) -> Result<Option<usize>> {
    match args.iter().position(|arg| arg == flag) {
        None => Ok(None),
        Some(position) => args
            .get(position + 1)
            .and_then(|value| value.parse().ok())
            .map(Some)
            .ok_or_else(|| MesError::InvalidConfig {
                reason: format!("{flag} requires a non-negative count"),
            }),
    }
}

fn serve_main(args: &[String]) -> Result<()> {
    let socket = args
        .iter()
        .find(|arg| !arg.starts_with("--"))
        .ok_or_else(|| MesError::InvalidConfig {
            reason: "serve requires a socket path: sweepd serve <socket-path>".into(),
        })?;
    let mut options = ServeOptions::default();
    if let Some(pool) = flag_value(args, "--pool")? {
        options.pool = pool;
    }
    if let Some(quantum) = flag_value(args, "--quantum")? {
        options.quantum_rounds = quantum;
    }
    if let Some(max_rounds) = flag_value(args, "--max-rounds")? {
        options.max_tenant_rounds = max_rounds;
    }
    if let Some(deadline_ms) = flag_value(args, "--deadline-ms")? {
        options.submission_deadline_ms = Some(deadline_ms as u64);
    }
    eprintln!("sweepd: serving on {socket}");
    let report = serve(Path::new(socket), &options)?;
    eprintln!(
        "sweepd: served {} submissions ({} rounds executed, {} cache hits, {} connections dropped)",
        report.submissions, report.rounds_executed, report.cache_hits, report.dropped_connections
    );
    Ok(())
}

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        return serve_main(&args[1..]);
    }
    if args.iter().any(|arg| arg == "--worker") {
        let pool = match args.iter().position(|arg| arg == "--pool") {
            Some(flag) => args
                .get(flag + 1)
                .and_then(|value| value.parse().ok())
                .ok_or_else(|| MesError::InvalidConfig {
                    reason: "--pool requires a worker count".into(),
                })?,
            None => 0, // machine-sized default pool
        };
        // A scripted fault plan (chaos testing) rides in on the environment;
        // a malformed plan fails loudly rather than running fault-free.
        let faults = FaultPlan::from_env()?;
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        return worker_loop_with_faults(
            &mut stdin.lock(),
            &mut stdout.lock(),
            pool,
            faults.as_ref(),
        );
    }
    let input = read_input(args.first().map(String::as_str))?;
    print!("{}", run_spec_json(&input)?);
    Ok(())
}
