//! `sweepd` — the experiment API across a process boundary.
//!
//! Reads an [`ExperimentSpec`](mes_core::ExperimentSpec) JSON document from
//! a file argument (or stdin when the argument is absent or `-`), runs it
//! through a [`SweepService`](mes_core::SweepService), and writes the
//! [`ExperimentResult`](mes_core::ExperimentResult) JSON document to stdout.
//! This is the wire protocol the future async/sharded sweep service speaks;
//! a round trip through this binary produces the same result as an
//! in-process submission of the same spec.
//!
//! ```text
//! cargo run --release -p mes-bench --bin sweepd -- examples/specs/fig9_small.json
//! cat spec.json | cargo run --release -p mes-bench --bin sweepd
//! ```

use mes_bench::run_spec_json;
use mes_types::{MesError, Result};
use std::io::Read as _;

fn read_input() -> Result<String> {
    let path = std::env::args().nth(1);
    match path.as_deref() {
        None | Some("-") => {
            let mut input = String::new();
            std::io::stdin()
                .read_to_string(&mut input)
                .map_err(|error| MesError::Host {
                    operation: format!("read spec from stdin: {error}"),
                    errno: error.raw_os_error(),
                })?;
            Ok(input)
        }
        Some(path) => std::fs::read_to_string(path).map_err(|error| MesError::Host {
            operation: format!("read spec from {path}: {error}"),
            errno: error.raw_os_error(),
        }),
    }
}

fn main() -> Result<()> {
    let input = read_input()?;
    print!("{}", run_spec_json(&input)?);
    Ok(())
}
