//! `sweepd` — the experiment API across a process boundary.
//!
//! One-shot mode reads an [`ExperimentSpec`](mes_core::ExperimentSpec) JSON
//! document from a file argument (or stdin when the argument is absent or
//! `-`), runs it through a [`SweepService`](mes_core::SweepService), and
//! writes the [`ExperimentResult`](mes_core::ExperimentResult) JSON document
//! to stdout. A round trip through this binary produces the same result as
//! an in-process submission of the same spec.
//!
//! Worker mode (`--worker [--pool N]`) serves the same wire format in a
//! loop: length-prefixed spec frames in on stdin, result frames out on
//! stdout, one persistent service keeping engines and program caches warm
//! across shards (see [`mes_bench::shard`]). The sharded sweep driver
//! spawns a pool of these with `--pool 1`, making worker processes the unit
//! of parallelism.
//!
//! ```text
//! cargo run --release -p mes-bench --bin sweepd -- examples/specs/fig9_small.json
//! cat spec.json | cargo run --release -p mes-bench --bin sweepd
//! sweepd --worker --pool 1   # framed spec/result loop until EOF
//! ```

use mes_bench::run_spec_json;
use mes_bench::shard::worker_loop;
use mes_types::{MesError, Result};
use std::io::Read as _;

fn read_input(path: Option<&str>) -> Result<String> {
    match path {
        None | Some("-") => {
            let mut input = String::new();
            std::io::stdin()
                .read_to_string(&mut input)
                .map_err(|error| MesError::Host {
                    operation: format!("read spec from stdin: {error}"),
                    errno: error.raw_os_error(),
                })?;
            Ok(input)
        }
        Some(path) => std::fs::read_to_string(path).map_err(|error| MesError::Host {
            operation: format!("read spec from {path}: {error}"),
            errno: error.raw_os_error(),
        }),
    }
}

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|arg| arg == "--worker") {
        let pool = match args.iter().position(|arg| arg == "--pool") {
            Some(flag) => args
                .get(flag + 1)
                .and_then(|value| value.parse().ok())
                .ok_or_else(|| MesError::InvalidConfig {
                    reason: "--pool requires a worker count".into(),
                })?,
            None => 0, // machine-sized default pool
        };
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        return worker_loop(&mut stdin.lock(), &mut stdout.lock(), pool);
    }
    let input = read_input(args.first().map(String::as_str))?;
    print!("{}", run_spec_json(&input)?);
    Ok(())
}
