//! Regenerates **Table IV** of the paper: BER and TR of all six MESM channels
//! in the local scenario, at the paper's recommended Timeset.
//!
//! Run with `cargo run --release -p mes-bench --bin table4_local`.
//! Set `MES_BENCH_BITS` to change the payload size per row.

use mes_bench::{measure_scenario, scenario_table, table_bits};
use mes_types::Scenario;

fn main() -> mes_types::Result<()> {
    let bits = table_bits();
    let rows = measure_scenario(Scenario::Local, bits, 0x7ab1e4)?;
    let table = scenario_table(
        &format!("Table IV: channel performance in the local scenario ({bits} bits/row)"),
        &rows,
    );
    print!("{}", table.render());
    println!();
    println!("CSV:");
    print!("{}", table.to_csv());
    Ok(())
}
