//! Regenerates **Table IV** of the paper: BER and TR of all six MESM channels
//! in the local scenario, at the paper's recommended Timeset.
//!
//! The table is one `ScenarioTable` [`mes_core::ExperimentSpec`] submitted to
//! a [`mes_core::SweepService`].
//!
//! Run with `cargo run --release -p mes-bench --bin table4_local`.
//! Set `MES_BENCH_BITS` to change the payload size per row.

use mes_bench::{experiments, table_bits};
use mes_core::SweepService;
use mes_types::Scenario;

fn main() -> mes_types::Result<()> {
    let bits = table_bits();
    let result = SweepService::with_default_pool()
        .submit(&experiments::table_spec(Scenario::Local, bits))?;
    print!(
        "{}",
        experiments::render_table(
            &format!("Table IV: channel performance in the local scenario ({bits} bits/row)"),
            &result,
        )
    );
    Ok(())
}
